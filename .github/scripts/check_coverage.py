#!/usr/bin/env python3
"""Fail CI if line coverage of a watched crate drops below its recorded floor.

Usage: check_coverage.py <lcov.info> <coverage-floor.json>

The floor file maps a path prefix (e.g. "crates/exec") to the minimum
acceptable line-coverage percentage for source files under that prefix.
Floors only ratchet upward: when real coverage comfortably exceeds a floor,
raise the recorded value in coverage-floor.json in the same PR.
"""

import json
import sys


def parse_lcov(path):
    """Return {source_file: (lines_hit, lines_found)} from an lcov tracefile."""
    per_file = {}
    sf, lh, lf = None, 0, 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line.startswith("SF:"):
                sf, lh, lf = line[3:], 0, 0
            elif line.startswith("LH:"):
                lh = int(line[3:])
            elif line.startswith("LF:"):
                lf = int(line[3:])
            elif line == "end_of_record" and sf is not None:
                hit, found = per_file.get(sf, (0, 0))
                per_file[sf] = (hit + lh, found + lf)
                sf = None
    return per_file


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    lcov_path, floor_path = sys.argv[1], sys.argv[2]
    per_file = parse_lcov(lcov_path)
    floors = json.load(open(floor_path))

    failed = False
    for prefix, floor in sorted(floors.items()):
        hit = found = 0
        for sf, (h, f) in per_file.items():
            # lcov SF paths may be absolute; match on the repo-relative part.
            if prefix in sf.replace("\\", "/"):
                hit += h
                found += f
        if found == 0:
            print(f"ERROR: no coverage data for {prefix} in {lcov_path}")
            failed = True
            continue
        pct = 100.0 * hit / found
        status = "ok" if pct >= floor else "BELOW FLOOR"
        print(f"{prefix}: {pct:.2f}% line coverage ({hit}/{found}), floor {floor:.2f}% — {status}")
        if pct < floor:
            failed = True

    if failed:
        sys.exit("coverage regression: see report above")


if __name__ == "__main__":
    main()
