#!/usr/bin/env python3
"""Fail CI when a deterministic reuse counter regresses against its baseline.

Usage: check_perf.py <fresh_out_dir> <perf-baseline.json>

The baseline file pins the *deterministic* counters of the perf bins —
probe totals, view rows read/written, zero-copy rows, UDF calls avoided.
These are scheduling-independent (the virtual-clock/caller-thread design
guarantees bit-identical counters run to run), so any drift beyond the
tiny float threshold means the reuse path's behaviour changed, not that
the runner was noisy. Wall-clock numbers (ops/sec, latency quantiles) are
machine-dependent and are never gated — they ride along in the artifacts.

Baseline schema:

    {
      "threshold": 0.01,
      "bins": {
        "<bin>": {
          "counters": {"<name>": <expected>, ...},     # exact-diff gate
          "require_positive": ["<name>", ...]           # sanity gate
        }
      }
    }

A bin with a `counters` map is diffed exactly; `require_positive` names
counters that must be present and > 0 (used where the expected value is
workload-derived rather than hand-derivable). When a fresh artifact is
missing, that is a failure — the gate exists to catch bins that silently
stop producing output.
"""

import json
import os
import sys


def load_counters(out_dir, bin_name):
    """Extract the counter map from a bin's JSON artifact.

    Handles both artifact shapes: `{"result": ..., "metrics": {...}}`
    (single-snapshot bins) and a JSON array of records whose last entry
    carries `"counters"` (the trajectory log).
    """
    path = os.path.join(out_dir, bin_name + ".json")
    with open(path) as fh:
        value = json.load(fh)
    if isinstance(value, dict) and isinstance(value.get("metrics"), dict):
        return value["metrics"]
    if isinstance(value, list) and value:
        last = value[-1]
        if isinstance(last, dict) and isinstance(last.get("counters"), dict):
            return last["counters"]
        if isinstance(last, dict) and isinstance(last.get("metrics"), dict):
            return last["metrics"]
    raise ValueError(f"{path}: no counters/metrics section found")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    out_dir, baseline_path = sys.argv[1], sys.argv[2]
    baseline = json.load(open(baseline_path))
    threshold = float(baseline.get("threshold", 0.01))

    failed = False
    for bin_name, spec in sorted(baseline.get("bins", {}).items()):
        try:
            fresh = load_counters(out_dir, bin_name)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"ERROR: {bin_name}: cannot load fresh counters: {e}")
            failed = True
            continue

        for name, expected in sorted(spec.get("counters", {}).items()):
            actual = fresh.get(name)
            if actual is None:
                print(f"ERROR: {bin_name}.{name}: missing from fresh output")
                failed = True
                continue
            lo = expected * (1.0 - threshold)
            hi = expected * (1.0 + threshold)
            if actual < lo:
                print(
                    f"ERROR: {bin_name}.{name}: {actual} regressed below "
                    f"baseline {expected} (−{100 * (1 - actual / expected):.2f}%)"
                )
                failed = True
            elif actual > hi:
                print(
                    f"ERROR: {bin_name}.{name}: {actual} drifted above "
                    f"baseline {expected} — these counters are deterministic; "
                    f"if the change is intentional, update {baseline_path}"
                )
                failed = True
            else:
                print(f"{bin_name}.{name}: {actual} (baseline {expected}) — ok")

        for name in spec.get("require_positive", []):
            actual = fresh.get(name, 0)
            if not actual or actual <= 0:
                print(f"ERROR: {bin_name}.{name}: expected > 0, got {actual!r}")
                failed = True
            else:
                print(f"{bin_name}.{name}: {actual} > 0 — ok")

    if failed:
        sys.exit("perf gate failed: see report above")
    print("perf gate passed")


if __name__ == "__main__":
    main()
