//! Tier-1 replay of the committed fuzz regression corpus.
//!
//! Every `tests/corpus/*.json` file is a self-contained [`FuzzCase`] —
//! dataset parameters plus an EVA-QL session — that is replayed through all
//! four differential oracles (warm-vs-cold, parallel-vs-serial,
//! columnar-vs-row, crash-recovery) on every `cargo test`. Entries are
//! either shrunk repros of fixed bugs or hand-written pins of
//! known-tricky interleavings; all of them must stay green.
//!
//! This target is hosted by the `eva-fuzz` crate (see its `Cargo.toml`),
//! the same arrangement `eva-harness` uses for the other root tests.

use eva_fuzz::{
    check_case, corpus_dir, generate_case, load_corpus_dir, SplitMix64, CORPUS_VERSION,
};

#[test]
fn corpus_cases_replay_green() {
    let entries = load_corpus_dir(&corpus_dir()).expect("tests/corpus/ loads");
    assert!(
        !entries.is_empty(),
        "tests/corpus/ is empty — the regression replay is vacuous"
    );
    for (path, file) in entries {
        assert_eq!(
            file.version,
            CORPUS_VERSION,
            "{}: version mismatch",
            path.display()
        );
        if let Err(failure) = check_case(&file.case) {
            panic!(
                "corpus regression: {} ({}) now fails: {failure}",
                path.display(),
                file.note
            );
        }
    }
}

#[test]
fn fuzz_smoke_generated_cases_are_green() {
    // A tiny always-on slice of the fuzzer (the full 200-case run is the CI
    // fuzz-smoke job): fresh generated sessions, all four oracles.
    let mut master = SplitMix64::new(0xE7A_F022);
    for i in 0..4u32 {
        let seed = master.next_u64();
        let case = generate_case(seed);
        if let Err(failure) = check_case(&case) {
            panic!("generated case {i} (seed {seed:#018x}) failed: {failure}\n{case:#?}");
        }
    }
}
