//! Tests for the §6 future-work extension: fuzzy bbox matching. A box-level
//! UDF result may be reused for a *near-identical* box (IoU above a
//! threshold), trading exactness for extra reuse — e.g. reusing CarType
//! results across the slightly different boxes two detectors emit for the
//! same object.

use eva_harness::test_session;
use eva_planner::ReuseStrategy;

const N: u64 = 100;

fn with_fuzzy(db: &mut eva_core::EvaDb, iou: Option<f32>) {
    let mut cfg = db.config();
    cfg.exec.fuzzy_box_iou = iou;
    db.set_config(cfg);
}

/// Two detectors emit slightly different boxes for the same objects. With
/// exact keys, CarType results never transfer between them; with fuzzy
/// matching they do.
#[test]
fn fuzzy_matching_transfers_results_across_detectors() {
    let q_rcnn = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet101(frame) \
                  WHERE id < 80 AND label = 'car' AND cartype(frame, bbox) = 'Toyota'";
    let q_rcnn50 = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                    WHERE id < 80 AND label = 'car' AND cartype(frame, bbox) = 'Toyota'";

    // Exact reuse: essentially nothing transfers (boxes differ by noise).
    let mut exact = test_session(ReuseStrategy::Eva, 601, N);
    exact.execute_sql(q_rcnn).unwrap().rows().unwrap();
    exact.execute_sql(q_rcnn50).unwrap().rows().unwrap();
    let exact_reuse = exact.invocation_stats().get("cartype").reused_invocations;

    // Fuzzy reuse at IoU ≥ 0.8: most boxes match their counterpart.
    let mut fuzzy = test_session(ReuseStrategy::Eva, 601, N);
    with_fuzzy(&mut fuzzy, Some(0.8));
    fuzzy.execute_sql(q_rcnn).unwrap().rows().unwrap();
    fuzzy.execute_sql(q_rcnn50).unwrap().rows().unwrap();
    let fuzzy_reuse = fuzzy.invocation_stats().get("cartype").reused_invocations;

    assert!(
        fuzzy_reuse > exact_reuse + 10,
        "fuzzy matching must transfer results: exact={exact_reuse}, fuzzy={fuzzy_reuse}"
    );
}

/// Fuzzy matching at a high threshold still behaves exactly for identical
/// repeated queries (exact hits win before fuzzy probing happens).
#[test]
fn fuzzy_mode_is_exact_for_identical_queries() {
    let q = "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE id < 60 AND label = 'car' AND cartype(frame, bbox) = 'Honda' ORDER BY id";
    let mut exact = test_session(ReuseStrategy::Eva, 602, N);
    let mut fuzzy = test_session(ReuseStrategy::Eva, 602, N);
    with_fuzzy(&mut fuzzy, Some(0.9));
    for _ in 0..2 {
        let a = exact.execute_sql(q).unwrap().rows().unwrap();
        let b = fuzzy.execute_sql(q).unwrap().rows().unwrap();
        assert_eq!(a.batch.rows(), b.batch.rows());
    }
}

/// The threshold is respected: at IoU ≥ 0.999 detector noise exceeds the
/// tolerance and nothing transfers.
#[test]
fn strict_threshold_disables_transfer() {
    let q_rcnn = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet101(frame) \
                  WHERE id < 50 AND label = 'car' AND colordet(frame, bbox) = 'Red'";
    let q_yolo = "SELECT id FROM video CROSS APPLY yolo_tiny(frame) \
                  WHERE id < 50 AND label = 'car' AND colordet(frame, bbox) = 'Red'";
    let mut db = test_session(ReuseStrategy::Eva, 603, N);
    with_fuzzy(&mut db, Some(0.999));
    db.execute_sql(q_rcnn).unwrap().rows().unwrap();
    let before = db.invocation_stats().get("colordet").reused_invocations;
    db.execute_sql(q_yolo).unwrap().rows().unwrap();
    let after = db.invocation_stats().get("colordet").reused_invocations;
    // YOLO's noisy boxes (low boxAP ⇒ high noise) cannot clear IoU 0.999.
    assert!(
        after - before <= 2,
        "near-exact threshold must block noisy transfers: {}",
        after - before
    );
}

/// Fuzzy reuse is *approximate*: it may change results (that is the §6
/// trade-off), so it is off by default.
#[test]
fn fuzzy_is_off_by_default() {
    let db = test_session(ReuseStrategy::Eva, 604, 10);
    assert_eq!(db.config().exec.fuzzy_box_iou, None);
}
