//! Admission-control overload suite (the CI `overload` job).
//!
//! Eight single-threaded sessions — one per OS thread, as the controller's
//! design intends — share one cloned [`AdmissionController`] with 2 slots
//! and a 2-deep FIFO queue. The main thread holds both slots while every
//! worker arrives, which makes the outcome exact rather than
//! timing-dependent: the first two arrivals queue, the remaining six are
//! shed immediately. Shedding must be a structured
//! `Cancelled { reason: Shed }` refusal — never a panic — and a shed
//! session must stay fully usable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use eva_common::{CancelReason, MetricsSink};
use eva_core::{AdmissionConfig, AdmissionController, EvaDb};
use eva_harness::test_session;
use eva_planner::ReuseStrategy;

const N_SESSIONS: usize = 8;
const N_SLOTS: usize = 2;
const N_WAITERS: usize = 2;

const Q: &str = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                 WHERE id < 12 AND label = 'car'";

/// A small per-thread session over its own dataset, failpoints disarmed
/// (the CI job exports `EVA_FAILPOINTS=all`).
fn worker_session(seed: u64) -> EvaDb {
    let db = test_session(ReuseStrategy::Eva, 900 + seed, 16);
    db.storage().failpoints().disarm_all();
    db
}

#[test]
fn overload_sheds_exactly_the_excess_and_completes_the_rest() {
    let gate = AdmissionController::new(AdmissionConfig {
        max_concurrent: N_SLOTS,
        max_waiters: N_WAITERS,
        queue_deadline_ms: Some(30_000),
    });
    // Fill every slot from the main thread so worker arrivals can only
    // queue or shed, independent of scheduling order.
    let sink = MetricsSink::new();
    let held: Vec<_> = (0..N_SLOTS)
        .map(|_| gate.admit(&sink).expect("free slot"))
        .collect();

    let barrier = Arc::new(Barrier::new(N_SESSIONS));
    let completed = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..N_SESSIONS)
        .map(|i| {
            let gate = gate.clone();
            let barrier = Arc::clone(&barrier);
            let completed = Arc::clone(&completed);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                let mut db = worker_session(i as u64);
                db.set_admission(Some(gate));
                barrier.wait();
                match db.execute_sql(Q) {
                    Ok(r) => {
                        r.rows().expect("admitted select returns rows");
                        completed.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(db.metrics_snapshot().queries_admitted, 1);
                    }
                    Err(e) => {
                        // The only acceptable overload failure is a
                        // structured shed.
                        assert_eq!(
                            e.cancel_reason(),
                            Some(CancelReason::Shed),
                            "unexpected failure under overload: {e}"
                        );
                        assert!(e.to_string().contains("admission queue full"), "{e}");
                        shed.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(db.metrics_snapshot().queries_shed, 1);
                    }
                }
            })
        })
        .collect();

    // With both slots held here, arrivals resolve deterministically: two
    // queue (FIFO), six find the queue full and shed. Wait for that steady
    // state before releasing the slots.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let s = gate.snapshot();
        if s.waiting == N_WAITERS && s.shed == (N_SESSIONS - N_WAITERS) as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "arrivals never reached steady state: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    drop(held);
    for h in handles {
        h.join().expect("no session panics under overload");
    }

    assert_eq!(completed.load(Ordering::SeqCst), N_WAITERS as u64);
    assert_eq!(shed.load(Ordering::SeqCst), (N_SESSIONS - N_WAITERS) as u64);
    let s = gate.snapshot();
    assert_eq!((s.active, s.waiting), (0, 0), "all lanes drained: {s:?}");
    // Admitted = the two main-thread holds plus the two queued workers.
    assert_eq!(s.admitted, (N_SLOTS + N_WAITERS) as u64, "{s:?}");
    assert_eq!(s.shed, (N_SESSIONS - N_WAITERS) as u64, "{s:?}");
}

#[test]
fn shed_session_stays_usable_and_answers_identically() {
    let gate = AdmissionController::new(AdmissionConfig {
        max_concurrent: 1,
        max_waiters: 0,
        queue_deadline_ms: None,
    });
    let mut db = worker_session(40);
    db.set_admission(Some(gate.clone()));

    let sink = MetricsSink::new();
    let held = gate.admit(&sink).expect("free slot");
    let err = db
        .execute_sql(Q)
        .expect_err("zero-waiter gate with a busy slot must shed");
    assert_eq!(err.cancel_reason(), Some(CancelReason::Shed), "{err}");
    assert_eq!(db.metrics_snapshot().queries_shed, 1);

    // The refusal happened before planning: the session is untouched and
    // answers exactly like a never-gated session.
    drop(held);
    let rows = db
        .execute_sql(Q)
        .expect("slot freed, query admits")
        .rows()
        .expect("rows")
        .batch
        .into_rows();
    let expect = worker_session(40)
        .execute_sql(Q)
        .expect("ungated baseline")
        .rows()
        .expect("rows")
        .batch
        .into_rows();
    assert_eq!(rows, expect);
    assert!(!rows.is_empty(), "workload must produce rows");
    assert_eq!(db.metrics_snapshot().queries_admitted, 1);
}

#[test]
fn queue_deadline_sheds_through_the_session_path() {
    let gate = AdmissionController::new(AdmissionConfig {
        max_concurrent: 1,
        max_waiters: 4,
        queue_deadline_ms: Some(25),
    });
    let mut db = worker_session(41);
    db.set_admission(Some(gate.clone()));

    let sink = MetricsSink::new();
    let _held = gate.admit(&sink).expect("free slot");
    let err = db
        .execute_sql(Q)
        .expect_err("queued query must shed at the queue deadline");
    assert_eq!(err.cancel_reason(), Some(CancelReason::Shed), "{err}");
    assert!(err.to_string().contains("queue deadline"), "{err}");
    assert_eq!(gate.snapshot().waiting, 0, "shed waiter left the queue");
}
