//! End-to-end integration tests: the full parse → bind → optimize → execute
//! lifecycle over the public API, covering the statement surface of EVA-QL.

use eva_common::{CostCategory, Value};
use eva_core::StatementResult;
use eva_harness::test_session;
use eva_planner::ReuseStrategy;

#[test]
fn full_lifecycle_with_projection_udf() {
    let mut db = test_session(ReuseStrategy::Eva, 101, 120);
    let out = db
        .execute_sql(
            "SELECT id, bbox, colordet(frame, bbox) AS color FROM video \
             CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE id >= 10 AND id < 90 AND label = 'car' \
             ORDER BY id LIMIT 25",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert!(out.n_rows() > 0 && out.n_rows() <= 25);
    let schema = out.batch.schema().clone();
    assert_eq!(schema.fields()[2].name, "color");
    // Ordered by id ascending.
    let ids: Vec<i64> = out
        .batch
        .rows()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
    // All ids within the scan range.
    assert!(ids.iter().all(|&i| (10..90).contains(&i)));
    // Colors are real values.
    for row in out.batch.rows() {
        assert!(matches!(&row[2], Value::Str(_)));
    }
}

#[test]
fn aggregation_counts_per_label() {
    let mut db = test_session(ReuseStrategy::Eva, 102, 80);
    let out = db
        .execute_sql(
            "SELECT label, COUNT(*) AS n FROM video CROSS APPLY \
             fasterrcnn_resnet50(frame) WHERE id < 60 GROUP BY label",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert!(out.n_rows() >= 1);
    let mut total = 0i64;
    for row in out.batch.rows() {
        total += row[1].as_int().unwrap();
    }
    // Cross-check against a plain projection.
    let all = db
        .execute_sql("SELECT label FROM video CROSS APPLY fasterrcnn_resnet50(frame) WHERE id < 60")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(total as usize, all.n_rows());
}

#[test]
fn ddl_statements_round_trip() {
    let mut db = test_session(ReuseStrategy::Eva, 103, 20);
    match db.execute_sql("SHOW UDFS").unwrap() {
        StatementResult::Ack(s) => {
            assert!(s.contains("fasterrcnn_resnet50"));
            assert!(s.contains("cartype"));
        }
        other => panic!("unexpected {other:?}"),
    }
    db.execute_sql(
        "CREATE UDF night_det INPUT = (frame FRAME) OUTPUT = (label STR, bbox BBOX, \
         score FLOAT) IMPL = 'sim/yolo_tiny' LOGICAL_TYPE = objectdetector \
         PROPERTIES = ('ACCURACY' = 'LOW')",
    )
    .unwrap();
    let out = db
        .execute_sql(
            "SELECT id FROM video CROSS APPLY night_det(frame) WHERE id < 10 AND label='car'",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert!(out.n_rows() > 0);
    db.execute_sql("DROP UDF night_det").unwrap();
    assert!(db
        .execute_sql("SELECT id FROM video CROSS APPLY night_det(frame) WHERE id < 10")
        .is_err());
}

#[test]
fn error_paths_report_stages() {
    let mut db = test_session(ReuseStrategy::Eva, 104, 20);
    let parse_err = db.execute_sql("SELEC oops").unwrap_err();
    assert_eq!(parse_err.stage(), "parse");
    let binder_err = db.execute_sql("SELECT nope FROM video").unwrap_err();
    assert_eq!(binder_err.stage(), "bind");
    let catalog_err = db.execute_sql("SELECT id FROM missing").unwrap_err();
    assert_eq!(catalog_err.stage(), "catalog");
}

#[test]
fn scan_range_pushdown_limits_read_cost() {
    let mut db = test_session(ReuseStrategy::NoReuse, 105, 200);
    let narrow = db
        .execute_sql("SELECT id FROM video WHERE id >= 50 AND id < 60")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(narrow.n_rows(), 10);
    let read_ms = narrow.breakdown.get(CostCategory::ReadVideo);
    // 10 frames × 1.8 ms — pushdown means we did not scan all 200 frames.
    assert!((read_ms - 18.0).abs() < 1e-6, "read_ms = {read_ms}");
}

#[test]
fn timestamps_follow_fps() {
    let mut db = test_session(ReuseStrategy::NoReuse, 106, 50);
    let out = db
        .execute_sql("SELECT id, timestamp FROM video WHERE id < 3 ORDER BY id")
        .unwrap()
        .rows()
        .unwrap();
    let ts: Vec<i64> = out
        .batch
        .rows()
        .iter()
        .map(|r| r[1].as_int().unwrap())
        .collect();
    assert_eq!(ts, vec![0, 40, 80], "25 fps ⇒ 40 ms per frame");
}
