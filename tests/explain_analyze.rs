//! Golden-file tests locking the **structure** of `EXPLAIN ANALYZE` over
//! the vBENCH query suite, plus exact counter assertions derived from
//! frame-window arithmetic.
//!
//! Two kinds of locking, deliberately split:
//!
//! * **Goldens** lock the shape of the annotated plan tree — operator
//!   order, decorations, which annotation fields appear — with every
//!   number redacted to `#`. Numbers (row counts, costs, hit counts)
//!   depend on the synthetic video's content, and plans with two or more
//!   rankable UDF predicates (`area`/`cartype`/`colordet`) additionally
//!   order them by content-derived statistics (Eq. 2/Eq. 4), so goldens
//!   are only recorded for queries whose shape is content-independent —
//!   those with at most one rankable UDF predicate.
//! * **Window arithmetic** asserts *exact* counter values where they are
//!   forced by the reuse protocol alone: a frame-keyed detector view probed
//!   over `[lo, hi)` must report exactly `hi - lo` probes, and hits equal
//!   to the overlap with previously materialized windows — independent of
//!   what is in the frames.
//!
//! Bless mode: `EVA_BLESS=1 cargo test --test explain_analyze` rewrites the
//! goldens under `tests/goldens/explain_analyze/`.

use std::fs;
use std::path::PathBuf;

use eva_harness::test_session;
use eva_planner::ReuseStrategy;
use eva_vbench::{vbench_high, DetectorKind};

const N: u64 = 120;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens/explain_analyze")
}

/// Number of UDF predicates in the WHERE clause that predicate reordering
/// ranks by content-derived statistics. Two or more means the operator
/// order is not portable across dataset seeds.
fn ranked_udf_atoms(sql: &str) -> usize {
    let where_clause = sql.split(" WHERE ").nth(1).unwrap_or("");
    ["area(", "cartype(", "colordet(", "specialized_filter("]
        .iter()
        .map(|udf| where_clause.matches(udf).count())
        .sum()
}

/// Replace every standalone number (integers and decimals, but not digits
/// inside identifiers like `fasterrcnn_resnet50`) with `#`.
fn redact(text: &str) -> String {
    let mut out = String::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let prev_is_word = out
            .chars()
            .last()
            .is_some_and(|p| p.is_ascii_alphanumeric() || p == '_');
        if c.is_ascii_digit() && !prev_is_word {
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            out.push('#');
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

#[test]
fn explain_analyze_structure_matches_goldens() {
    let mut db = test_session(ReuseStrategy::Eva, 515, N);
    let suite = vbench_high(N, DetectorKind::Physical("fasterrcnn_resnet50"), false);
    let bless = std::env::var("EVA_BLESS").is_ok();
    if bless {
        fs::create_dir_all(golden_dir()).unwrap();
    }
    let mut failures = Vec::new();
    for q in &suite {
        let (text, out) = db.explain_analyze_query(&q.sql).unwrap();
        // Tree sanity and counter invariants hold for *every* query,
        // golden-locked or not.
        assert!(text.contains("ScanFrames"), "{}: {text}", q.name);
        assert!(text.contains("rows="), "{}: {text}", q.name);
        assert!(text.contains("probes="), "{}: {text}", q.name);
        assert!(text.contains("-- runtime --"), "{}: {text}", q.name);
        assert!(text.contains("trace:"), "{}: {text}", q.name);
        let m = &out.metrics;
        assert_eq!(m.probes, m.probe_hits + m.probe_misses, "{}: {m:?}", q.name);
        assert_eq!(
            m.udf_calls_requested,
            m.udf_calls_executed + m.udf_calls_avoided,
            "{}: {m:?}",
            q.name
        );
        if ranked_udf_atoms(&q.sql) >= 2 {
            // Predicate order is chosen from content-derived statistics;
            // the tree shape is not portable across dataset seeds.
            continue;
        }
        // Goldens lock the annotated plan tree only; everything from the
        // `-- runtime --` marker down carries wall-clock latencies that are
        // redacted but whose histogram rows depend on machine speed via
        // bucket boundaries — structure-locked separately in `trace_tree`.
        let plan_only = text.split("-- runtime --").next().unwrap();
        let redacted = redact(plan_only);
        let path = golden_dir().join(format!("{}.golden", q.name));
        if bless {
            fs::write(&path, redacted.trim_end()).unwrap();
            continue;
        }
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with EVA_BLESS=1 to record",
                path.display()
            )
        });
        let (expected, redacted) = (
            expected.trim_end().to_string(),
            redacted.trim_end().to_string(),
        );
        if expected != redacted {
            failures.push(format!(
                "== {} ==\n-- expected --\n{expected}\n-- actual --\n{redacted}",
                q.name
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "EXPLAIN ANALYZE structure drifted (EVA_BLESS=1 to re-record):\n{}",
        failures.join("\n")
    );
}

#[test]
fn explain_analyze_is_deterministic_across_sessions() {
    let run = || {
        let mut db = test_session(ReuseStrategy::Eva, 616, N);
        let suite = vbench_high(N, DetectorKind::Physical("fasterrcnn_resnet50"), false);
        let mut texts = Vec::new();
        for q in &suite {
            texts.push(db.explain_analyze(&q.sql).unwrap());
        }
        (texts, db.metrics_snapshot())
    };
    let (texts_a, metrics_a) = run();
    let (texts_b, metrics_b) = run();
    // The runtime footer carries wall-clock latencies, so compare with
    // every number redacted: plan shape, span-tree shape, and which
    // histogram kinds appear must be bit-identical across sessions.
    let redacted = |texts: &[String]| texts.iter().map(|t| redact(t)).collect::<Vec<_>>();
    assert_eq!(
        redacted(&texts_a),
        redacted(&texts_b),
        "annotated plans must be reproducible"
    );
    assert_eq!(
        metrics_a.deterministic(),
        metrics_b.deterministic(),
        "metrics must be reproducible"
    );
}

#[test]
fn warm_counters_follow_window_arithmetic() {
    let mut db = test_session(ReuseStrategy::Eva, 717, N);
    let q = |lo: u64, hi: u64| {
        format!(
            "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE id >= {lo} AND id < {hi} AND label = 'car'"
        )
    };

    // Cold [0, 80): nothing materialized, every frame runs the detector.
    let (_, cold) = db.explain_analyze_query(&q(0, 80)).unwrap();
    let m = &cold.metrics;
    assert_eq!(m.probe_hits, 0, "{m:?}");
    assert_eq!(m.udf_calls_executed, 80, "{m:?}");
    assert_eq!(m.udf_calls_avoided, 0, "{m:?}");
    assert_eq!(m.frames_scanned, 80, "{m:?}");

    // Overlapping [40, 120): exactly the 40 frames in [40, 80) hit the
    // view, the 40 in [80, 120) are evaluated and stored.
    let (text, warm) = db.explain_analyze_query(&q(40, 120)).unwrap();
    let m = &warm.metrics;
    assert_eq!(m.probes, 80, "{m:?}");
    assert_eq!(m.probe_hits, 40, "{m:?}");
    assert_eq!(m.probe_misses, 40, "{m:?}");
    assert_eq!(m.udf_calls_executed, 40, "{m:?}");
    assert_eq!(m.udf_calls_avoided, 40, "{m:?}");
    assert!(text.contains("hits=40"), "{text}");

    // Fully covered [0, 120): all probes hit, zero detector invocations.
    let (text, full) = db.explain_analyze_query(&q(0, 120)).unwrap();
    let m = &full.metrics;
    assert_eq!(m.probes, 120, "{m:?}");
    assert_eq!(m.probe_hits, 120, "{m:?}");
    assert_eq!(m.udf_calls_executed, 0, "{m:?}");
    assert_eq!(m.udf_calls_avoided, 120, "{m:?}");
    assert!(m.rows_served_zero_copy > 0, "{m:?}");
    assert!(text.contains("avoided=120"), "{text}");
}
