//! Integration tests over the vBENCH workloads at reduced scale: the
//! headline claims of the evaluation must hold qualitatively on every run.

use eva_harness::test_session;
use eva_planner::ReuseStrategy;
use eva_vbench::{
    eq7_upper_bound, frame_overlap, run_workload, vbench_high, vbench_low, DetectorKind, Workload,
};

const N: u64 = 300;

fn det() -> DetectorKind {
    DetectorKind::Physical("fasterrcnn_resnet50")
}

#[test]
fn high_reuse_workload_headline() {
    let workload = Workload::new("high", vbench_high(N, det(), false));
    let mut no = test_session(ReuseStrategy::NoReuse, 401, N);
    let base = run_workload(&mut no, &workload).unwrap();
    let mut eva = test_session(ReuseStrategy::Eva, 401, N);
    let r = run_workload(&mut eva, &workload).unwrap();

    assert_eq!(base.row_counts(), r.row_counts());
    let speedup = r.speedup_over(&base);
    assert!(speedup > 2.0, "EVA high-reuse speedup {speedup}");
    let bound = eq7_upper_bound(&eva);
    assert!(
        speedup <= bound + 0.05,
        "speedup {speedup} cannot exceed the Eq.7 bound {bound}"
    );
    assert!(
        speedup > 0.7 * bound,
        "EVA should be near-optimal: {speedup} vs bound {bound}"
    );
    // Storage overhead is tiny relative to the video (§5.2).
    let video_bytes = 300u64 * 192 * 108 * 3;
    assert!(r.view_bytes < video_bytes / 2);
}

#[test]
fn low_reuse_workload_is_modest_but_positive() {
    let workload = Workload::new("low", vbench_low(N, det(), false));
    let mut no = test_session(ReuseStrategy::NoReuse, 402, N);
    let base = run_workload(&mut no, &workload).unwrap();
    let mut eva = test_session(ReuseStrategy::Eva, 402, N);
    let r = run_workload(&mut eva, &workload).unwrap();
    let speedup = r.speedup_over(&base);
    assert!(
        (1.0..2.0).contains(&speedup),
        "low-reuse speedup should be modest: {speedup}"
    );
    assert!(r.hit_percentage > 0.0);
}

#[test]
fn overlap_statistics_match_design() {
    let high = frame_overlap(&vbench_high(14_000, det(), false));
    let low = frame_overlap(&vbench_low(14_000, det(), false));
    assert!((0.35..0.85).contains(&high), "high overlap {high}");
    assert!(low < 0.10, "low consecutive overlap {low}");
}

#[test]
fn permutations_do_not_change_results_or_final_state() {
    let base_queries = vbench_high(N, det(), false);
    let mut reference: Option<std::collections::BTreeMap<String, usize>> = None;
    for seed in [1u64, 2] {
        let queries = eva_vbench::queries::permute(&base_queries, seed);
        let workload = Workload::new("perm", queries);
        let mut db = test_session(ReuseStrategy::Eva, 403, N);
        let r = run_workload(&mut db, &workload).unwrap();
        // Per-query row counts keyed by query name are order-independent.
        let counts: std::collections::BTreeMap<String, usize> = r
            .per_query
            .iter()
            .map(|q| (q.name.clone(), q.n_rows))
            .collect();
        match &reference {
            Some(c) => assert_eq!(c, &counts, "permutation {seed}"),
            None => reference = Some(counts),
        }
    }
}

#[test]
fn logical_workload_runs_all_strategies() {
    let workload = Workload::new("logical", vbench_high(N, DetectorKind::Logical, false));
    let mut counts: Option<Vec<usize>> = None;
    for strategy in [ReuseStrategy::NoReuse, ReuseStrategy::Eva] {
        let mut db = test_session(strategy, 404, N);
        let r = run_workload(&mut db, &workload).unwrap();
        let c = r.row_counts();
        match &counts {
            // Logical resolution may pick different physical models under
            // different strategies, so result *cardinalities* can legally
            // differ; both must at least complete and return rows somewhere.
            Some(_) => assert_eq!(c.len(), 8),
            None => counts = Some(c),
        }
    }
}
