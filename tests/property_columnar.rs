//! Property tests for the columnar execution layer (DESIGN.md §4f).
//!
//! * **Round trip** — pivoting a row batch to columnar form and back is
//!   lossless, and every cell's canonical byte encoding
//!   ([`Value::write_bytes`] vs [`eva_common::Column::write_value_bytes`])
//!   is bit-identical, NULLs included. Group keys and hash keys are built
//!   from these encodings, so bit-identity here is what guarantees the
//!   columnar aggregate groups exactly like the row aggregate.
//! * **Selection compaction** — for random predicates over random
//!   (NULL-bearing) data, filtering via selection vectors and compacting
//!   yields exactly the rows the row-at-a-time `eval_predicate` keeps,
//!   including when the input batch already carries a selection.
//! * **Deterministic counters** — the columnar flow counters reported by
//!   `EXPLAIN ANALYZE` sessions are reproducible run to run.

use std::sync::Arc;

use proptest::prelude::*;

use eva_common::{BBox, Batch, ColumnarBatch, DataType, Field, Schema, Value};
use eva_expr::{filter_columnar, Expr, NoUdfs, RowContext};
use eva_harness::test_session;
use eva_planner::ReuseStrategy;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        2 => any::<bool>().prop_map(Value::Bool),
        3 => (-1_000_000i64..1_000_000).prop_map(Value::Int),
        3 => (-1.0e6f64..1.0e6).prop_map(Value::Float),
        2 => "[a-z]{0,8}".prop_map(Value::from),
        1 => (0.0f32..0.9, 0.0f32..0.9)
            .prop_map(|(x, y)| Value::from(BBox::new(x, y, x + 0.1, y + 0.1))),
    ]
}

fn mixed_schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(vec![
            Field::new("c0", DataType::Int),
            Field::new("c1", DataType::Float),
            Field::new("c2", DataType::Str),
        ])
        .unwrap(),
    )
}

/// Predicate leaves over the `(a: Int?, b: Str)` filter-test table, chosen
/// so every comparison is well-typed while still exercising NULL handling.
#[derive(Debug, Clone)]
enum Leaf {
    Lt(i64),
    Gt(i64),
    EqA(i64),
    EqB(&'static str),
}

impl Leaf {
    fn expr(&self) -> Expr {
        match self {
            Leaf::Lt(k) => Expr::col("a").lt(*k),
            Leaf::Gt(k) => Expr::col("a").gt(*k),
            Leaf::EqA(k) => Expr::col("a").eq_val(*k),
            Leaf::EqB(s) => Expr::col("b").eq_val(*s),
        }
    }
}

fn arb_leaf() -> impl Strategy<Value = Leaf> {
    prop_oneof![
        (-50i64..50).prop_map(Leaf::Lt),
        (-50i64..50).prop_map(Leaf::Gt),
        (-50i64..50).prop_map(Leaf::EqA),
        prop::sample::select(vec!["x", "y", "zz"]).prop_map(Leaf::EqB),
    ]
}

/// Fold 1–4 leaves into one predicate with alternating AND/OR and an
/// optional outer NOT — deep enough to hit the vectorized short-circuit
/// masks, shallow enough to shrink well.
fn build_pred(leaves: &[Leaf], negate: bool) -> Expr {
    let mut it = leaves.iter();
    let mut e = it.next().expect("at least one leaf").expr();
    for (i, l) in it.enumerate() {
        e = if i % 2 == 0 {
            e.and(l.expr())
        } else {
            e.or(l.expr())
        };
    }
    if negate {
        e.not()
    } else {
        e
    }
}

fn filter_schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
        ])
        .unwrap(),
    )
}

fn arb_filter_row() -> impl Strategy<Value = Vec<Value>> {
    (
        prop_oneof![
            4 => (-50i64..50).prop_map(Value::Int),
            1 => Just(Value::Null),
        ],
        prop::sample::select(vec!["x", "y", "zz"]).prop_map(Value::from),
    )
        .prop_map(|(a, b)| vec![a, b])
}

/// The row-at-a-time reference: SQL `WHERE` semantics, NULL rejects.
fn row_filter(schema: &Schema, rows: &[Vec<Value>], pred: &Expr) -> Vec<Vec<Value>> {
    rows.iter()
        .filter(|r| {
            pred.eval_predicate(&RowContext::new(schema, r, &NoUdfs))
                .expect("well-typed predicate")
        })
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn row_columnar_round_trip_is_bit_identical(
        rows in prop::collection::vec(prop::collection::vec(arb_value(), 3), 0..40),
    ) {
        let schema = mixed_schema();
        let batch = Batch::new(Arc::clone(&schema), rows.clone());
        let cb = ColumnarBatch::from_batch(&batch);
        prop_assert_eq!(cb.len(), rows.len());
        let back = cb.to_batch();
        prop_assert_eq!(back.rows(), batch.rows());
        // Cell-level canonical encodings agree byte for byte.
        for (i, row) in rows.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                let mut want = Vec::new();
                v.write_bytes(&mut want);
                let mut got = Vec::new();
                cb.column(j).write_value_bytes(i, &mut got);
                prop_assert_eq!(
                    &want, &got,
                    "cell ({}, {}) encoding drifted: {:?}", i, j, v
                );
            }
        }
    }

    #[test]
    fn selection_compaction_matches_row_filter(
        rows in prop::collection::vec(arb_filter_row(), 0..60),
        leaves in prop::collection::vec(arb_leaf(), 1..5),
        negate in any::<bool>(),
    ) {
        let schema = filter_schema();
        let pred = build_pred(&leaves, negate);
        let expected = row_filter(&schema, &rows, &pred);

        let batch = Batch::new(Arc::clone(&schema), rows.clone());
        let cb = ColumnarBatch::from_batch(&batch);
        let sel = filter_columnar(&pred, &cb).expect("well-typed predicate");
        let got = cb.with_selection(sel).to_batch();
        prop_assert_eq!(got.rows(), expected.as_slice());
    }

    #[test]
    fn selection_compaction_composes_with_prior_selection(
        rows in prop::collection::vec(arb_filter_row(), 0..60),
        leaves in prop::collection::vec(arb_leaf(), 1..5),
    ) {
        let schema = filter_schema();
        let pred = build_pred(&leaves, false);
        // Reference: filter only the even-index rows, row-at-a-time.
        let evens: Vec<Vec<Value>> = rows.iter().step_by(2).cloned().collect();
        let expected = row_filter(&schema, &evens, &pred);

        let batch = Batch::new(Arc::clone(&schema), rows.clone());
        let pre: Vec<u32> = (0..rows.len() as u32).step_by(2).collect();
        let cb = ColumnarBatch::from_batch(&batch).with_selection(pre);
        let sel = filter_columnar(&pred, &cb).expect("well-typed predicate");
        let got = cb.with_selection(sel).to_batch();
        prop_assert_eq!(got.rows(), expected.as_slice());
    }
}

/// The columnar hot path's counters in `EXPLAIN ANALYZE` sessions are
/// deterministic: two fresh sessions running the same non-UDF query
/// report identical result rows and identical deterministic counters —
/// with the columnar flow actually exercised (batches emitted columnar,
/// rows pivoted only at the output boundary).
#[test]
fn columnar_counters_are_deterministic_across_sessions() {
    const Q: &str = "SELECT id FROM video WHERE id >= 10 AND id < 50";
    let run = || {
        let mut db = test_session(ReuseStrategy::Eva, 99, 60);
        let out = db.execute_sql(Q).unwrap().rows().unwrap();
        let text = db.explain_analyze(Q).unwrap();
        (out.batch.rows().to_vec(), out.metrics, text)
    };
    let (rows_a, m_a, text_a) = run();
    let (rows_b, m_b, text_b) = run();
    assert_eq!(rows_a, rows_b, "result rows must be reproducible");
    assert_eq!(rows_a.len(), 40);
    assert_eq!(
        m_a.deterministic(),
        m_b.deterministic(),
        "columnar counters must be reproducible"
    );
    assert!(
        m_a.columnar_batches > 0,
        "non-UDF query flows columnar: {m_a:?}"
    );
    assert_eq!(
        m_a.rows_pivoted, 40,
        "only the final output crosses the pivot boundary: {m_a:?}"
    );
    // The EXPLAIN ANALYZE plan tree is identical too (the runtime footer
    // carries wall-clock latencies, so compare the plan section only).
    let plan = |t: &str| t.split("-- runtime --").next().unwrap().to_string();
    assert_eq!(plan(&text_a), plan(&text_b));
}
