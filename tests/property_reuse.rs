//! The system-level property the whole design hangs on: **reuse never
//! changes results**. Random exploratory workloads (random windows,
//! attributes and area thresholds) must return identical rows under every
//! strategy, and EVA must never be slower than No-Reuse by more than the
//! bookkeeping overheads.

use proptest::prelude::*;

use eva_harness::test_session;
use eva_planner::ReuseStrategy;

#[derive(Debug, Clone)]
struct RandomQuery {
    lo: u64,
    hi: u64,
    area: Option<u32>,
    cartype: Option<&'static str>,
    color: Option<&'static str>,
}

impl RandomQuery {
    fn sql(&self) -> String {
        let mut preds = vec![
            format!("id >= {}", self.lo),
            format!("id < {}", self.hi),
            "label = 'car'".to_string(),
        ];
        if let Some(a) = self.area {
            preds.push(format!("area(frame, bbox) > 0.{a:02}"));
        }
        if let Some(t) = self.cartype {
            preds.push(format!("cartype(frame, bbox) = '{t}'"));
        }
        if let Some(c) = self.color {
            preds.push(format!("colordet(frame, bbox) = '{c}'"));
        }
        format!(
            "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE {} ORDER BY id",
            preds.join(" AND ")
        )
    }
}

const N: u64 = 90;

fn arb_query() -> impl Strategy<Value = RandomQuery> {
    (
        0u64..N,
        1u64..N,
        proptest::option::of(5u32..40),
        proptest::option::of(prop::sample::select(vec!["Nissan", "Toyota", "Honda"])),
        proptest::option::of(prop::sample::select(vec!["Gray", "Red", "Black"])),
    )
        .prop_map(|(a, len, area, cartype, color)| RandomQuery {
            lo: a.min(N - 1),
            hi: (a + len).min(N),
            area,
            cartype,
            color,
        })
        .prop_filter("nonempty window", |q| q.lo < q.hi)
}

proptest! {
    // Each case runs several full queries; keep the case count low.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn reuse_is_transparent_on_random_workloads(queries in prop::collection::vec(arb_query(), 2..5)) {
        let mut reference: Option<Vec<Vec<eva_common::Row>>> = None;
        let mut no_reuse_cost = 0.0;
        let mut eva_cost = 0.0;
        for strategy in [
            ReuseStrategy::NoReuse,
            ReuseStrategy::Eva,
            ReuseStrategy::FunCache,
            ReuseStrategy::HashStash,
        ] {
            let mut db = test_session(strategy, 777, N);
            let mut all_rows = Vec::new();
            for q in &queries {
                let out = db.execute_sql(&q.sql()).unwrap().rows().unwrap();
                all_rows.push(out.batch.rows().to_vec());
            }
            match strategy {
                ReuseStrategy::NoReuse => no_reuse_cost = db.cost_snapshot().total_ms(),
                ReuseStrategy::Eva => eva_cost = db.cost_snapshot().total_ms(),
                _ => {}
            }
            match &reference {
                Some(r) => prop_assert_eq!(r, &all_rows, "strategy {:?} diverged", strategy),
                None => reference = Some(all_rows),
            }
        }
        // EVA may pay small materialization overhead but must stay within
        // 10% of No-Reuse even in the worst (no overlap) case.
        prop_assert!(
            eva_cost <= no_reuse_cost * 1.10,
            "EVA {eva_cost} vs No-Reuse {no_reuse_cost}"
        );
    }
}
