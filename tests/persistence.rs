//! Persistence integration tests: materialized views survive a save/load
//! round trip through the storage engine and keep serving reuse.

use eva_common::{FrameId, SimClock, Value};
use eva_harness::test_session;
use eva_planner::ReuseStrategy;
use eva_storage::{StorageEngine, ViewKey, ViewKeyKind};
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    eva_harness::unique_temp_dir(&format!("persist_{tag}"))
}

#[test]
fn session_views_round_trip_to_disk() {
    let dir = temp_dir("session");
    let n = 80;
    let mut db = test_session(ReuseStrategy::Eva, 501, n);
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
         WHERE id < 60 AND label = 'car'",
    )
    .unwrap()
    .rows()
    .unwrap();
    let bytes_before = db.storage().total_view_bytes();
    assert!(bytes_before > 0);
    db.storage().save_views(&dir).unwrap();

    // A brand-new engine loads the views byte-identically.
    let fresh = StorageEngine::new();
    fresh.load_views(&dir).unwrap();
    assert_eq!(fresh.total_view_bytes(), bytes_before);
    for def in db.storage().view_defs() {
        assert_eq!(
            fresh.view_n_keys(def.id).unwrap(),
            db.storage().view_n_keys(def.id).unwrap(),
            "view {} must round trip",
            def.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loaded_views_serve_probes() {
    let dir = temp_dir("probe");
    let engine = StorageEngine::new();
    let clock = SimClock::new();
    let schema = Arc::new(
        eva_common::Schema::new(vec![eva_common::Field::new(
            "label",
            eva_common::DataType::Str,
        )])
        .unwrap(),
    );
    let view = engine.create_view("det", ViewKeyKind::Frame, schema);
    let entries: Vec<_> = (0..500u64)
        .map(|i| {
            (
                ViewKey::frame(FrameId(i)),
                vec![vec![Value::from(if i % 2 == 0 { "car" } else { "bus" })]].into(),
            )
        })
        .collect();
    engine.view_append(view, entries, &clock).unwrap();
    engine.save_views(&dir).unwrap();

    let restored = StorageEngine::new();
    restored.load_views(&dir).unwrap();
    let keys: Vec<ViewKey> = (0..600u64).map(|i| ViewKey::frame(FrameId(i))).collect();
    let probed = restored.view_probe(view, &keys, &clock).unwrap();
    for (i, result) in probed.iter().enumerate() {
        if (i as u64) < 500 {
            let rows = result.as_ref().expect("materialized");
            let want = if i % 2 == 0 { "car" } else { "bus" };
            assert_eq!(rows[0][0], Value::from(want));
        } else {
            assert!(result.is_none(), "key {i} was never materialized");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full session round trip: a new session restoring saved state reuses the
/// prior session's work immediately — including the *symbolic* state (the
/// aggregated predicates that drive cost decisions).
#[test]
fn session_state_round_trip_preserves_reuse() {
    let dir = temp_dir("state");
    let n = 70;
    let q = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE id < 60 AND label = 'car' AND cartype(frame, bbox) = 'Toyota'";
    let mut first = test_session(ReuseStrategy::Eva, 502, n);
    first.execute_sql(q).unwrap().rows().unwrap();
    first.save_state(&dir).unwrap();

    // A fresh session (same dataset seed) restores and reuses everything.
    let mut second = test_session(ReuseStrategy::Eva, 502, n);
    second.load_state(&dir).unwrap();
    let out = second.execute_sql(q).unwrap().rows().unwrap();
    let det = second.invocation_stats().get("fasterrcnn_resnet50");
    assert_eq!(det.reused_invocations, 60, "all detector results restored");
    assert_eq!(
        det.total_invocations - det.reused_invocations,
        0,
        "no fresh inference needed"
    );
    // Symbolic state restored too: the aggregated predicate covers id < 60.
    let sig = eva_udf::UdfSignature::new("fasterrcnn_resnet50", "video", &["frame"]);
    let agg = second.manager().aggregated(&sig);
    assert!(!agg.is_false(), "aggregated predicate restored: {agg}");
    // And results equal the first session's.
    let out1 = first.execute_sql(q).unwrap().rows().unwrap();
    assert_eq!(out1.batch.rows(), out.batch.rows());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restored state must be *metrically* equivalent to staying warm: a query
/// repeated after a save/load round trip reports the same probe-hit and
/// UDF-avoided counters as repeating it in the original session.
#[test]
fn restored_sessions_report_identical_hit_counters() {
    let dir = temp_dir("metrics");
    let n = 70;
    let q = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE id < 60 AND label = 'car'";
    let mut first = test_session(ReuseStrategy::Eva, 503, n);
    first.execute_sql(q).unwrap().rows().unwrap();
    first.save_state(&dir).unwrap();

    // Warm repeat in the original session.
    let warm = first.execute_sql(q).unwrap().rows().unwrap();
    assert!(warm.metrics.probe_hits > 0, "{:?}", warm.metrics);

    // Same repeat in a restored session.
    let mut second = test_session(ReuseStrategy::Eva, 503, n);
    second.load_state(&dir).unwrap();
    let restored = second.execute_sql(q).unwrap().rows().unwrap();
    assert_eq!(
        warm.metrics.deterministic(),
        restored.metrics.deterministic(),
        "a restored session must serve the query with the same counters"
    );
    assert_eq!(restored.metrics.probe_hits, 60);
    assert_eq!(restored.metrics.udf_calls_avoided, 60);
    assert_eq!(restored.metrics.udf_calls_executed, 0);

    // The loaded session's cumulative counters only contain that one warm
    // query — loading state does not import the saving session's history.
    // (The recovery pass itself is this session's history: it recovered the
    // detector view.)
    let mut total = second.metrics_snapshot();
    assert_eq!(total.views_recovered, 1, "{total:?}");
    total.views_recovered = 0;
    assert_eq!(
        total.deterministic(),
        restored.metrics.deterministic(),
        "session totals == the single query's delta"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_directory_is_an_io_error() {
    let engine = StorageEngine::new();
    let err = engine
        .load_views(std::path::Path::new("/definitely/not/a/dir"))
        .unwrap_err();
    assert_eq!(err.stage(), "io");
}
