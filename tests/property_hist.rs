//! Property tests for the log-bucketed latency histogram (DESIGN.md
//! §Tracing & latency model): whatever samples come in, the structure's
//! two contracts must hold exactly.
//!
//! * **Quantile accuracy** — power-of-two buckets bracket every sample, so
//!   an estimated quantile is within a factor of two of the true empirical
//!   sample of that rank, and always inside the observed `[min, max]`.
//!   (The guarantee needs samples below the last bucket's lower bound —
//!   `2^62` — since that bucket absorbs everything above it; wall-clock
//!   nanoseconds are far below that, and generation caps at `2^40` ≈ 18
//!   minutes.)
//! * **Merge algebra** — merging is bucket-wise addition, so it must be
//!   associative, commutative, have the empty histogram as identity, and
//!   agree exactly with recording the concatenated sample stream. This is
//!   what lets per-query histograms fold into session totals in any order.

use proptest::prelude::*;

use eva_common::LatencyHistogram;

/// Cap samples well below the unbounded top bucket (`2^62`).
const MAX_SAMPLE: u64 = 1 << 40;

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// True empirical quantile under the histogram's rank convention:
/// the `ceil(q·n)`-th smallest sample (1-based, clamped to `[1, n]`).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #[test]
    fn quantile_is_within_factor_two_of_true_sample(
        samples in prop::collection::vec(0u64..MAX_SAMPLE, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = hist_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let truth = true_quantile(&sorted, q);
        let est = h.quantile(q);
        // Always inside the observed range…
        prop_assert!(h.min() <= est && est <= h.max(), "est {est} outside [{}, {}]", h.min(), h.max());
        // …and within a factor of two of the rank's actual sample.
        prop_assert!((est as u128) * 2 >= truth as u128, "est {est} < half of true {truth}");
        prop_assert!((est as u128) <= (truth as u128) * 2, "est {est} > double true {truth}");
        // A zero sample is its own bucket: estimate zero iff truth is zero.
        prop_assert_eq!(est == 0, truth == 0);
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        samples in prop::collection::vec(0u64..MAX_SAMPLE, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let h = hist_of(&samples);
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ests: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        prop_assert!(
            ests.windows(2).all(|w| w[0] <= w[1]),
            "quantile must be non-decreasing in q: {qs:?} -> {ests:?}"
        );
    }

    #[test]
    fn merge_is_associative_commutative_with_identity(
        a in prop::collection::vec(0u64..MAX_SAMPLE, 0..100),
        b in prop::collection::vec(0u64..MAX_SAMPLE, 0..100),
        c in prop::collection::vec(0u64..MAX_SAMPLE, 0..100),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // Commutative.
        prop_assert_eq!(ha.merged(&hb), hb.merged(&ha));
        // Associative.
        prop_assert_eq!(ha.merged(&hb).merged(&hc), ha.merged(&hb.merged(&hc)));
        // Empty histogram is the identity.
        let empty = LatencyHistogram::new();
        prop_assert_eq!(ha.merged(&empty), ha);
        prop_assert_eq!(empty.merged(&ha), ha);
        // Counts and sums add exactly.
        let ab = ha.merged(&hb);
        prop_assert_eq!(ab.count(), ha.count() + hb.count());
        prop_assert_eq!(ab.sum(), ha.sum() + hb.sum());
    }

    #[test]
    fn merge_equals_recording_the_concatenated_stream(
        a in prop::collection::vec(0u64..MAX_SAMPLE, 0..100),
        b in prop::collection::vec(0u64..MAX_SAMPLE, 0..100),
    ) {
        let merged = hist_of(&a).merged(&hist_of(&b));
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&concat));
        // Order of the stream never matters either.
        let mut rev: Vec<u64> = concat.clone();
        rev.reverse();
        prop_assert_eq!(hist_of(&concat), hist_of(&rev));
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_total(
        samples in prop::collection::vec(0u64..MAX_SAMPLE, 0..200),
    ) {
        let h = hist_of(&samples);
        let cum = h.cumulative_buckets();
        if samples.is_empty() {
            prop_assert!(cum.is_empty());
        } else {
            prop_assert_eq!(cum.last().unwrap().1, h.count());
            prop_assert!(cum.windows(2).all(|w| w[0].0 < w[1].0), "bounds strictly increase");
            prop_assert!(cum.windows(2).all(|w| w[0].1 < w[1].1), "counts strictly increase (empty buckets skipped)");
        }
    }
}
