//! Query-lifecycle governance integration suite (the CI `overload` job).
//!
//! Four contracts, end to end through `EvaDb`:
//!
//! * **Cancellation sweep** — with `cancel_at_morsel = k`, a parallel
//!   pipeline is cancelled between morsel `k-1` and `k` at every ordinal
//!   and every worker-pool width. The cancelled run's deterministic
//!   counters are width-invariant (the completed prefix is replayed on the
//!   caller thread), the pool and session stay reusable (no poisoned
//!   locks), and a governance-lifted re-run is bit-identical to a run that
//!   was never cancelled.
//! * **Deadline / budget** — tripping unwinds with a structured
//!   `Cancelled { Deadline | Budget }`, never a panic, and claims no view
//!   coverage.
//! * **Degradation** — an aggregation over budget completes exactly in the
//!   streaming fallback and skips view materialization for that query.
//! * **Breaker** — `K` consecutive `udf_transient` retry exhaustions open
//!   the circuit; open fails fast without burning retries; the SimClock
//!   cooldown half-opens it; a successful probe closes it. All transitions
//!   land in the `udf_breaker_*` counters.

use eva_common::clock::CostCategory;
use eva_common::{CancelReason, Failpoint, FireRule, GovernorConfig, MetricsSnapshot};
use eva_core::{EvaDb, SessionConfig, WorkerPool};
use eva_exec::ExecConfig;
use eva_harness::test_dataset;
use eva_parser::{parse, SelectStmt, Statement};
use eva_planner::ReuseStrategy;
use eva_udf::{BREAKER_BASE_COOLDOWN_MS, BREAKER_TRIP_THRESHOLD};

/// Morsel size for the sweep: 48 frames / 8 = 6 ordinals.
const MORSEL: usize = 8;

/// Non-UDF scan+project query — the columnar parallel-pipeline hot path.
const SCAN_Q: &str = "SELECT id, timestamp FROM video";

/// Detector query for the deadline, coverage, and breaker scenarios.
const DETECTOR_Q: &str = "SELECT id, label FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                          WHERE id < 40 AND label = 'car'";

/// Aggregation whose hash state cannot fit a 32-byte budget.
const AGG_Q: &str = "SELECT label, COUNT(*) FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                     WHERE id < 24 GROUP BY label ORDER BY label";

fn parse_select(sql: &str) -> SelectStmt {
    match parse(sql).expect(sql) {
        Statement::Select(s) => s,
        other => panic!("`{sql}` is not a SELECT: {other:?}"),
    }
}

/// A session tuned so `SCAN_Q` runs as a parallel pipeline whenever a pool
/// is supplied: tiny morsels, no minimum-row threshold.
fn session(governor: GovernorConfig) -> EvaDb {
    let mut cfg = SessionConfig::for_strategy(ReuseStrategy::Eva);
    cfg.exec = ExecConfig {
        batch_size: MORSEL,
        morsel_rows: MORSEL,
        parallel_scan_min_rows: 1,
        ..ExecConfig::default()
    };
    cfg.governor = governor;
    let mut db = EvaDb::new(cfg).expect("session construction");
    db.load_video(test_dataset(777, 48), "video")
        .expect("dataset load");
    db.storage().failpoints().disarm_all();
    db
}

fn cancel_at(k: u64) -> GovernorConfig {
    GovernorConfig {
        cancel_at_morsel: Some(k),
        ..GovernorConfig::default()
    }
}

#[test]
fn cancellation_at_every_morsel_ordinal_is_width_invariant_and_recoverable() {
    let stmt = parse_select(SCAN_Q);
    let pool1 = WorkerPool::new(1);
    let mut probe = session(GovernorConfig::default());
    let base = probe
        .execute_select_with_pool(&stmt, Some(&pool1))
        .expect("ungoverned baseline");
    let n_morsels = base.metrics.morsels_dispatched;
    assert!(n_morsels >= 4, "need a real sweep, got {n_morsels} morsels");

    // Deterministic session-counter snapshots of each cancelled run, per
    // ordinal, collected across widths.
    let mut per_ordinal: Vec<Vec<MetricsSnapshot>> = vec![Vec::new(); n_morsels as usize + 1];
    for width in [1usize, 2, 8] {
        // ONE pool reused for the entire sweep at this width: every
        // cancelled dispatch must leave it reusable, with no poisoned
        // locks and no stuck lanes.
        let pool = WorkerPool::new(width);
        let mut base_db = session(GovernorConfig::default());
        let expect = base_db
            .execute_select_with_pool(&stmt, Some(&pool))
            .expect("never-cancelled run");
        assert_eq!(expect.batch.rows(), base.batch.rows(), "width {width}");

        for k in 0..=n_morsels {
            let mut db = session(cancel_at(k));
            let result = db.execute_select_with_pool(&stmt, Some(&pool));
            if k < n_morsels {
                let err = result.expect_err("gate must refuse an in-range ordinal");
                assert_eq!(
                    err.cancel_reason(),
                    Some(CancelReason::User),
                    "width {width} ordinal {k}: {err}"
                );
            } else {
                // The gate sits beyond the last morsel: nothing trips.
                let out = result.expect("gate beyond the last morsel never trips");
                assert_eq!(out.batch.rows(), expect.batch.rows());
            }
            per_ordinal[k as usize].push(db.metrics_snapshot().deterministic());

            // Same session, same pool, governance lifted: bit-identical to
            // the never-cancelled run — rows, simulated cost, counters.
            db.set_governor(GovernorConfig::default());
            let rerun = db
                .execute_select_with_pool(&stmt, Some(&pool))
                .expect("re-run after cancellation");
            assert_eq!(
                rerun.batch.rows(),
                expect.batch.rows(),
                "width {width} ordinal {k}: re-run rows"
            );
            // The session clock accumulated the cancelled prefix's charges,
            // so the re-run's per-query cost delta can differ from the
            // never-cancelled run by float-summation ulps — but by nothing
            // more (compare to a microsecond, far below one charge).
            assert_eq!(
                format!("{:.6?}", rerun.breakdown),
                format!("{:.6?}", expect.breakdown),
                "width {width} ordinal {k}: re-run simulated cost"
            );
            assert_eq!(
                rerun.metrics.deterministic(),
                expect.metrics.deterministic(),
                "width {width} ordinal {k}: re-run counters"
            );
        }
    }
    // The cancelled run's counters cover exactly the completed prefix
    // `0..k`, so they are a pure function of the ordinal — identical at
    // width 1, 2 and 8.
    for (k, snaps) in per_ordinal.iter().enumerate() {
        for s in &snaps[1..] {
            assert_eq!(
                snaps[0], *s,
                "ordinal {k}: cancelled-run counters must be width-invariant"
            );
        }
    }
}

#[test]
fn deadline_cancellation_is_structured_and_claims_no_coverage() {
    let stmt = parse_select(DETECTOR_Q);
    let mut db = session(GovernorConfig {
        deadline_ms: Some(0.0),
        ..GovernorConfig::default()
    });
    let err = db
        .execute_select_with_pool(&stmt, None)
        .expect_err("a 0ms simulated deadline must cancel");
    assert_eq!(err.cancel_reason(), Some(CancelReason::Deadline), "{err}");
    assert!(err.to_string().contains("deadline"), "{err}");

    // The cancelled query must not have claimed coverage for rows it never
    // materialized: the lifted re-run on the same session answers exactly
    // like a fresh, never-governed session.
    db.set_governor(GovernorConfig::default());
    let warm = db
        .execute_select_with_pool(&stmt, None)
        .expect("session stays usable after a deadline cancellation");
    let mut fresh = session(GovernorConfig::default());
    let expect = fresh
        .execute_select_with_pool(&stmt, None)
        .expect("fresh baseline");
    assert_eq!(warm.batch.rows(), expect.batch.rows());
    assert!(!warm.batch.rows().is_empty(), "workload must produce rows");
}

#[test]
fn budget_trip_cancels_wide_results_but_degrades_aggregates_exactly() {
    // No degradation path for a plain projection: the result buffer blows
    // the budget and the query unwinds with `Cancelled { Budget }`.
    let mut db = session(GovernorConfig {
        budget_bytes: Some(64),
        ..GovernorConfig::default()
    });
    let err = db
        .execute_select_with_pool(&parse_select(SCAN_Q), None)
        .expect_err("a 64-byte budget cannot hold 48 result rows");
    assert_eq!(err.cancel_reason(), Some(CancelReason::Budget), "{err}");
    assert!(err.to_string().contains("memory budget"), "{err}");

    // Aggregation degrades instead: exact answers in streaming mode, view
    // materialization skipped for the degraded query.
    let agg = parse_select(AGG_Q);
    let mut governed = session(GovernorConfig {
        budget_bytes: Some(32),
        ..GovernorConfig::default()
    });
    let out = governed
        .execute_select_with_pool(&agg, None)
        .expect("budget trip on aggregation degrades, not fails");
    assert_eq!(out.metrics.degraded_queries, 1, "{:?}", out.metrics);
    assert!(
        out.metrics.materialization_skipped >= 1,
        "degraded query must skip view materialization: {:?}",
        out.metrics
    );
    let mut fresh = session(GovernorConfig::default());
    let expect = fresh
        .execute_select_with_pool(&agg, None)
        .expect("ungoverned baseline");
    assert_eq!(
        out.batch.rows(),
        expect.batch.rows(),
        "degraded aggregation must stay exact"
    );
}

#[test]
fn external_cancel_flag_unwinds_with_user_reason() {
    let mut db = session(GovernorConfig::default());
    let handle = db.cancel_handle();
    // A stale flag from before the query must NOT kill it: the flag is
    // re-armed at query start.
    handle.store(true, std::sync::atomic::Ordering::SeqCst);
    db.execute_select_with_pool(&parse_select(SCAN_Q), None)
        .expect("stale cancel flag is cleared at query start");

    // A flag held high by another thread lands as `Cancelled { User }` at
    // the next batch boundary.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let spinner = {
        let handle = db.cancel_handle();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                handle.store(true, std::sync::atomic::Ordering::SeqCst);
                std::thread::yield_now();
            }
        })
    };
    let err = db
        .execute_select_with_pool(&parse_select(DETECTOR_Q), None)
        .expect_err("held-high cancel flag must cancel the query");
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    spinner.join().expect("spinner joins");
    assert_eq!(err.cancel_reason(), Some(CancelReason::User), "{err}");

    // Session usable afterwards.
    db.cancel_handle()
        .store(false, std::sync::atomic::Ordering::SeqCst);
    db.execute_select_with_pool(&parse_select(SCAN_Q), None)
        .expect("session stays usable after a user cancellation");
}

#[test]
fn udf_breaker_opens_fails_fast_half_opens_and_recloses() {
    let stmt = parse_select(DETECTOR_Q);
    let mut db = session(GovernorConfig::default());
    db.storage().failpoints().arm(
        Failpoint::UdfTransient,
        FireRule::Keyed {
            prob_permille: 1000,
            fails: 100,
        },
    );
    // K consecutive retry-budget exhaustions trip the breaker.
    for i in 0..BREAKER_TRIP_THRESHOLD {
        let err = db
            .execute_select_with_pool(&stmt, None)
            .expect_err("persistently failing UDF exhausts its retry budget");
        assert!(
            err.to_string().contains("retry budget"),
            "attempt {i}: {err}"
        );
        assert!(
            err.to_string().contains("last backoff"),
            "attempt {i}: {err}"
        );
    }
    assert_eq!(db.breaker().state_label(), "open");
    assert_eq!(db.breaker().times_opened(), 1);

    // Open: the next evaluation fails fast without burning retries.
    let retries_before = db.metrics_snapshot().udf_retries;
    let err = db
        .execute_select_with_pool(&stmt, None)
        .expect_err("open breaker fails fast");
    assert!(err.to_string().contains("circuit breaker is open"), "{err}");
    assert_eq!(
        db.metrics_snapshot().udf_retries,
        retries_before,
        "no retries may be burned while the breaker is open"
    );

    // SimClock cooldown elapses → half-open; the probe (faults disarmed)
    // succeeds and closes the breaker.
    db.storage().failpoints().disarm_all();
    db.clock()
        .charge(CostCategory::Other, BREAKER_BASE_COOLDOWN_MS + 1.0);
    let out = db
        .execute_select_with_pool(&stmt, None)
        .expect("half-open probe must be allowed through");
    assert!(!out.batch.rows().is_empty(), "probe answers the query");
    assert_eq!(db.breaker().state_label(), "closed");
    assert_eq!(db.breaker().times_halfopened(), 1);
    let m = db.metrics_snapshot();
    assert_eq!(m.udf_breaker_open, 1, "{m:?}");
    assert_eq!(m.udf_breaker_halfopen, 1, "{m:?}");
}
