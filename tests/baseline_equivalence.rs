//! Result equivalence and relative-cost ordering across every system under
//! test: all strategies must return identical rows; only their simulated
//! costs may differ — and must differ in the directions the paper reports.

use eva_harness::{test_dataset, test_session};
use eva_planner::ReuseStrategy;
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

const STRATEGIES: [ReuseStrategy; 4] = [
    ReuseStrategy::NoReuse,
    ReuseStrategy::Eva,
    ReuseStrategy::HashStash,
    ReuseStrategy::FunCache,
];

#[test]
fn all_strategies_agree_on_full_workload() {
    let n = 200;
    let workload = Workload::new(
        "equiv",
        vbench_high(n, DetectorKind::Physical("fasterrcnn_resnet50"), false),
    );
    let mut counts: Option<Vec<usize>> = None;
    for strategy in STRATEGIES {
        let mut db = test_session(strategy, 301, n);
        let report = run_workload(&mut db, &workload).unwrap();
        match &counts {
            Some(c) => assert_eq!(c, &report.row_counts(), "strategy {strategy:?}"),
            None => counts = Some(report.row_counts()),
        }
    }
}

#[test]
fn rankings_do_not_change_results() {
    let n = 150;
    let sql = "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
               WHERE id < 100 AND label = 'car' AND cartype(frame, bbox) = 'Nissan' \
               AND colordet(frame, bbox) = 'Gray' ORDER BY id";
    let mut rows: Option<Vec<eva_common::Row>> = None;
    for ranking in [
        eva_planner::RankingKind::Canonical,
        eva_planner::RankingKind::MaterializationAware,
    ] {
        let mut db = test_session(ReuseStrategy::Eva, 302, n);
        let mut cfg = db.config();
        cfg.planner.ranking = ranking;
        db.set_config(cfg);
        // Warm up with a partial query so the rankings actually diverge.
        db.execute_sql(
            "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE id < 100 AND label = 'car' AND cartype(frame, bbox) = 'Nissan'",
        )
        .unwrap()
        .rows()
        .unwrap();
        let out = db.execute_sql(sql).unwrap().rows().unwrap();
        match &rows {
            Some(r) => assert_eq!(r, out.batch.rows(), "ranking {ranking:?}"),
            None => rows = Some(out.batch.rows().to_vec()),
        }
    }
}

#[test]
fn eva_dominates_baselines_on_repetition() {
    // Three repetitions of the same query: EVA and FunCache fully reuse,
    // HashStash reuses the detector, No-Reuse pays thrice.
    let n = 120;
    let sql = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
               WHERE id < 100 AND label = 'car' AND cartype(frame, bbox) = 'Honda'";
    let mut totals = std::collections::BTreeMap::new();
    for strategy in STRATEGIES {
        let mut db = test_session(strategy, 303, n);
        for _ in 0..3 {
            db.execute_sql(sql).unwrap().rows().unwrap();
        }
        totals.insert(format!("{strategy:?}"), db.cost_snapshot().total_ms());
    }
    let no = totals["NoReuse"];
    let eva = totals["Eva"];
    let hs = totals["HashStash"];
    let fc = totals["FunCache"];
    assert!(eva < hs, "EVA {eva} must beat HashStash {hs}");
    assert!(eva < fc, "EVA {eva} must beat FunCache {fc}");
    assert!(hs < no, "HashStash {hs} must beat No-Reuse {no}");
    assert!(fc < no, "FunCache {fc} must beat No-Reuse {no} here");
}

#[test]
fn funcache_pays_hashing_even_on_misses() {
    let n = 60;
    let mut db = test_session(ReuseStrategy::FunCache, 304, n);
    let out = db
        .execute_sql(
            "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE id < 50 AND label = 'car'",
        )
        .unwrap()
        .rows()
        .unwrap();
    let hash_ms = out.breakdown.get(eva_common::CostCategory::HashInput);
    assert!(hash_ms > 0.0, "cold run still hashes all inputs");
    // Hash cost for 50 frame-sized arguments at the configured rate.
    let per_frame =
        eva_storage::IoCostModel::default().hash_cost_ms(test_dataset(304, n).frame_bytes());
    assert!(
        (hash_ms - 50.0 * per_frame).abs() < 1e-6,
        "hash_ms={hash_ms}"
    );
}

#[test]
fn hashstash_recycler_vs_eva_signature_granularity() {
    // The defining difference: after a predicate-only change, HashStash
    // reuses the detector operator but re-evaluates predicate UDFs; EVA
    // reuses both.
    let n = 100;
    let q1 = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
              WHERE id < 80 AND label = 'car' AND colordet(frame, bbox) = 'Red'";
    let q2 = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
              WHERE id < 80 AND label = 'car' AND colordet(frame, bbox) = 'Blue'";
    for (strategy, expect_color_reuse) in [
        (ReuseStrategy::HashStash, false),
        (ReuseStrategy::Eva, true),
    ] {
        let mut db = test_session(strategy, 305, n);
        db.execute_sql(q1).unwrap().rows().unwrap();
        db.execute_sql(q2).unwrap().rows().unwrap();
        let cd = db.invocation_stats().get("colordet");
        assert_eq!(
            cd.reused_invocations > 0,
            expect_color_reuse,
            "{strategy:?}: colordet reuse = {}",
            cd.reused_invocations
        );
    }
}
