//! Crash-at-every-failpoint chaos suite.
//!
//! For every injection site the durable store claims to survive, this test
//! kills a save mid-flight (or corrupts its output), recovers into a fresh
//! session, re-runs the workload, and asserts the results are bit-identical
//! to a session that never crashed. Everything is deterministic: ordinal
//! sites fire by write index, the keyed UDF site fires by seeded input
//! hash, so any failure here replays exactly.
//!
//! The suite is also the target of the CI `chaos` job, which runs it with
//! `EVA_FAILPOINTS=all` exported — every engine then boots with all sites
//! armed at their defaults, which is why each scenario starts from
//! `disarm_all` and arms exactly what it wants.

use eva_common::{Failpoint, FireRule, Row};
use eva_core::EvaDb;
use eva_harness::test_session;
use eva_planner::ReuseStrategy;

const QUERIES: [&str; 2] = [
    "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
     WHERE id < 40 AND label = 'car'",
    "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
     WHERE id < 40 AND label = 'car' AND cartype(frame, bbox) = 'Toyota'",
];

/// Writes a full save performs: one segment per view (detector frame view +
/// cartype box view), the manifest, and the manager state.
const N_WRITES: u64 = 4;

fn unique_dir(tag: &str) -> std::path::PathBuf {
    eva_harness::unique_temp_dir(&format!("chaos_{tag}"))
}

/// A session over the standard chaos dataset with every failpoint disarmed
/// (the CI job exports `EVA_FAILPOINTS=all`, so engines boot armed).
fn fresh_session() -> EvaDb {
    let db = test_session(ReuseStrategy::Eva, 777, 48);
    db.storage().failpoints().disarm_all();
    db
}

fn run_queries(db: &mut EvaDb) -> Vec<Row> {
    let mut rows = Vec::new();
    for q in QUERIES {
        let out = db.execute_sql(q).expect(q).rows().expect(q);
        rows.extend(out.batch.rows().iter().cloned());
    }
    rows
}

fn baseline_rows() -> Vec<Row> {
    let mut db = fresh_session();
    let rows = run_queries(&mut db);
    assert!(!rows.is_empty(), "chaos workload must produce rows");
    rows
}

/// Interrupt or corrupt the `nth` write of a save at `site`, recover into a
/// fresh session, re-run the workload, and return (rows, quarantined,
/// save_failed).
fn crash_and_recover(site: Failpoint, nth: u64, dir: &std::path::Path) -> (Vec<Row>, usize, bool) {
    let mut victim = fresh_session();
    run_queries(&mut victim);
    victim.storage().failpoints().arm(site, FireRule::Nth(nth));
    let save_failed = victim.save_state(dir).is_err();
    victim.storage().failpoints().disarm_all();

    let mut survivor = fresh_session();
    let report = survivor
        .load_state(dir)
        .unwrap_or_else(|e| panic!("recovery pass must not error at {site:?} nth={nth}: {e}"));
    let quarantined = report.quarantined.len();
    assert_eq!(
        survivor.metrics_snapshot().views_quarantined,
        quarantined as u64,
        "counters mirror the report: {report}"
    );
    let rows = run_queries(&mut survivor);
    (rows, quarantined, save_failed)
}

/// Crash sites: the save aborts with an error and whatever landed on disk
/// (nothing, some segments, or everything but the manager state) recovers
/// into a session that recomputes the rest.
#[test]
fn save_interrupted_at_every_write_recovers_bit_identically() {
    let baseline = baseline_rows();
    for site in [Failpoint::TornWrite, Failpoint::RenameFail] {
        for nth in 1..=N_WRITES {
            let dir = unique_dir(&format!("{}_{nth}", site.name()));
            let (rows, _, save_failed) = crash_and_recover(site, nth, &dir);
            assert!(save_failed, "{site:?} nth={nth} must abort the save");
            assert_eq!(
                rows, baseline,
                "{site:?} nth={nth}: recovered session must reproduce the baseline"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Corruption sites: the save "succeeds" but one file is damaged (short
/// write renamed into place, or a bit flipped after the fact). Recovery
/// quarantines segments, falls back past a damaged manifest, and starts the
/// manager cold — and the workload still reproduces the baseline.
#[test]
fn corrupted_store_quarantines_and_recomputes_bit_identically() {
    let baseline = baseline_rows();
    for site in [Failpoint::ShortWrite, Failpoint::BitFlip] {
        let mut total_quarantined = 0usize;
        for nth in 1..=N_WRITES {
            let dir = unique_dir(&format!("{}_{nth}", site.name()));
            let (rows, quarantined, save_failed) = crash_and_recover(site, nth, &dir);
            assert!(
                !save_failed,
                "{site:?} corrupts silently, the save succeeds"
            );
            total_quarantined += quarantined;
            assert_eq!(
                rows, baseline,
                "{site:?} nth={nth}: degraded session must reproduce the baseline"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
        // The sweep hit the two view segments (nth 1 and 2), so corruption
        // was actually detected — not silently loaded.
        assert!(
            total_quarantined >= 2,
            "{site:?}: segment corruption must quarantine, got {total_quarantined}"
        );
    }
}

/// The keyed UDF site: flaky evaluations retry deterministically and the
/// answer is unchanged; the counters prove failures were actually injected.
#[test]
fn transient_udf_failures_do_not_change_results() {
    let baseline = baseline_rows();
    let mut db = fresh_session();
    db.storage().failpoints().set_seed(42);
    db.storage().failpoints().arm(
        Failpoint::UdfTransient,
        FireRule::Keyed {
            prob_permille: 300,
            fails: 2,
        },
    );
    let rows = run_queries(&mut db);
    assert_eq!(rows, baseline, "retried UDFs must not change the answer");
    let m = db.metrics_snapshot();
    assert!(m.udf_retries > 0, "failures actually injected: {m:?}");
    assert_eq!(m.udf_gave_up, 0, "{m:?}");
}

/// A persistently failing UDF exhausts the retry budget with a clean error
/// naming the model — never a panic, never a wrong answer.
#[test]
fn persistent_udf_failure_errors_cleanly() {
    let mut db = fresh_session();
    db.storage().failpoints().arm(
        Failpoint::UdfTransient,
        FireRule::Keyed {
            prob_permille: 1000,
            fails: 100,
        },
    );
    let err = db.execute_sql(QUERIES[0]).unwrap_err();
    assert_eq!(err.stage(), "exec");
    assert!(err.to_string().contains("retry budget"), "{err}");
    assert_eq!(db.metrics_snapshot().udf_gave_up, 1);
}

/// Crashing, recovering, and crashing again must not lose previously
/// recovered state: two interrupted save/load cycles still converge to the
/// baseline.
#[test]
fn repeated_crashes_still_converge() {
    let baseline = baseline_rows();
    let dir = unique_dir("repeat");
    let mut db = fresh_session();
    run_queries(&mut db);
    db.storage()
        .failpoints()
        .arm(Failpoint::TornWrite, FireRule::Nth(2));
    assert!(db.save_state(&dir).is_err());
    db.storage().failpoints().disarm_all();

    let mut db2 = fresh_session();
    db2.load_state(&dir).unwrap();
    run_queries(&mut db2);
    db2.storage()
        .failpoints()
        .arm(Failpoint::BitFlip, FireRule::Nth(1));
    assert!(db2.save_state(&dir).is_ok(), "bit flip is silent");
    db2.storage().failpoints().disarm_all();

    let mut db3 = fresh_session();
    let report = db3.load_state(&dir).unwrap();
    assert!(!report.is_clean(), "{report}");
    assert_eq!(run_queries(&mut db3), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}
