//! Cross-query reuse scenarios mirroring the paper's Listing 1 / Table 1:
//! zoom in, zoom out, range shifts, cross-application logical reuse, and the
//! soundness guarantees around them.

use eva_harness::test_session;
use eva_planner::ReuseStrategy;

const N: u64 = 160;

#[test]
fn zoom_out_reuses_subset_results() {
    let mut db = test_session(ReuseStrategy::Eva, 201, N);
    // Narrow query first…
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
         WHERE id < 80 AND label = 'car' AND area(frame, bbox) > 0.3 \
         AND cartype(frame, bbox) = 'Toyota'",
    )
    .unwrap()
    .rows()
    .unwrap();
    let det_before = db.invocation_stats().get("fasterrcnn_resnet50");
    assert_eq!(det_before.reused_invocations, 0);

    // …then zoom out (drop the area predicate): detector results are fully
    // covered; CarType partially (the boxes the first query evaluated).
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
         WHERE id < 80 AND label = 'car' AND cartype(frame, bbox) = 'Toyota'",
    )
    .unwrap()
    .rows()
    .unwrap();
    let det = db.invocation_stats().get("fasterrcnn_resnet50");
    assert_eq!(
        det.reused_invocations, 80,
        "all 80 frames' detections must be reused"
    );
    let ct = db.invocation_stats().get("cartype");
    assert!(ct.reused_invocations > 0, "area-filtered boxes reused");
}

#[test]
fn range_shift_partially_reuses() {
    let mut db = test_session(ReuseStrategy::Eva, 202, N);
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) WHERE id < 100 AND label='car'",
    )
    .unwrap()
    .rows()
    .unwrap();
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
         WHERE id >= 50 AND id < 150 AND label='car'",
    )
    .unwrap()
    .rows()
    .unwrap();
    let det = db.invocation_stats().get("fasterrcnn_resnet50");
    // Second query: 50 reused (frames 50..100) + 50 fresh (100..150).
    assert_eq!(det.total_invocations, 200);
    assert_eq!(det.reused_invocations, 50);
    assert_eq!(det.distinct_inputs, 150);
    // Aggregated predicate coverage reduced to one range.
    let sig = eva_udf::UdfSignature::new("fasterrcnn_resnet50", "video", &["frame"]);
    let agg = db.manager().aggregated(&sig);
    assert_eq!(agg.conjuncts().len(), 1, "p_u reduced: {agg}");
}

#[test]
fn aggregated_predicate_converges_to_full_coverage() {
    let mut db = test_session(ReuseStrategy::Eva, 203, N);
    for (lo, hi) in [(0, 60), (60, 120), (100, 160)] {
        db.execute_sql(&format!(
            "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE id >= {lo} AND id < {hi} AND label='car'"
        ))
        .unwrap()
        .rows()
        .unwrap();
    }
    // A fourth query over everything evaluates nothing fresh.
    db.execute_sql("SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) WHERE label='car'")
        .unwrap()
        .rows()
        .unwrap();
    let det = db.invocation_stats().get("fasterrcnn_resnet50");
    assert_eq!(det.distinct_inputs, 160);
    assert_eq!(
        det.total_invocations - det.reused_invocations,
        160,
        "only the three covering passes evaluated"
    );
}

#[test]
fn cross_application_logical_reuse() {
    let mut db = test_session(ReuseStrategy::Eva, 204, N);
    // Tracking app: HIGH accuracy.
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY objectdetector(frame) ACCURACY 'HIGH' \
         WHERE id < 100 AND label = 'car'",
    )
    .unwrap()
    .rows()
    .unwrap();
    // Traffic app: LOW accuracy over overlapping frames — Algorithm 2 reads
    // the HIGH view, so YOLO never runs there.
    db.execute_sql(
        "SELECT timestamp, COUNT(*) AS n FROM video CROSS APPLY \
         objectdetector(frame) ACCURACY 'LOW' WHERE id < 100 AND label = 'car' \
         GROUP BY timestamp",
    )
    .unwrap()
    .rows()
    .unwrap();
    assert_eq!(db.invocation_stats().get("yolo_tiny").total_invocations, 0);
    assert!(
        db.invocation_stats()
            .get("fasterrcnn_resnet101")
            .reused_invocations
            >= 100
    );
}

#[test]
fn accuracy_constraint_blocks_low_view_for_high_query() {
    let mut db = test_session(ReuseStrategy::Eva, 205, N);
    // LOW results exist…
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY objectdetector(frame) ACCURACY 'LOW' \
         WHERE id < 50 AND label = 'car'",
    )
    .unwrap()
    .rows()
    .unwrap();
    // …but a HIGH query must not read them.
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY objectdetector(frame) ACCURACY 'HIGH' \
         WHERE id < 50 AND label = 'car'",
    )
    .unwrap()
    .rows()
    .unwrap();
    let yolo = db.invocation_stats().get("yolo_tiny");
    assert_eq!(yolo.reused_invocations, 0, "yolo view unusable for HIGH");
    let rcnn = db.invocation_stats().get("fasterrcnn_resnet101");
    assert_eq!(rcnn.total_invocations - rcnn.reused_invocations, 50);
}

#[test]
fn materialization_disabled_means_no_growth() {
    let mut db = test_session(ReuseStrategy::Eva, 206, N);
    let mut cfg = db.config();
    cfg.planner.materialize = false;
    db.set_config(cfg);
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) WHERE id < 40 AND label='car'",
    )
    .unwrap()
    .rows()
    .unwrap();
    assert_eq!(db.storage().total_view_bytes(), 0);
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) WHERE id < 40 AND label='car'",
    )
    .unwrap()
    .rows()
    .unwrap();
    assert_eq!(db.invocation_stats().hit_percentage(), 0.0);
}

#[test]
fn specialized_filter_gates_detector() {
    let mut db = test_session(ReuseStrategy::Eva, 207, N);
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
         WHERE id < 100 AND specialized_filter(frame) = 'true' AND label = 'car'",
    )
    .unwrap()
    .rows()
    .unwrap();
    let filt = db.invocation_stats().get("specialized_filter");
    let det = db.invocation_stats().get("fasterrcnn_resnet50");
    assert_eq!(filt.total_invocations, 100, "filter sees every frame");
    assert!(
        det.total_invocations <= filt.total_invocations,
        "detector runs only on frames passing the filter: {} vs {}",
        det.total_invocations,
        filt.total_invocations
    );
}
