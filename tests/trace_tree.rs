//! Structural tests for query-scoped tracing (DESIGN.md §Tracing &
//! latency model): every query must leave behind a well-formed span tree
//! whose per-span unit counts reconcile exactly with the runtime-metrics
//! counters, and whose deterministic projection is bit-identical across
//! fresh sessions.
//!
//! What is locked, and what deliberately is not:
//!
//! * **Tree shape** — one root `query` span with id 1, every other span's
//!   parent created before it (spans are stored in creation pre-order).
//! * **Count reconciliation** (under `ReuseStrategy::Eva`, where the
//!   conditional-APPLY path is the only UDF driver): the `udf_eval` span
//!   counts sum to `udf_calls_executed` and the `view_probe` span counts
//!   sum to `probes` — the trace and the counters are two views of the
//!   same events, so they cannot disagree.
//! * **Histogram accounting** — each span exit records exactly one
//!   wall-clock sample, so per-kind histogram counts equal the summed
//!   `calls` of that kind's spans (as long as no span was dropped).
//! * **Wall-clock values are never asserted** — they are nondeterministic
//!   by design; [`QueryTrace::deterministic`] masks them, and the golden
//!   below locks only the digit-redacted rendering of that projection.
//!
//! Bless mode: `EVA_BLESS=1 cargo test --test trace_tree` re-records the
//! golden under `tests/goldens/trace_tree/`; a missing golden is recorded
//! on first run rather than failing, since the redacted tree is only
//! produced by an actual execution.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use eva_common::{QueryTrace, SpanKind};
use eva_harness::test_session;
use eva_planner::ReuseStrategy;

const N: u64 = 100;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens/trace_tree")
}

fn window_sql(lo: u64, hi: u64) -> String {
    format!(
        "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
         WHERE id >= {lo} AND id < {hi} AND label = 'car'"
    )
}

/// Replace every digit run (including decimals) with `#`, leaving digits
/// embedded in identifiers (`fasterrcnn_resnet50`) alone — same redaction
/// the EXPLAIN ANALYZE goldens use.
fn redact(text: &str) -> String {
    let mut out = String::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let prev_is_word = out
            .chars()
            .last()
            .is_some_and(|p| p.is_ascii_alphanumeric() || p == '_');
        if c.is_ascii_digit() && !prev_is_word {
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            out.push('#');
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// Assert the span tree is well-formed and return per-kind `(Σ count,
/// Σ calls)` totals for reconciliation.
fn check_tree(trace: &QueryTrace) -> BTreeMap<&'static str, (u64, u64)> {
    assert!(!trace.spans.is_empty(), "query left no spans");
    assert_eq!(trace.dropped, 0, "test queries must fit the span cap");
    let root = &trace.spans[0];
    assert_eq!(root.id, 1, "root span id");
    assert_eq!(root.parent, None, "root has no parent");
    assert_eq!(root.kind, SpanKind::Query, "root kind");
    let mut seen = std::collections::BTreeSet::new();
    let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for s in &trace.spans {
        assert!(seen.insert(s.id), "duplicate span id {}", s.id);
        if let Some(p) = s.parent {
            assert!(
                seen.contains(&p),
                "span {} references parent {p} created after it",
                s.id
            );
        } else {
            assert_eq!(s.id, 1, "only the root may be parentless");
        }
        assert!(s.calls >= 1, "span {} was never entered", s.id);
        let t = totals.entry(s.kind.label()).or_default();
        t.0 += s.count;
        t.1 += s.calls;
    }
    totals
}

#[test]
fn span_counts_reconcile_with_metrics() {
    let mut db = test_session(ReuseStrategy::Eva, 424, N);

    // Cold window: every frame is evaluated, none probed from a view yet
    // (the probe batch still runs and reports misses).
    let cold = db.execute_sql(&window_sql(0, 60)).unwrap().rows().unwrap();
    let totals = check_tree(&cold.trace);
    let sum = |totals: &BTreeMap<&'static str, (u64, u64)>, label: &str| {
        totals.get(label).map(|t| t.0).unwrap_or(0)
    };
    let m = &cold.metrics;
    assert_eq!(sum(&totals, "udf_eval"), m.udf_calls_executed, "{m:?}");
    assert_eq!(sum(&totals, "view_probe"), m.probes, "{m:?}");
    assert!(m.udf_calls_executed > 0, "{m:?}");

    // Warm overlapping window: probes hit for the overlap, evals only for
    // the new frames — the same reconciliation must keep holding.
    let warm = db
        .execute_sql(&window_sql(30, 100))
        .unwrap()
        .rows()
        .unwrap();
    let totals = check_tree(&warm.trace);
    let m = &warm.metrics;
    assert_eq!(sum(&totals, "view_probe"), m.probes, "{m:?}");
    assert_eq!(sum(&totals, "udf_eval"), m.udf_calls_executed, "{m:?}");
    assert!(m.probe_hits > 0, "{m:?}");

    // Fully covered window: all reuse, so no udf_eval span at all.
    let full = db.execute_sql(&window_sql(0, 100)).unwrap().rows().unwrap();
    let totals = check_tree(&full.trace);
    let m = &full.metrics;
    assert_eq!(m.udf_calls_executed, 0, "{m:?}");
    assert_eq!(
        sum(&totals, "udf_eval"),
        0,
        "no evals → no udf_eval span counts"
    );
    assert_eq!(sum(&totals, "view_probe"), m.probes, "{m:?}");
}

#[test]
fn histogram_counts_equal_span_entries() {
    let mut db = test_session(ReuseStrategy::Eva, 525, N);
    for (lo, hi) in [(0, 50), (25, 75), (0, 100)] {
        let out = db.execute_sql(&window_sql(lo, hi)).unwrap().rows().unwrap();
        let totals = check_tree(&out.trace);
        for (kind, h) in out.trace.hists.non_empty() {
            let calls = totals.get(kind.label()).map(|t| t.1).unwrap_or(0);
            assert_eq!(
                h.count(),
                calls,
                "[{lo},{hi}) {}: one histogram sample per span entry",
                kind.label()
            );
        }
        // And no kind has spans without histogram samples.
        for (label, (_, calls)) in &totals {
            let kind = SpanKind::ALL
                .iter()
                .find(|k| k.label() == *label)
                .expect("known kind");
            assert_eq!(
                out.trace.hists.get(*kind).count(),
                *calls,
                "[{lo},{hi}) {label}"
            );
        }
    }
}

#[test]
fn deterministic_projection_is_identical_across_sessions() {
    let run = || {
        let mut db = test_session(ReuseStrategy::Eva, 626, N);
        let mut traces = Vec::new();
        for (lo, hi) in [(0, 40), (20, 80), (0, 100)] {
            let out = db.execute_sql(&window_sql(lo, hi)).unwrap().rows().unwrap();
            traces.push(out.trace.deterministic());
        }
        traces
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "masked traces must be bit-identical across sessions");
    // The masked projection really is masked: rendering it twice from the
    // same session state is stable text.
    for t in &a {
        assert_eq!(t.render(), t.render());
        for s in &t.spans {
            assert_eq!(s.wall_ns, 0);
            assert_eq!(s.start_ns, 0);
        }
    }
}

#[test]
fn trace_tree_structure_matches_golden() {
    let mut db = test_session(ReuseStrategy::Eva, 727, N);
    let mut rendered = String::new();
    for (lo, hi) in [(0, 60), (30, 100)] {
        let out = db.execute_sql(&window_sql(lo, hi)).unwrap().rows().unwrap();
        rendered.push_str(&format!("== window [{lo}, {hi}) ==\n"));
        rendered.push_str(&out.trace.deterministic().render());
    }
    let redacted = redact(&rendered);
    let path = golden_dir().join("warm_cold_windows.golden");
    let bless = std::env::var("EVA_BLESS").is_ok();
    let expected = fs::read_to_string(&path).ok();
    match expected {
        Some(expected) if !bless => {
            assert_eq!(
                expected.trim_end(),
                redacted.trim_end(),
                "trace tree structure drifted (EVA_BLESS=1 to re-record)"
            );
        }
        _ => {
            // First run (or explicit bless): record the golden.
            fs::create_dir_all(golden_dir()).unwrap();
            fs::write(&path, redacted.trim_end()).unwrap();
        }
    }
}
