//! Morsel-driven parallelism: parallel == serial identity (DESIGN.md §4g).
//!
//! The executor's contract is that engaging the parallel pipeline changes
//! *nothing observable* except wall-clock time and the three new
//! scheduling counters:
//!
//! * results are byte-identical to a serial run with
//!   `batch_size == morsel_rows` — including row order and float values
//!   (per-morsel partial aggregates merge in morsel order, reproducing the
//!   serial per-batch fold exactly);
//! * the simulated `CostBreakdown` is bit-identical (all clock charges are
//!   replayed on the caller thread, morsel by morsel);
//! * deterministic metrics and per-operator `EXPLAIN ANALYZE` stats match
//!   the serial run, and none of it varies with the worker count;
//! * `morsels_dispatched` / `parallel_pipelines` depend only on the plan
//!   shape and configuration, never on scheduling.

use std::sync::Arc;

use eva_common::{DataType, Field, MetricsSnapshot, Schema, SimClock};
use eva_exec::{execute_with_pool, ExecConfig, FunCacheTable, QueryOutput, WorkerPool};
use eva_expr::{AggFunc, Expr};
use eva_planner::PhysPlan;
use eva_storage::StorageEngine;
use eva_udf::{InvocationStats, UdfRegistry};
use eva_video::generator::generate;
use eva_video::VideoConfig;

const N: u64 = 6_000;

fn storage_with_dataset() -> StorageEngine {
    let storage = StorageEngine::new();
    storage.load_dataset(generate(VideoConfig {
        name: "pp".into(),
        n_frames: N,
        width: 100,
        height: 60,
        fps: 25.0,
        target_density: 3.0,
        person_fraction: 0.0,
        seed: 11,
    }));
    storage
}

fn scan_schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("timestamp", DataType::Int),
            Field::new("frame", DataType::Int),
        ])
        .unwrap(),
    )
}

fn scan(range: (u64, u64)) -> PhysPlan {
    PhysPlan::ScanFrames {
        id: eva_common::OpId::UNSET,
        table: "video".into(),
        dataset: "pp".into(),
        range,
        schema: scan_schema(),
    }
}

/// `Filter(id in [lo, hi)) → Project(id, ts)` — a concat-mode segment.
fn concat_plan(lo: u64, hi: u64) -> PhysPlan {
    let filt = PhysPlan::Filter {
        id: eva_common::OpId::UNSET,
        input: Box::new(scan((0, N))),
        predicate: Expr::col("id")
            .ge(lo as i64)
            .and(Expr::col("id").lt(hi as i64)),
    };
    PhysPlan::Project {
        id: eva_common::OpId::UNSET,
        input: Box::new(filt),
        items: vec![
            (Expr::col("id"), "id".into()),
            (Expr::col("timestamp"), "ts".into()),
        ],
        schema: Arc::new(
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("ts", DataType::Int),
            ])
            .unwrap(),
        ),
    }
}

/// The same segment capped by an aggregate pipeline breaker.
fn breaker_plan(lo: u64, hi: u64) -> PhysPlan {
    PhysPlan::Aggregate {
        id: eva_common::OpId::UNSET,
        input: Box::new(concat_plan(lo, hi)),
        group_by: vec![],
        aggs: vec![
            (AggFunc::Count, None, "n".into()),
            (AggFunc::Sum, Some(Expr::col("id")), "s".into()),
            (AggFunc::Min, Some(Expr::col("ts")), "lo_ts".into()),
            (AggFunc::Max, Some(Expr::col("ts")), "hi_ts".into()),
            (AggFunc::Avg, Some(Expr::col("id")), "a".into()),
        ],
        schema: Arc::new(
            Schema::new(vec![
                Field::new("n", DataType::Int),
                Field::new("s", DataType::Float),
                Field::new("lo_ts", DataType::Int),
                Field::new("hi_ts", DataType::Int),
                Field::new("a", DataType::Float),
            ])
            .unwrap(),
        ),
    }
}

fn run(
    storage: &StorageEngine,
    plan: &PhysPlan,
    config: ExecConfig,
    pool: Option<&WorkerPool>,
) -> QueryOutput {
    let registry = UdfRegistry::new();
    let stats = InvocationStats::new();
    let clock = SimClock::new();
    let funcache = FunCacheTable::new();
    execute_with_pool(
        plan, storage, &registry, &stats, &clock, &funcache, config, pool,
    )
    .expect("query execution")
}

fn serial_cfg(batch: usize) -> ExecConfig {
    ExecConfig {
        batch_size: batch,
        parallel_scan_min_rows: 0, // parallelism disabled
        ..ExecConfig::default()
    }
}

fn parallel_cfg(morsel: usize) -> ExecConfig {
    ExecConfig {
        morsel_rows: morsel,
        parallel_scan_min_rows: 1, // always engage
        ..ExecConfig::default()
    }
}

/// Deterministic counters with the parallel-only ones cleared, so serial
/// and parallel snapshots can be compared field-for-field.
fn core_counters(m: &MetricsSnapshot) -> MetricsSnapshot {
    let mut d = m.deterministic();
    d.morsels_dispatched = 0;
    d.parallel_pipelines = 0;
    d
}

/// The identity every (plan, morsel size, worker count) combination must
/// satisfy against the serial run with `batch_size == morsel_rows`.
fn assert_identical(serial: &QueryOutput, par: &QueryOutput, what: &str) {
    assert_eq!(serial.batch.rows(), par.batch.rows(), "{what}: result rows");
    assert_eq!(serial.breakdown, par.breakdown, "{what}: CostBreakdown");
    assert_eq!(
        core_counters(&serial.metrics),
        core_counters(&par.metrics),
        "{what}: deterministic metrics"
    );
    assert_eq!(
        serial.op_stats, par.op_stats,
        "{what}: EXPLAIN ANALYZE stats"
    );
}

#[test]
fn parallel_matches_serial_across_morsel_sizes_and_worker_counts() {
    let storage = storage_with_dataset();
    for (name, plan) in [
        ("concat", concat_plan(500, 4_700)),
        ("breaker", breaker_plan(500, 4_700)),
    ] {
        let mut plan = plan;
        plan.assign_op_ids();
        for morsel in [1usize, 7, 64, 4096] {
            let serial = run(&storage, &plan, serial_cfg(morsel), None);
            assert_eq!(serial.metrics.parallel_pipelines, 0, "serial stayed serial");
            let mut per_worker: Vec<QueryOutput> = Vec::new();
            for workers in [1usize, 2, 8] {
                let pool = WorkerPool::new(workers);
                let par = run(&storage, &plan, parallel_cfg(morsel), Some(&pool));
                let what = format!("{name}, morsel={morsel}, workers={workers}");
                assert_identical(&serial, &par, &what);
                // Engagement and morsel count are deterministic: exactly one
                // pipeline, ceil(range / morsel) morsels, at any width.
                assert_eq!(par.metrics.parallel_pipelines, 1, "{what}");
                assert_eq!(
                    par.metrics.morsels_dispatched,
                    N.div_ceil(morsel as u64),
                    "{what}"
                );
                per_worker.push(par);
            }
            // Everything observable is identical across worker counts too.
            for par in &per_worker[1..] {
                assert_identical(&per_worker[0], par, name);
            }
        }
    }
}

/// Steal-heavy shape: thousands of single-row morsels flood an 8-wide pool,
/// forcing constant deque stealing — the stitched output must not care.
#[test]
fn steal_heavy_single_row_morsels_stay_deterministic() {
    let storage = storage_with_dataset();
    let mut plan = breaker_plan(0, N);
    plan.assign_op_ids();
    let serial = run(&storage, &plan, serial_cfg(1), None);
    let pool = WorkerPool::new(8);
    let par = run(&storage, &plan, parallel_cfg(1), Some(&pool));
    assert_identical(&serial, &par, "steal-heavy");
    assert_eq!(par.metrics.morsels_dispatched, N);
    // Stolen morsels are scheduling-dependent and must be masked.
    assert_eq!(par.metrics.deterministic().morsels_stolen, 0);
}

/// Concurrent queries hammering one shared pool: every query's rows must
/// come back identical to the serial reference, and the shared counters
/// must add up exactly (they are charged once per query on caller threads).
#[test]
fn concurrent_queries_share_the_pool_safely() {
    let storage = storage_with_dataset();
    let mut plan = breaker_plan(100, 5_900);
    plan.assign_op_ids();
    let reference = run(&storage, &plan, serial_cfg(256), None);
    let before = storage.metrics().snapshot();

    let pool = Arc::new(WorkerPool::new(4));
    let n_queries = 8;
    let results: Vec<QueryOutput> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..n_queries {
            let storage = storage.clone();
            let plan = &plan;
            let pool = Arc::clone(&pool);
            handles.push(s.spawn(move || run(&storage, plan, parallel_cfg(256), Some(&pool))));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for out in &results {
        assert_eq!(out.batch.rows(), reference.batch.rows());
        assert_eq!(out.breakdown, reference.breakdown);
    }
    // Session-total deltas: concurrent queries interleave, but the counters
    // are atomic sums charged once per query, so the totals are exact.
    let delta = storage.metrics().snapshot().since(&before);
    assert_eq!(delta.parallel_pipelines, n_queries as u64);
    assert_eq!(delta.morsels_dispatched, n_queries as u64 * N.div_ceil(256));
}
