//! Property tests for the runtime-metrics counters (DESIGN.md
//! §Observability): whatever random exploratory workload runs, the counter
//! algebra must hold exactly.
//!
//! * `probes == probe_hits + probe_misses` — a probe either hits or
//!   misses; the fuzzy phase refines the *same* probe, it never adds one.
//! * `udf_calls_requested == udf_calls_executed + udf_calls_avoided` —
//!   every requested invocation is either run or served from reuse.
//! * `fuzzy_hits <= probe_hits` — fuzzy hits are a subset of hits.
//! * Under `ReuseStrategy::NoReuse`, nothing is ever avoided.

use proptest::prelude::*;

use eva_harness::test_session;
use eva_planner::ReuseStrategy;

const N: u64 = 90;

#[derive(Debug, Clone)]
struct WindowQuery {
    lo: u64,
    hi: u64,
    cartype: Option<&'static str>,
}

impl WindowQuery {
    fn sql(&self) -> String {
        let mut preds = vec![
            format!("id >= {}", self.lo),
            format!("id < {}", self.hi),
            "label = 'car'".to_string(),
        ];
        if let Some(t) = self.cartype {
            preds.push(format!("cartype(frame, bbox) = '{t}'"));
        }
        format!(
            "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE {}",
            preds.join(" AND ")
        )
    }
}

fn arb_query() -> impl Strategy<Value = WindowQuery> {
    (
        0u64..N,
        1u64..N,
        proptest::option::of(prop::sample::select(vec!["Nissan", "Toyota", "Honda"])),
    )
        .prop_map(|(a, len, cartype)| WindowQuery {
            lo: a.min(N - 1),
            hi: (a + len).min(N),
            cartype,
        })
        .prop_filter("nonempty window", |q| q.lo < q.hi)
}

proptest! {
    // Each case runs several full queries; keep the case count low.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn counter_algebra_holds_on_random_workloads(
        queries in prop::collection::vec(arb_query(), 2..5),
        seed in 1u64..1000,
    ) {
        let mut db = test_session(ReuseStrategy::Eva, seed, N);
        for q in &queries {
            let out = db.execute_sql(&q.sql()).unwrap().rows().unwrap();
            // Per-query delta invariants.
            let m = &out.metrics;
            prop_assert_eq!(m.probes, m.probe_hits + m.probe_misses);
            prop_assert_eq!(
                m.udf_calls_requested,
                m.udf_calls_executed + m.udf_calls_avoided
            );
            prop_assert!(m.fuzzy_hits <= m.probe_hits);
        }
        // Session-total invariants.
        let m = db.metrics_snapshot();
        prop_assert_eq!(m.probes, m.probe_hits + m.probe_misses);
        prop_assert_eq!(
            m.udf_calls_requested,
            m.udf_calls_executed + m.udf_calls_avoided
        );
        prop_assert!(m.fuzzy_hits <= m.probe_hits);
        prop_assert!(m.udf_calls_requested > 0);
    }

    #[test]
    fn no_reuse_never_avoids_calls(
        queries in prop::collection::vec(arb_query(), 2..4),
        seed in 1u64..1000,
    ) {
        let mut db = test_session(ReuseStrategy::NoReuse, seed, N);
        for q in &queries {
            db.execute_sql(&q.sql()).unwrap().rows().unwrap();
        }
        let m = db.metrics_snapshot();
        prop_assert_eq!(m.udf_calls_avoided, 0);
        prop_assert_eq!(m.probe_hits, 0);
        prop_assert_eq!(m.rows_served_zero_copy, 0);
        prop_assert_eq!(m.udf_calls_requested, m.udf_calls_executed);
    }

    #[test]
    fn snapshot_algebra_is_consistent(
        a in prop::collection::vec(0u64..1_000_000, 30),
        b in prop::collection::vec(0u64..1_000_000, 30),
    ) {
        use eva_common::MetricsSnapshot;
        let fill = |v: &[u64]| MetricsSnapshot {
            udf_calls_requested: v[0] + v[1],
            udf_calls_executed: v[0],
            udf_calls_avoided: v[1],
            udf_ms_avoided: v[2] as f64,
            probes: v[3] + v[4],
            probe_hits: v[3],
            probe_misses: v[4],
            fuzzy_hits: v[5].min(v[3]),
            rows_served_zero_copy: v[6],
            funcache_hits: v[7],
            funcache_misses: v[8],
            view_rows_read: v[9],
            view_rows_written: v[10],
            frames_scanned: v[11],
            columnar_batches: v[17],
            columnar_rows: v[18],
            rows_pivoted: v[19],
            views_recovered: v[13],
            views_quarantined: v[14],
            udf_retries: v[15],
            udf_gave_up: v[16],
            morsels_dispatched: v[20],
            morsels_stolen: v[21],
            parallel_pipelines: v[22],
            n_workers: v[23],
            shard_lock_contention: v[12],
            degraded_queries: v[24],
            materialization_skipped: v[25],
            udf_breaker_open: v[26],
            udf_breaker_halfopen: v[27],
            queries_admitted: v[28],
            queries_shed: v[29],
        };
        let (x, y) = (fill(&a), fill(&b));
        // plus/since are inverses…
        prop_assert_eq!(x.plus(&y).since(&y), x);
        // …and plus preserves the structural invariants.
        let sum = x.plus(&y);
        prop_assert_eq!(sum.probes, sum.probe_hits + sum.probe_misses);
        prop_assert_eq!(
            sum.udf_calls_requested,
            sum.udf_calls_executed + sum.udf_calls_avoided
        );
        // deterministic() only clears the scheduling-dependent counters.
        let det = sum.deterministic();
        prop_assert_eq!(det.shard_lock_contention, 0);
        prop_assert_eq!(det.morsels_stolen, 0);
        prop_assert_eq!(det.n_workers, 0);
        prop_assert_eq!(det.probes, sum.probes);
        prop_assert_eq!(det.udf_calls_requested, sum.udf_calls_requested);
        prop_assert_eq!(det.morsels_dispatched, sum.morsels_dispatched);
        prop_assert_eq!(det.parallel_pipelines, sum.parallel_pipelines);
        // Governance outcomes are deterministic, so they survive the mask.
        prop_assert_eq!(det.degraded_queries, sum.degraded_queries);
        prop_assert_eq!(det.queries_shed, sum.queries_shed);
    }
}
