//! Predicate reordering (paper §4.2, Theorem 4.1).
//!
//! Predicates are evaluated in ascending order of rank. With the canonical
//! ranking (Eq. 2) this is classic Hellerstein ordering; with the
//! materialization-aware ranking (Eq. 4) predicates whose results are
//! already materialized float toward the front, because their effective
//! per-tuple cost is only the view-read cost.

use crate::cost::{rank_canonical, rank_materialization_aware, PredicateProfile};

/// Which ranking function drives reordering — the Fig. 9 experiment compares
/// the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankingKind {
    /// Eq. 2 — cost/selectivity only.
    Canonical,
    /// Eq. 4 — cost discounted by materialized coverage.
    #[default]
    MaterializationAware,
}

/// Rank a profile under the chosen function.
pub fn rank(kind: RankingKind, p: &PredicateProfile) -> f64 {
    match kind {
        RankingKind::Canonical => rank_canonical(p),
        RankingKind::MaterializationAware => rank_materialization_aware(p),
    }
}

/// Return the indices of `profiles` in evaluation order (ascending rank,
/// stable for ties so equal predicates keep query order).
pub fn order_by_rank(kind: RankingKind, profiles: &[PredicateProfile]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..profiles.len()).collect();
    idx.sort_by(|&a, &b| {
        rank(kind, &profiles[a])
            .partial_cmp(&rank(kind, &profiles[b]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ordering_cost_ms;

    fn profile(s: f64, ce: f64, sdiff: f64) -> PredicateProfile {
        PredicateProfile {
            selectivity: s,
            eval_cost_ms: ce,
            diff_selectivity: sdiff,
            read_cost_ms: 0.15,
        }
    }

    #[test]
    fn order_is_stable_for_ties() {
        let p = profile(0.5, 10.0, 1.0);
        let order = order_by_rank(RankingKind::Canonical, &[p, p, p]);
        assert_eq!(order, vec![0, 1, 2]);
    }

    /// Theorem 4.1: the rank order minimizes expected evaluation cost.
    /// Verified exhaustively against all permutations for n ≤ 4.
    #[test]
    fn rank_order_is_optimal_theorem_4_1() {
        let cases: Vec<Vec<PredicateProfile>> = vec![
            vec![
                profile(0.3, 5.0, 1.0),
                profile(0.7, 6.0, 0.0),
                profile(0.1, 99.0, 0.4),
            ],
            vec![
                profile(0.9, 1.0, 1.0),
                profile(0.2, 50.0, 0.1),
                profile(0.5, 10.0, 0.9),
                profile(0.05, 120.0, 0.0),
            ],
            vec![profile(0.5, 6.0, 0.0), profile(0.5, 5.0, 1.0)],
        ];
        for profiles in cases {
            let order = order_by_rank(RankingKind::MaterializationAware, &profiles);
            let chosen: Vec<PredicateProfile> = order.iter().map(|&i| profiles[i]).collect();
            let chosen_cost = ordering_cost_ms(&chosen, 10_000.0);
            for perm in permutations(profiles.len()) {
                let p: Vec<PredicateProfile> = perm.iter().map(|&i| profiles[i]).collect();
                let c = ordering_cost_ms(&p, 10_000.0);
                assert!(
                    chosen_cost <= c + 1e-6,
                    "rank order cost {chosen_cost} beaten by {perm:?} at {c}"
                );
            }
        }
    }

    /// The canonical ranking is likewise optimal when no views exist
    /// (s_diff = 1 everywhere) — the two functions agree up to the c_r term.
    #[test]
    fn canonical_matches_mat_aware_without_views() {
        let profiles = vec![
            profile(0.3, 5.0, 1.0),
            profile(0.7, 50.0, 1.0),
            profile(0.1, 10.0, 1.0),
        ];
        assert_eq!(
            order_by_rank(RankingKind::Canonical, &profiles),
            order_by_rank(RankingKind::MaterializationAware, &profiles)
        );
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        fn go(curr: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if rest.is_empty() {
                out.push(curr.clone());
                return;
            }
            for i in 0..rest.len() {
                let v = rest.remove(i);
                curr.push(v);
                go(curr, rest, out);
                curr.pop();
                rest.insert(i, v);
            }
        }
        let mut out = Vec::new();
        go(&mut Vec::new(), &mut (0..n).collect(), &mut out);
        out
    }
}
