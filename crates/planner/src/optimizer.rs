//! The query optimizer: canonical rules + the semantic-reuse pipeline.
//!
//! Mirrors the four steps of Fig. 1:
//!
//! 1. **Identify candidate UDFs** — profiled cost ≥ threshold.
//! 2. **Compute UDF signatures** — [`UdfSignature`] per invocation.
//! 3. **Materialization-aware optimizations** — predicate reordering with
//!    Eq. 4 and logical-UDF model selection via Algorithm 2.
//! 4. **Rule-based transformation** — Rule I (unpack a selection with
//!    multiple UDF predicates into a chain of conditional applies, Fig. 3)
//!    and Rule II (probe the materialized view, evaluate only on miss, STORE
//!    fresh results, Fig. 4 — fused into one physical apply).
//!
//! The optimizer also supports the evaluation baselines as strategies:
//! No-Reuse, HashStash (operator-level reuse for frame-level UDFs only,
//! canonical ranking) and FunCache (tuple-level hashing cache, canonical
//! ranking) — §5.1.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use eva_catalog::{AccuracyLevel, Catalog, UdfDef};
use eva_common::{CostCategory, DataType, EvaError, OpId, Result, Schema, SimClock};
use eva_expr::{conjoin, util::substitute_udf, Expr, UdfCall};
use eva_symbolic::{inter, to_dnf, udf_dim, Dnf, StatsCatalog};
use eva_udf::{UdfManager, UdfSignature};

use crate::commits::CommitLog;
use crate::cost::PredicateProfile;
use crate::plan::{ApplyReuse, ApplySpec, LogicalPlan, PhysPlan, Segment};
use crate::reorder::{order_by_rank, RankingKind};
use crate::rules::{classify_predicates, extract_scan_range};
use crate::setcover::{optimal_physical_udfs, Choice, PhysicalCandidate};

/// Which reuse machinery a session runs with (§5.1's systems under test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReuseStrategy {
    /// Evaluate everything, materialize nothing.
    NoReuse,
    /// The full semantic reuse algorithm of the paper.
    #[default]
    Eva,
    /// Operator-subtree reuse à la HashStash: only whole-operator outputs
    /// (frame-level UDF applies) are recycled; predicate-level UDFs are not.
    HashStash,
    /// Tuple-level function caching with per-call input hashing.
    FunCache,
}

/// Planner configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Reuse strategy.
    pub strategy: ReuseStrategy,
    /// Ranking function for predicate reordering.
    pub ranking: RankingKind,
    /// Whether EVA materializes fresh UDF results (STORE). Ignored by the
    /// baselines (HashStash always stores operator outputs; FunCache caches
    /// in memory).
    pub materialize: bool,
    /// Cost threshold above which a UDF is a materialization candidate
    /// (filters out AREA-like UDFs, §3.1 ①).
    pub candidate_threshold_ms: f64,
    /// Per-row view read cost (`c_r`, incl. the 3× join factor of Eq. 3).
    pub view_read_ms_per_row: f64,
    /// Resolve logical UDFs with Algorithm 2's set cover. When `false`, a
    /// logical task is substituted by the cheapest eligible model (the
    /// Min-Cost baseline of Fig. 10) while per-model view reuse still works.
    pub logical_set_cover: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            strategy: ReuseStrategy::Eva,
            ranking: RankingKind::MaterializationAware,
            materialize: true,
            candidate_threshold_ms: 1.0,
            view_read_ms_per_row: 0.15,
            logical_set_cover: true,
        }
    }
}

impl PlannerConfig {
    /// Configuration for a named baseline.
    pub fn for_strategy(strategy: ReuseStrategy) -> PlannerConfig {
        let ranking = match strategy {
            ReuseStrategy::Eva => RankingKind::MaterializationAware,
            _ => RankingKind::Canonical,
        };
        PlannerConfig {
            strategy,
            ranking,
            ..PlannerConfig::default()
        }
    }
}

/// The optimizer. Borrows the session's shared components.
pub struct Optimizer<'a> {
    /// Catalog (UDF definitions, tables).
    pub catalog: &'a Catalog,
    /// UDF manager (signatures → aggregated predicates + views).
    pub manager: &'a UdfManager,
    /// Histogram statistics.
    pub stats: &'a StatsCatalog,
    /// Configuration.
    pub config: PlannerConfig,
    /// When set, coverage commits are deferred into this log instead of
    /// being applied at plan time, so a cancelled query never claims
    /// coverage for rows it did not materialize. `None` commits eagerly.
    pub commits: Option<&'a CommitLog>,
}

/// The decomposed shape every bound EVA-QL query has:
/// `tail(proj-applies(filter?(detector-applies(scan))))`.
struct Decomposed<'p> {
    tail: Vec<&'p LogicalPlan>,
    proj_applies: Vec<(UdfCall, bool)>,
    filter: Option<Expr>,
    det_applies: Vec<(UdfCall, bool)>,
    scan: (String, String, u64, Arc<Schema>),
}

impl<'a> Optimizer<'a> {
    /// Optimize a bound logical plan into a physical plan. Real wall time
    /// spent here is charged to the virtual clock's `Optimize` category
    /// (Fig. 6b's optimizer-overhead series).
    pub fn optimize(&self, plan: &LogicalPlan, clock: &SimClock) -> Result<PhysPlan> {
        let started = Instant::now();
        let result = self.optimize_inner(plan);
        clock.charge(
            CostCategory::Optimize,
            started.elapsed().as_secs_f64() * 1000.0,
        );
        result
    }

    fn optimize_inner(&self, plan: &LogicalPlan) -> Result<PhysPlan> {
        let d = decompose(plan)?;
        let (table, dataset, n_rows, scan_schema) = d.scan.clone();

        // Canonical rules: split, classify, fold.
        let classified = match &d.filter {
            Some(p) => classify_predicates(p, &scan_schema),
            None => Default::default(),
        };
        let range = extract_scan_range(&classified.scan, n_rows);
        let n_scanned = (range.1 - range.0) as f64;

        let mut phys = PhysPlan::ScanFrames {
            id: OpId::UNSET,
            table: table.clone(),
            dataset,
            range,
            schema: Arc::clone(&scan_schema),
        };
        if !classified.scan.is_empty() {
            phys = PhysPlan::Filter {
                id: OpId::UNSET,
                input: Box::new(phys),
                predicate: conjoin(classified.scan.clone()),
            };
        }

        // Split the UDF-based predicate atoms into frame-level atoms that can
        // run *before* the detector (specialized filters, §5.6 — they gate
        // expensive inference) and box-level atoms that need detector output.
        let mut pre_det_atoms: Vec<Expr> = Vec::new();
        let mut box_atoms: Vec<Expr> = Vec::new();
        for atom in &classified.udf_atoms {
            let frame_level = eva_expr::referenced_columns(atom)
                .iter()
                .all(|c| scan_schema.index_of(c).is_some());
            if frame_level {
                pre_det_atoms.push(atom.clone());
            } else {
                box_atoms.push(atom.clone());
            }
        }

        // Pre-detector UDF predicates (ranked among themselves).
        let mut pre_det_exprs: Vec<Expr> = classified.scan.clone();
        let scan_dnf0 = dnf_or_true(&classified.scan);
        let scan_sel0 = self.stats.dnf_selectivity(&scan_dnf0).max(1e-9);
        let pre_order = self.rank_udf_atoms(&pre_det_atoms, &table, &scan_dnf0, scan_sel0);
        for idx in pre_order {
            let atom = &pre_det_atoms[idx];
            let call = single_udf_call(atom)?;
            let out_col = self.scalar_out_col(&call)?;
            phys = self.plan_scalar_apply(phys, &call, &table, &pre_det_exprs)?;
            let rewritten = substitute_udf(atom.clone(), &call, &Expr::col(out_col));
            phys = PhysPlan::Filter {
                id: OpId::UNSET,
                input: Box::new(phys),
                predicate: rewritten,
            };
            pre_det_exprs.push(atom.clone());
        }

        // Base predicate (frames reaching the detector) for reuse analysis.
        let scan_dnf = dnf_or_true(&pre_det_exprs);

        // Detector applies (CROSS APPLY chain).
        for (call, logical) in &d.det_applies {
            phys = self.plan_detector_apply(
                phys,
                call,
                *logical,
                &table,
                &scan_dnf,
                &pre_det_exprs,
                n_scanned,
            )?;
        }

        // Post-detector UDF-free predicates.
        if !classified.post_detector.is_empty() {
            phys = PhysPlan::Filter {
                id: OpId::UNSET,
                input: Box::new(phys),
                predicate: conjoin(classified.post_detector.clone()),
            };
        }

        // Base DNF for box-level UDF analysis: scan + pre-detector +
        // post-detector predicates.
        let mut base_exprs: Vec<Expr> = pre_det_exprs.clone();
        base_exprs.extend(classified.post_detector.iter().cloned());
        let base_dnf = dnf_or_true(&base_exprs);
        let base_sel = self.stats.dnf_selectivity(&base_dnf).max(1e-9);

        // Rule I: rank the UDF-based predicate atoms and chain them.
        let order = self.rank_udf_atoms(&box_atoms, &table, &base_dnf, base_sel);
        let mut applied: BTreeMap<String, String> = BTreeMap::new(); // dim → out col
        let mut preceding: Vec<Expr> = base_exprs.clone();
        for idx in order {
            let atom = &box_atoms[idx];
            let call = single_udf_call(atom)?;
            let out_col = self.scalar_out_col(&call)?;
            if let std::collections::btree_map::Entry::Vacant(e) = applied.entry(udf_dim(&call)) {
                phys = self.plan_scalar_apply(phys, &call, &table, &preceding)?;
                e.insert(out_col.clone());
            }
            let rewritten = substitute_udf(atom.clone(), &call, &Expr::col(out_col));
            phys = PhysPlan::Filter {
                id: OpId::UNSET,
                input: Box::new(phys),
                predicate: rewritten,
            };
            preceding.push(atom.clone());
        }

        // Complex UDF predicates: apply every referenced UDF, then filter.
        for cpred in &classified.complex {
            let mut rewritten = cpred.clone();
            for call in eva_expr::collect_udf_calls(cpred) {
                let out_col = self.scalar_out_col(&call)?;
                if let std::collections::btree_map::Entry::Vacant(e) = applied.entry(udf_dim(&call))
                {
                    phys = self.plan_scalar_apply(phys, &call, &table, &preceding)?;
                    e.insert(out_col.clone());
                }
                rewritten = substitute_udf(rewritten, &call, &Expr::col(out_col));
            }
            phys = PhysPlan::Filter {
                id: OpId::UNSET,
                input: Box::new(phys),
                predicate: rewritten,
            };
            preceding.push(cpred.clone());
        }

        // Projection-extracted applies (run on surviving rows only).
        for (call, _) in &d.proj_applies {
            if let std::collections::btree_map::Entry::Vacant(e) = applied.entry(udf_dim(call)) {
                let out_col = self.scalar_out_col(call)?;
                phys = self.plan_scalar_apply(phys, call, &table, &preceding)?;
                e.insert(out_col);
            }
        }

        // Rebuild the tail (innermost wrapper first).
        for t in d.tail.iter().rev() {
            phys = rebuild_tail(phys, t)?;
        }
        phys.assign_op_ids();
        Ok(phys)
    }

    // -- Detector (frame-level) applies -----------------------------------

    #[allow(clippy::too_many_arguments)]
    fn plan_detector_apply(
        &self,
        input: PhysPlan,
        call: &UdfCall,
        logical: bool,
        table: &str,
        assoc: &Dnf,
        assoc_exprs: &[Expr],
        n_input: f64,
    ) -> Result<PhysPlan> {
        let assoc_expr = if assoc_exprs.is_empty() {
            Expr::true_()
        } else {
            conjoin(assoc_exprs.to_vec())
        };
        let (segments, output, display_name) = if logical {
            self.select_models(call, table, assoc, &assoc_expr, n_input)?
        } else {
            let def = self.catalog.udf(&call.name)?;
            let output = Arc::new(def.output.clone());
            let seg = self.fallback_segment(&def, table, assoc, &assoc_expr)?;
            (vec![seg], output, def.name.clone())
        };

        let args = self.resolve_args(call, &input.schema())?;
        let spec = self.decorate(display_name, args, segments, output.clone())?;
        let schema = Arc::new(input.schema().join(&output));
        Ok(PhysPlan::Apply {
            id: OpId::UNSET,
            input: Box::new(input),
            spec,
            schema,
        })
    }

    /// Algorithm 2: resolve a logical vision task into view reads + a
    /// fallback model.
    fn select_models(
        &self,
        call: &UdfCall,
        table: &str,
        assoc: &Dnf,
        assoc_expr: &Expr,
        n_input: f64,
    ) -> Result<(Vec<Segment>, Arc<Schema>, String)> {
        let required = match &call.accuracy {
            Some(a) => AccuracyLevel::parse(a)?,
            None => AccuracyLevel::Low,
        };
        let eligible_defs = self.catalog.physical_udfs(&call.name, required);
        if eligible_defs.is_empty() {
            return Err(EvaError::Plan(format!(
                "no physical UDF implements '{}' at accuracy {required}",
                call.name
            )));
        }
        let output = Arc::new(eligible_defs[0].output.clone());

        // Baselines — and EVA with Algorithm 2 disabled (Min-Cost) —
        // substitute the cheapest eligible model directly.
        if self.config.strategy != ReuseStrategy::Eva || !self.config.logical_set_cover {
            let def = eligible_defs[0].clone();
            let seg = self.fallback_segment(&def, table, assoc, assoc_expr)?;
            let name = format!("{}→{}", call.name, seg.udf.name);
            return Ok((vec![seg], output, name));
        }

        let candidates: Vec<PhysicalCandidate> = eligible_defs
            .iter()
            .map(|def| {
                let sig = UdfSignature::new(&def.name, table, &["frame"]);
                let (view, view_keys) = match self.manager.view_of(&sig) {
                    Some((v, k)) => (Some(v), k),
                    None => (None, 0),
                };
                PhysicalCandidate {
                    udf: def.clone(),
                    view,
                    view_keys,
                    agg_pred: self.manager.aggregated(&sig),
                }
            })
            .collect();
        let choices = optimal_physical_udfs(
            &candidates,
            assoc,
            n_input,
            self.stats,
            self.config.view_read_ms_per_row,
        );
        let mut segments = Vec::with_capacity(choices.len());
        let mut name_parts = Vec::new();
        for choice in choices {
            match choice {
                Choice::ReadView { udf, view } => {
                    name_parts.push(format!("view:{}", udf.name));
                    segments.push(Segment {
                        udf,
                        view: Some(view),
                        eval: false,
                    });
                }
                Choice::Evaluate { udf } => {
                    name_parts.push(format!("eval:{}", udf.name));
                    segments.push(self.fallback_segment(&udf, table, assoc, assoc_expr)?);
                }
            }
        }
        let name = format!("{}[{}]", call.name, name_parts.join(","));
        Ok((segments, output, name))
    }

    /// Build the eval-capable fallback segment for a physical UDF,
    /// registering its view and committing the associated predicate when
    /// this session materializes results.
    fn fallback_segment(
        &self,
        def: &UdfDef,
        table: &str,
        assoc: &Dnf,
        assoc_expr: &Expr,
    ) -> Result<Segment> {
        let arg_names: Vec<&str> = if self.is_box_level(def) {
            vec!["frame", "bbox"]
        } else {
            vec!["frame"]
        };
        let sig = UdfSignature::new(&def.name, table, &arg_names);
        let candidate = def.is_materialization_candidate(self.config.candidate_threshold_ms);
        let store = candidate
            && match self.config.strategy {
                ReuseStrategy::Eva => self.config.materialize,
                ReuseStrategy::HashStash => !self.is_box_level(def),
                _ => false,
            };
        let view = if store || self.manager.view_of(&sig).is_some() {
            let key_kind = if self.is_box_level(def) {
                eva_storage::ViewKeyKind::FrameBox
            } else {
                eva_storage::ViewKeyKind::Frame
            };
            Some(
                self.manager
                    .view_for(&sig, key_kind, Arc::new(def.output.clone())),
            )
        } else {
            None
        };
        if store {
            // Record the Fig. 7 data point, then fold into p_u (§4.1) —
            // deferred until successful completion when a commit log is
            // attached, so cancelled queries never over-claim coverage.
            match self.commits {
                Some(log) => log.record(sig.clone(), assoc.clone(), Some(assoc_expr.clone())),
                None => {
                    self.manager.analyze(&sig, assoc, Some(assoc_expr));
                    self.manager.commit(&sig, assoc, Some(assoc_expr));
                }
            }
        }
        Ok(Segment {
            udf: def.clone(),
            view,
            eval: true,
        })
    }

    // -- Scalar (box-level) applies ----------------------------------------

    fn plan_scalar_apply(
        &self,
        input: PhysPlan,
        call: &UdfCall,
        table: &str,
        preceding: &[Expr],
    ) -> Result<PhysPlan> {
        let def = self.catalog.udf(&call.name)?;
        let assoc = dnf_or_true(preceding);
        let assoc_expr = if preceding.is_empty() {
            Expr::true_()
        } else {
            conjoin(preceding.to_vec())
        };
        let seg = self.fallback_segment(&def, table, &assoc, &assoc_expr)?;
        let args = self.resolve_args(call, &input.schema())?;
        let output = Arc::new(def.output.clone());
        let spec = self.decorate(def.name.clone(), args, vec![seg], output.clone())?;
        let schema = Arc::new(input.schema().join(&output));
        Ok(PhysPlan::Apply {
            id: OpId::UNSET,
            input: Box::new(input),
            spec,
            schema,
        })
    }

    /// Rank the reorderable UDF-based predicate atoms (Rule I's ordering
    /// input, §4.2) and return evaluation order indices.
    fn rank_udf_atoms(
        &self,
        atoms: &[Expr],
        table: &str,
        base_dnf: &Dnf,
        base_sel: f64,
    ) -> Vec<usize> {
        let profiles: Vec<PredicateProfile> = atoms
            .iter()
            .map(|atom| self.profile_atom(atom, table, base_dnf, base_sel))
            .collect();
        order_by_rank(self.config.ranking, &profiles)
    }

    fn profile_atom(
        &self,
        atom: &Expr,
        table: &str,
        base_dnf: &Dnf,
        base_sel: f64,
    ) -> PredicateProfile {
        let selectivity = match to_dnf(atom) {
            Ok(d) => self.stats.dnf_selectivity(&d),
            Err(_) => eva_symbolic::selectivity::DEFAULT_UNKNOWN_SELECTIVITY,
        };
        let (eval_cost_ms, diff_selectivity) = match single_udf_call(atom) {
            Ok(call) => {
                let cost = self
                    .catalog
                    .udf(&call.name)
                    .ok()
                    .and_then(|d| d.cost_ms)
                    .unwrap_or(100.0);
                let diff_sel = if self.config.strategy == ReuseStrategy::Eva {
                    let def = self.catalog.udf(&call.name).ok();
                    let arg_names: Vec<&str> = match def {
                        Some(ref d) if self.is_box_level(d) => vec!["frame", "bbox"],
                        _ => vec!["frame"],
                    };
                    let sig = UdfSignature::new(&call.name, table, &arg_names);
                    let p_u = self.manager.aggregated(&sig);
                    let covered = self.stats.dnf_selectivity(&inter(&p_u, base_dnf));
                    (1.0 - covered / base_sel).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                (cost, diff_sel)
            }
            Err(_) => (100.0, 1.0),
        };
        PredicateProfile {
            selectivity,
            eval_cost_ms,
            diff_selectivity,
            read_cost_ms: self.config.view_read_ms_per_row,
        }
    }

    // -- Shared helpers ------------------------------------------------------

    fn decorate(
        &self,
        display_name: String,
        args: Vec<Expr>,
        segments: Vec<Segment>,
        output: Arc<Schema>,
    ) -> Result<ApplySpec> {
        let fallback = segments
            .iter()
            .find(|s| s.eval)
            .ok_or_else(|| EvaError::Plan("apply without an eval segment".into()))?
            .udf
            .clone();
        let candidate = fallback.is_materialization_candidate(self.config.candidate_threshold_ms);
        let reuse = match self.config.strategy {
            ReuseStrategy::NoReuse => ApplyReuse::None { udf: fallback },
            ReuseStrategy::FunCache => {
                if candidate {
                    ApplyReuse::FunCache { udf: fallback }
                } else {
                    ApplyReuse::None { udf: fallback }
                }
            }
            ReuseStrategy::HashStash => {
                // Operator-level reuse only: frame-level applies recycle
                // their output; box-level predicate UDFs do not.
                if !self.is_box_level(&fallback) && candidate {
                    ApplyReuse::Views {
                        segments,
                        store: true,
                    }
                } else {
                    ApplyReuse::None { udf: fallback }
                }
            }
            ReuseStrategy::Eva => {
                if candidate {
                    ApplyReuse::Views {
                        segments,
                        store: self.config.materialize,
                    }
                } else {
                    ApplyReuse::None { udf: fallback }
                }
            }
        };
        Ok(ApplySpec {
            display_name,
            args,
            reuse,
            output,
        })
    }

    fn is_box_level(&self, def: &UdfDef) -> bool {
        def.input.fields().iter().any(|f| f.dtype == DataType::BBox)
    }

    /// Normalize call arguments to `[frame_expr]` or `[frame_expr,
    /// bbox_expr]` by matching argument columns against the input schema's
    /// data types (queries write `CarType(bbox, frame)` in any order).
    fn resolve_args(&self, call: &UdfCall, input: &Schema) -> Result<Vec<Expr>> {
        let mut frame = None;
        let mut bbox = None;
        for a in &call.args {
            if let Expr::Column(c) = a {
                match input.field(c).map(|f| f.dtype) {
                    Some(DataType::Frame) => frame = Some(a.clone()),
                    Some(DataType::BBox) => bbox = Some(a.clone()),
                    _ => {}
                }
            }
        }
        let frame = frame
            .ok_or_else(|| EvaError::Plan(format!("UDF '{}' needs a frame argument", call.name)))?;
        Ok(match bbox {
            Some(b) => vec![frame, b],
            None => vec![frame],
        })
    }

    fn scalar_out_col(&self, call: &UdfCall) -> Result<String> {
        let def = self.catalog.udf(&call.name)?;
        if def.output.len() != 1 {
            return Err(EvaError::Plan(format!(
                "UDF '{}' in a predicate must have one output column",
                call.name
            )));
        }
        Ok(def.output.fields()[0].name.clone())
    }
}

fn dnf_or_true(exprs: &[Expr]) -> Dnf {
    if exprs.is_empty() {
        return Dnf::true_();
    }
    // Soundness note: conjuncts that fail conversion are dropped, which
    // *widens* the recorded predicate. Runtime correctness never depends on
    // it (the fused apply probes per key and evaluates on miss); only cost
    // estimates degrade.
    let mut acc = Dnf::true_();
    for e in exprs {
        if let Ok(d) = to_dnf(e) {
            acc = acc.and(&d);
        }
    }
    acc.reduced()
}

fn single_udf_call(atom: &Expr) -> Result<UdfCall> {
    let calls = eva_expr::collect_udf_calls(atom);
    match calls.len() {
        1 => Ok(calls.into_iter().next().expect("len checked")),
        n => Err(EvaError::Plan(format!(
            "expected exactly one UDF call in atom '{atom}', found {n}"
        ))),
    }
}

fn decompose(plan: &LogicalPlan) -> Result<Decomposed<'_>> {
    let mut tail = Vec::new();
    let mut node = plan;
    loop {
        match node {
            LogicalPlan::Limit { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => {
                tail.push(node);
                node = input;
            }
            _ => break,
        }
    }
    let mut proj_applies = Vec::new();
    while let LogicalPlan::Apply {
        input,
        call,
        logical,
        from_cross_apply: false,
        ..
    } = node
    {
        proj_applies.push((call.clone(), *logical));
        node = input;
    }
    proj_applies.reverse();
    let filter = match node {
        LogicalPlan::Filter { input, predicate } => {
            node = input;
            Some(predicate.clone())
        }
        _ => None,
    };
    let mut det_applies = Vec::new();
    while let LogicalPlan::Apply {
        input,
        call,
        logical,
        ..
    } = node
    {
        det_applies.push((call.clone(), *logical));
        node = input;
    }
    det_applies.reverse();
    match node {
        LogicalPlan::Scan {
            table,
            dataset,
            n_rows,
            schema,
        } => Ok(Decomposed {
            tail,
            proj_applies,
            filter,
            det_applies,
            scan: (table.clone(), dataset.clone(), *n_rows, Arc::clone(schema)),
        }),
        other => Err(EvaError::Plan(format!(
            "unsupported plan shape at {:?}",
            std::mem::discriminant(other)
        ))),
    }
}

fn rebuild_tail(input: PhysPlan, t: &LogicalPlan) -> Result<PhysPlan> {
    Ok(match t {
        LogicalPlan::Project { items, schema, .. } => PhysPlan::Project {
            id: OpId::UNSET,
            input: Box::new(input),
            items: items.clone(),
            schema: Arc::clone(schema),
        },
        LogicalPlan::Aggregate {
            group_by,
            aggs,
            schema,
            ..
        } => PhysPlan::Aggregate {
            id: OpId::UNSET,
            input: Box::new(input),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            schema: Arc::clone(schema),
        },
        LogicalPlan::Sort { keys, .. } => PhysPlan::Sort {
            id: OpId::UNSET,
            input: Box::new(input),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { n, .. } => PhysPlan::Limit {
            id: OpId::UNSET,
            input: Box::new(input),
            n: *n,
        },
        other => {
            return Err(EvaError::Plan(format!(
                "unexpected tail node {:?}",
                std::mem::discriminant(other)
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::Binder;
    use eva_catalog::TableDef;
    use eva_common::Field;
    use eva_storage::StorageEngine;
    use eva_symbolic::ColumnStats;

    fn setup() -> (Catalog, UdfManager, StatsCatalog) {
        let catalog = Catalog::new();
        let registry = eva_udf::UdfRegistry::new();
        eva_udf::registry::install_standard_zoo(&registry, &catalog).unwrap();
        catalog
            .create_table(TableDef {
                name: "video".into(),
                schema: Schema::new(vec![
                    Field::new("id", DataType::Int),
                    Field::new("timestamp", DataType::Int),
                    Field::new("frame", DataType::Frame),
                ])
                .unwrap(),
                n_rows: 1000,
                dataset: "ds".into(),
            })
            .unwrap();
        let manager = UdfManager::new(StorageEngine::new());
        let mut stats = StatsCatalog::new();
        stats.insert(
            "id",
            ColumnStats::Numeric {
                min: 0.0,
                max: 999.0,
                buckets: vec![0.1; 10],
            },
        );
        stats.insert(
            "cartype(bbox,frame)",
            ColumnStats::categorical_from_counts([
                ("Nissan".to_string(), 20u64),
                ("Toyota".to_string(), 80u64),
            ]),
        );
        (catalog, manager, stats)
    }

    fn plan(
        catalog: &Catalog,
        manager: &UdfManager,
        stats: &StatsCatalog,
        config: PlannerConfig,
        sql: &str,
    ) -> PhysPlan {
        let stmt = match eva_parser::parse(sql).unwrap() {
            eva_parser::Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        };
        let logical = Binder::new(catalog).bind_select(&stmt).unwrap();
        let opt = Optimizer {
            catalog,
            manager,
            stats,
            config,
            commits: None,
        };
        opt.optimize(&logical, &SimClock::new()).unwrap()
    }

    const Q: &str = "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                     WHERE id < 500 AND label = 'car' AND cartype(frame, bbox) = 'Nissan'";

    #[test]
    fn eva_plan_shape_and_decorations() {
        let (catalog, manager, stats) = setup();
        let p = plan(&catalog, &manager, &stats, PlannerConfig::default(), Q);
        let text = p.explain();
        assert!(text.contains("ScanFrames video [0, 500)"), "{text}");
        // Both detector and cartype get view+store decorations under EVA.
        assert!(
            text.matches("+view+eval] store=true").count() >= 2,
            "{text}"
        );
        // The cartype predicate was rewritten onto the output column.
        assert!(text.contains("Filter cartype = 'Nissan'"), "{text}");
        // Commit happened: the aggregated predicates are non-false.
        let det_sig = UdfSignature::new("fasterrcnn_resnet50", "video", &["frame"]);
        assert!(!manager.aggregated(&det_sig).is_false());
        let ct_sig = UdfSignature::new("cartype", "video", &["frame", "bbox"]);
        assert!(!manager.aggregated(&ct_sig).is_false());
    }

    #[test]
    fn no_reuse_plan_has_no_views() {
        let (catalog, manager, stats) = setup();
        let p = plan(
            &catalog,
            &manager,
            &stats,
            PlannerConfig::for_strategy(ReuseStrategy::NoReuse),
            Q,
        );
        let text = p.explain();
        assert!(text.contains("no-reuse"), "{text}");
        assert!(!text.contains("+view"), "{text}");
        // And nothing was committed.
        let det_sig = UdfSignature::new("fasterrcnn_resnet50", "video", &["frame"]);
        assert!(manager.aggregated(&det_sig).is_false());
    }

    #[test]
    fn hashstash_reuses_detector_only() {
        let (catalog, manager, stats) = setup();
        let p = plan(
            &catalog,
            &manager,
            &stats,
            PlannerConfig::for_strategy(ReuseStrategy::HashStash),
            Q,
        );
        let text = p.explain();
        assert!(text.contains("fasterrcnn_resnet50+view+eval"), "{text}");
        assert!(text.contains("no-reuse[cartype]"), "{text}");
    }

    #[test]
    fn funcache_decorates_with_cache() {
        let (catalog, manager, stats) = setup();
        let p = plan(
            &catalog,
            &manager,
            &stats,
            PlannerConfig::for_strategy(ReuseStrategy::FunCache),
            Q,
        );
        let text = p.explain();
        assert!(text.contains("funcache[fasterrcnn_resnet50]"), "{text}");
        assert!(text.contains("funcache[cartype]"), "{text}");
    }

    #[test]
    fn cheap_udfs_are_not_candidates() {
        let (catalog, manager, stats) = setup();
        let p = plan(
            &catalog,
            &manager,
            &stats,
            PlannerConfig::default(),
            "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE area(frame, bbox) > 0.2 AND label = 'car'",
        );
        let text = p.explain();
        assert!(
            text.contains("no-reuse[area]"),
            "AREA is below threshold: {text}"
        );
    }

    #[test]
    fn logical_udf_resolves_to_cheapest_without_views() {
        let (catalog, manager, stats) = setup();
        let p = plan(
            &catalog,
            &manager,
            &stats,
            PlannerConfig::default(),
            "SELECT id FROM video CROSS APPLY objectdetector(frame) ACCURACY 'LOW' \
             WHERE id < 100 AND label = 'car'",
        );
        let text = p.explain();
        // No views exist yet ⇒ Algorithm 2 falls through to the cheapest
        // eligible model.
        assert!(text.contains("eval:yolo_tiny"), "{text}");
        assert!(!text.contains("view:"), "{text}");
    }

    #[test]
    fn unknown_accuracy_errors() {
        let (catalog, manager, stats) = setup();
        let stmt = match eva_parser::parse(
            "SELECT id FROM video CROSS APPLY objectdetector(frame) ACCURACY 'ULTRA' WHERE id < 5",
        )
        .unwrap()
        {
            eva_parser::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let logical = Binder::new(&catalog).bind_select(&stmt).unwrap();
        let opt = Optimizer {
            catalog: &catalog,
            manager: &manager,
            stats: &stats,
            config: PlannerConfig::default(),
            commits: None,
        };
        assert!(opt.optimize(&logical, &SimClock::new()).is_err());
    }

    #[test]
    fn commit_log_defers_coverage_until_applied() {
        let (catalog, manager, stats) = setup();
        let stmt = match eva_parser::parse(Q).unwrap() {
            eva_parser::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let logical = Binder::new(&catalog).bind_select(&stmt).unwrap();
        let log = crate::commits::CommitLog::new();
        let opt = Optimizer {
            catalog: &catalog,
            manager: &manager,
            stats: &stats,
            config: PlannerConfig::default(),
            commits: Some(&log),
        };
        opt.optimize(&logical, &SimClock::new()).unwrap();
        // Nothing committed at plan time; the log holds both stores.
        let det_sig = UdfSignature::new("fasterrcnn_resnet50", "video", &["frame"]);
        assert!(manager.aggregated(&det_sig).is_false());
        assert_eq!(log.len(), 2);
        // Applying the log performs the commits.
        assert_eq!(log.apply(&manager), 2);
        assert!(!manager.aggregated(&det_sig).is_false());
    }

    #[test]
    fn optimize_charges_the_clock() {
        let (catalog, manager, stats) = setup();
        let clock = SimClock::new();
        let stmt = match eva_parser::parse(Q).unwrap() {
            eva_parser::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let logical = Binder::new(&catalog).bind_select(&stmt).unwrap();
        let opt = Optimizer {
            catalog: &catalog,
            manager: &manager,
            stats: &stats,
            config: PlannerConfig::default(),
            commits: None,
        };
        opt.optimize(&logical, &clock).unwrap();
        assert!(clock.snapshot().get(CostCategory::Optimize) > 0.0);
    }
}
