//! Logical and physical plan representations.
//!
//! The binder produces a [`LogicalPlan`]; canonical rules normalize it; the
//! reuse pipeline (§4.2–§4.4) lowers it to a [`PhysPlan`] whose
//! [`ApplySpec`] nodes carry the reuse decorations — which materialized view
//! to probe, whether to store fresh results, and (for logical UDFs) the
//! segment list produced by Algorithm 2.
//!
//! The paper's Fig. 4 rewrite (LEFT OUTER JOIN with the view + conditional
//! APPLY guarded on NULL + STORE) appears here in *fused* form: one physical
//! apply operator probes the view per tuple, evaluates the model only on
//! misses, and appends fresh results — exactly the semantics of the figure,
//! produced the way a production executor would implement it.

use std::sync::Arc;

use eva_catalog::UdfDef;
use eva_common::{OpId, OpStats, Schema, ViewId};
use eva_expr::{AggFunc, Expr, UdfCall};
use std::collections::BTreeMap;

/// A bound logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a registered video table.
    Scan {
        /// Table name.
        table: String,
        /// Backing dataset name.
        dataset: String,
        /// Row count.
        n_rows: u64,
        /// Table schema.
        schema: Arc<Schema>,
    },
    /// Table-valued UDF application (CROSS APPLY or extracted call).
    Apply {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The UDF invocation.
        call: UdfCall,
        /// Whether the call names a *logical* vision task to be resolved by
        /// model selection (§4.3) rather than a physical UDF.
        logical: bool,
        /// True when the apply came from an explicit `CROSS APPLY` clause;
        /// false for scalar calls extracted from the projection.
        from_cross_apply: bool,
        /// Schema after the apply.
        schema: Arc<Schema>,
    },
    /// Selection.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate (may contain UDF calls before the reuse rewrite).
        predicate: Expr,
    },
    /// Projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs.
        items: Vec<(Expr, String)>,
        /// Output schema.
        schema: Arc<Schema>,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by column names.
        group_by: Vec<String>,
        /// `(func, argument, output name)` triples.
        aggs: Vec<(AggFunc, Option<Expr>, String)>,
        /// Output schema.
        schema: Arc<Schema>,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(column, descending)` keys.
        keys: Vec<(String, bool)>,
    },
    /// Limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows.
        n: u64,
    },
}

impl LogicalPlan {
    /// The schema of rows this node produces.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Apply { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Aggregate { schema, .. } => Arc::clone(schema),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// The child, if single-input.
    pub fn input(&self) -> Option<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => None,
            LogicalPlan::Apply { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => Some(input),
        }
    }

    /// Readable indented tree.
    pub fn explain(&self) -> String {
        fn go(p: &LogicalPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match p {
                LogicalPlan::Scan { table, n_rows, .. } => {
                    out.push_str(&format!("{pad}Scan {table} (rows={n_rows})\n"));
                }
                LogicalPlan::Apply { call, logical, .. } => {
                    let kind = if *logical { "LogicalApply" } else { "Apply" };
                    out.push_str(&format!("{pad}{kind} {call}\n"));
                }
                LogicalPlan::Filter { predicate, .. } => {
                    out.push_str(&format!("{pad}Filter {predicate}\n"));
                }
                LogicalPlan::Project { items, .. } => {
                    let cols: Vec<String> =
                        items.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                    out.push_str(&format!("{pad}Project {}\n", cols.join(", ")));
                }
                LogicalPlan::Aggregate { group_by, aggs, .. } => {
                    let a: Vec<String> = aggs
                        .iter()
                        .map(|(f, e, n)| match e {
                            Some(e) => format!("{f}({e}) AS {n}"),
                            None => format!("{f}(*) AS {n}"),
                        })
                        .collect();
                    out.push_str(&format!(
                        "{pad}Aggregate group_by=[{}] aggs=[{}]\n",
                        group_by.join(", "),
                        a.join(", ")
                    ));
                }
                LogicalPlan::Sort { keys, .. } => {
                    let k: Vec<String> = keys
                        .iter()
                        .map(|(c, d)| format!("{c}{}", if *d { " DESC" } else { "" }))
                        .collect();
                    out.push_str(&format!("{pad}Sort {}\n", k.join(", ")));
                }
                LogicalPlan::Limit { n, .. } => {
                    out.push_str(&format!("{pad}Limit {n}\n"));
                }
            }
            if let Some(i) = p.input() {
                go(i, depth + 1, out);
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

// ---------------------------------------------------------------------------
// Physical plans
// ---------------------------------------------------------------------------

/// How one apply segment obtains results (Algorithm 2 output element).
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// The physical UDF backing this segment.
    pub udf: UdfDef,
    /// The materialized view to probe (`None` ⇒ never probe).
    pub view: Option<ViewId>,
    /// Whether this segment may *evaluate* the model on a probe miss.
    /// Exactly one segment per apply has `eval = true` (the fallback — the
    /// `y` of Algorithm 2); pure view segments are read-only.
    pub eval: bool,
}

/// Reuse decoration of a physical apply.
#[derive(Debug, Clone, PartialEq)]
pub enum ApplyReuse {
    /// No reuse: always evaluate (the No-Reuse baseline, or cheap UDFs that
    /// are not materialization candidates).
    None {
        /// The physical UDF to evaluate.
        udf: UdfDef,
    },
    /// EVA / HashStash style: probe materialized views segment by segment,
    /// evaluate the fallback on miss, optionally STORE fresh results.
    Views {
        /// Probe/eval order (view-only segments first, fallback last).
        segments: Vec<Segment>,
        /// Append fresh results to the fallback's view (the STORE operator
        /// of Fig. 4 ③).
        store: bool,
    },
    /// FunCache baseline: tuple-level in-memory function cache keyed by a
    /// 128-bit hash of the input arguments; pays hashing cost per call.
    FunCache {
        /// The physical UDF to evaluate on cache misses.
        udf: UdfDef,
    },
}

/// A physical table-valued UDF application.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplySpec {
    /// Display name (the logical or physical UDF as written in the query).
    pub display_name: String,
    /// Argument expressions over the input schema (`frame` and optionally
    /// `bbox` columns).
    pub args: Vec<Expr>,
    /// Reuse decoration.
    pub reuse: ApplyReuse,
    /// Output schema appended to the input row.
    pub output: Arc<Schema>,
}

impl ApplySpec {
    /// The UDF actually evaluated on misses (fallback), if any.
    pub fn fallback_udf(&self) -> Option<&UdfDef> {
        match &self.reuse {
            ApplyReuse::None { udf } => Some(udf),
            ApplyReuse::FunCache { udf } => Some(udf),
            ApplyReuse::Views { segments, .. } => segments.iter().find(|s| s.eval).map(|s| &s.udf),
        }
    }
}

/// A physical plan.
///
/// Every node carries an [`OpId`] assigned in pre-order by
/// [`PhysPlan::assign_op_ids`] after optimization. The ids are stable for a
/// given plan shape — the same query text yields the same numbering — and
/// are the key the executor's per-operator [`OpStats`] hang off.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPlan {
    /// Frame-range scan of a video table.
    ScanFrames {
        /// Operator id (stable per plan shape).
        id: OpId,
        /// Table name (reporting).
        table: String,
        /// Dataset to scan.
        dataset: String,
        /// Frame-id range `[from, to)` after predicate pushdown.
        range: (u64, u64),
        /// Output schema.
        schema: Arc<Schema>,
    },
    /// Selection (UDF-free after the rewrite).
    Filter {
        /// Operator id (stable per plan shape).
        id: OpId,
        /// Input plan.
        input: Box<PhysPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Fused view-probe / conditional-apply / store (Fig. 3–4).
    Apply {
        /// Operator id (stable per plan shape).
        id: OpId,
        /// Input plan.
        input: Box<PhysPlan>,
        /// The apply specification.
        spec: ApplySpec,
        /// Schema after the apply.
        schema: Arc<Schema>,
    },
    /// Projection.
    Project {
        /// Operator id (stable per plan shape).
        id: OpId,
        /// Input plan.
        input: Box<PhysPlan>,
        /// `(expression, output name)` pairs.
        items: Vec<(Expr, String)>,
        /// Output schema.
        schema: Arc<Schema>,
    },
    /// Hash aggregation.
    Aggregate {
        /// Operator id (stable per plan shape).
        id: OpId,
        /// Input plan.
        input: Box<PhysPlan>,
        /// Group-by columns.
        group_by: Vec<String>,
        /// Aggregates.
        aggs: Vec<(AggFunc, Option<Expr>, String)>,
        /// Output schema.
        schema: Arc<Schema>,
    },
    /// Sort.
    Sort {
        /// Operator id (stable per plan shape).
        id: OpId,
        /// Input plan.
        input: Box<PhysPlan>,
        /// `(column, descending)` keys.
        keys: Vec<(String, bool)>,
    },
    /// Limit.
    Limit {
        /// Operator id (stable per plan shape).
        id: OpId,
        /// Input plan.
        input: Box<PhysPlan>,
        /// Maximum rows.
        n: u64,
    },
}

impl PhysPlan {
    /// Output schema.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            PhysPlan::ScanFrames { schema, .. }
            | PhysPlan::Apply { schema, .. }
            | PhysPlan::Project { schema, .. }
            | PhysPlan::Aggregate { schema, .. } => Arc::clone(schema),
            PhysPlan::Filter { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// The child, if any.
    pub fn input(&self) -> Option<&PhysPlan> {
        match self {
            PhysPlan::ScanFrames { .. } => None,
            PhysPlan::Filter { input, .. }
            | PhysPlan::Apply { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Aggregate { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Limit { input, .. } => Some(input),
        }
    }

    /// Mutable access to the child, if any.
    pub fn input_mut(&mut self) -> Option<&mut PhysPlan> {
        match self {
            PhysPlan::ScanFrames { .. } => None,
            PhysPlan::Filter { input, .. }
            | PhysPlan::Apply { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Aggregate { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Limit { input, .. } => Some(input),
        }
    }

    /// This node's operator id ([`OpId::UNSET`] before numbering).
    pub fn op_id(&self) -> OpId {
        match self {
            PhysPlan::ScanFrames { id, .. }
            | PhysPlan::Filter { id, .. }
            | PhysPlan::Apply { id, .. }
            | PhysPlan::Project { id, .. }
            | PhysPlan::Aggregate { id, .. }
            | PhysPlan::Sort { id, .. }
            | PhysPlan::Limit { id, .. } => *id,
        }
    }

    fn op_id_mut(&mut self) -> &mut OpId {
        match self {
            PhysPlan::ScanFrames { id, .. }
            | PhysPlan::Filter { id, .. }
            | PhysPlan::Apply { id, .. }
            | PhysPlan::Project { id, .. }
            | PhysPlan::Aggregate { id, .. }
            | PhysPlan::Sort { id, .. }
            | PhysPlan::Limit { id, .. } => id,
        }
    }

    /// Number every node in pre-order starting at `op1` (root first). The
    /// optimizer calls this once per plan; ids depend only on plan shape, so
    /// identical queries always produce identical numberings.
    pub fn assign_op_ids(&mut self) {
        fn go(p: &mut PhysPlan, next: &mut u64) {
            *p.op_id_mut() = OpId(*next);
            *next += 1;
            if let Some(i) = p.input_mut() {
                go(i, next);
            }
        }
        let mut next = 1;
        go(self, &mut next);
    }

    /// One-line description of this node (no padding, no newline).
    fn describe(&self) -> String {
        match self {
            PhysPlan::ScanFrames { table, range, .. } => {
                format!("ScanFrames {table} [{}, {})", range.0, range.1)
            }
            PhysPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            PhysPlan::Apply { spec, .. } => {
                let deco = match &spec.reuse {
                    ApplyReuse::None { udf } => format!("no-reuse[{}]", udf.name),
                    ApplyReuse::FunCache { udf } => format!("funcache[{}]", udf.name),
                    ApplyReuse::Views { segments, store } => {
                        let segs: Vec<String> = segments
                            .iter()
                            .map(|s| {
                                format!(
                                    "{}{}{}",
                                    s.udf.name,
                                    if s.view.is_some() { "+view" } else { "" },
                                    if s.eval { "+eval" } else { "" }
                                )
                            })
                            .collect();
                        format!("views[{}] store={store}", segs.join(" → "))
                    }
                };
                format!("Apply {} ({deco})", spec.display_name)
            }
            PhysPlan::Project { items, .. } => {
                let cols: Vec<String> = items.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!("Project {}", cols.join(", "))
            }
            PhysPlan::Aggregate { group_by, aggs, .. } => {
                let a: Vec<String> = aggs
                    .iter()
                    .map(|(f, e, n)| match e {
                        Some(e) => format!("{f}({e}) AS {n}"),
                        None => format!("{f}(*) AS {n}"),
                    })
                    .collect();
                format!(
                    "Aggregate group_by=[{}] aggs=[{}]",
                    group_by.join(", "),
                    a.join(", ")
                )
            }
            PhysPlan::Sort { keys, .. } => {
                let k: Vec<String> = keys
                    .iter()
                    .map(|(c, d)| format!("{c}{}", if *d { " DESC" } else { "" }))
                    .collect();
                format!("Sort {}", k.join(", "))
            }
            PhysPlan::Limit { n, .. } => format!("Limit {n}"),
        }
    }

    /// Readable indented tree with reuse decorations.
    pub fn explain(&self) -> String {
        fn go(p: &PhysPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            out.push_str(&pad);
            out.push_str(&p.describe());
            out.push('\n');
            if let Some(i) = p.input() {
                go(i, depth + 1, out);
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }

    /// `EXPLAIN ANALYZE` rendering: the [`explain`](PhysPlan::explain) tree
    /// annotated with the executor's per-operator statistics.
    ///
    /// Each node line gains a bracketed block with its operator id, actual
    /// rows/batches and *cumulative* simulated cost for the subtree rooted
    /// at the node (Postgres-style). Apply operators additionally report
    /// probe totals with the hit rate, fuzzy hits, and UDF calls executed
    /// versus avoided. Operators the executor never polled report `(never
    /// executed)`.
    pub fn explain_analyze(&self, stats: &BTreeMap<OpId, OpStats>) -> String {
        fn go(p: &PhysPlan, depth: usize, stats: &BTreeMap<OpId, OpStats>, out: &mut String) {
            let pad = "  ".repeat(depth);
            out.push_str(&pad);
            out.push_str(&p.describe());
            let id = p.op_id();
            match stats.get(&id) {
                Some(s) => {
                    out.push_str(&format!(
                        "  [{id} | rows={} batches={} cost={:.3}ms",
                        s.rows_out,
                        s.batches,
                        s.cum.total_ms()
                    ));
                    if matches!(p, PhysPlan::Apply { .. }) {
                        out.push_str(&format!(
                            " | probes={} hits={} ({:.1}%) fuzzy={} | udf executed={} avoided={}",
                            s.probes,
                            s.probe_hits,
                            s.probe_hit_rate() * 100.0,
                            s.fuzzy_hits,
                            s.udf_executed,
                            s.udf_avoided
                        ));
                    }
                    out.push(']');
                }
                None => out.push_str(&format!("  [{id} | (never executed)]")),
            }
            out.push('\n');
            if let Some(i) = p.input() {
                go(i, depth + 1, stats, out);
            }
        }
        let mut s = String::new();
        go(self, 0, stats, &mut s);
        s
    }

    /// All apply specs in execution order (bottom-up).
    pub fn applies(&self) -> Vec<&ApplySpec> {
        let mut out = Vec::new();
        fn go<'a>(p: &'a PhysPlan, out: &mut Vec<&'a ApplySpec>) {
            if let Some(i) = p.input() {
                go(i, out);
            }
            if let PhysPlan::Apply { spec, .. } = p {
                out.push(spec);
            }
        }
        go(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::{DataType, Field};

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "video".into(),
            dataset: "ds".into(),
            n_rows: 100,
            schema: Arc::new(Schema::new(vec![Field::new("id", DataType::Int)]).unwrap()),
        }
    }

    #[test]
    fn logical_explain_shows_structure() {
        let p = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::col("id").lt(10),
        };
        let text = p.explain();
        assert!(text.contains("Filter id < 10"));
        assert!(text.contains("Scan video"));
        assert!(text.find("Filter").unwrap() < text.find("Scan").unwrap());
    }

    #[test]
    fn schema_propagates_through_wrappers() {
        let p = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Expr::true_(),
            }),
            n: 5,
        };
        assert_eq!(p.schema().len(), 1);
    }

    #[test]
    fn phys_applies_collects_in_order() {
        let schema = Arc::new(Schema::new(vec![Field::new("id", DataType::Int)]).unwrap());
        let base = PhysPlan::ScanFrames {
            id: OpId::UNSET,
            table: "v".into(),
            dataset: "d".into(),
            range: (0, 10),
            schema: Arc::clone(&schema),
        };
        let dummy_udf = UdfDef {
            id: eva_common::UdfId(0),
            name: "dummy".into(),
            input: Schema::empty(),
            output: Schema::empty(),
            impl_id: "sim/dummy".into(),
            logical_type: None,
            accuracy: eva_catalog::AccuracyLevel::Low,
            cost_ms: Some(1.0),
            gpu: false,
        };
        let spec1 = ApplySpec {
            display_name: "a".into(),
            args: vec![],
            reuse: ApplyReuse::None {
                udf: dummy_udf.clone(),
            },
            output: Arc::new(Schema::empty()),
        };
        let spec2 = ApplySpec {
            display_name: "b".into(),
            args: vec![],
            reuse: ApplyReuse::None { udf: dummy_udf },
            output: Arc::new(Schema::empty()),
        };
        let p = PhysPlan::Apply {
            id: OpId::UNSET,
            input: Box::new(PhysPlan::Apply {
                id: OpId::UNSET,
                input: Box::new(base),
                spec: spec1,
                schema: Arc::clone(&schema),
            }),
            spec: spec2,
            schema,
        };
        let names: Vec<&str> = p
            .applies()
            .iter()
            .map(|s| s.display_name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(p.explain().contains("no-reuse"));
    }
}
