//! Deferred coverage commits.
//!
//! The optimizer decides at *plan* time which views a query will STORE into,
//! and folds the query's associated predicate into the view's aggregated
//! predicate `p_u` (§4.1). Committing eagerly is wrong under cancellation: a
//! query that is cancelled mid-execution has only materialized a prefix of
//! its rows, yet the committed predicate would claim full coverage and later
//! queries would trust the view for rows that were never written.
//!
//! [`CommitLog`] fixes this by recording the would-be commits at plan time
//! and letting the session apply them only after the query completes
//! successfully (or drop them when the query was cancelled or degraded).

use std::cell::RefCell;

use eva_expr::Expr;
use eva_symbolic::Dnf;
use eva_udf::{UdfManager, UdfSignature};

/// One coverage commit the optimizer wanted to make at plan time.
#[derive(Debug, Clone)]
pub struct PendingCommit {
    /// Signature of the view being stored into.
    pub sig: UdfSignature,
    /// Associated predicate in DNF (what the query covers).
    pub assoc: Dnf,
    /// The exact expression form, for the analyzer's Fig. 7 data point.
    pub assoc_expr: Option<Expr>,
}

/// Plan-time log of coverage commits, applied or dropped after execution.
///
/// Single-threaded by design (the planner and session share a thread), so a
/// `RefCell` suffices.
#[derive(Debug, Default)]
pub struct CommitLog {
    pending: RefCell<Vec<PendingCommit>>,
}

impl CommitLog {
    /// An empty log.
    pub fn new() -> CommitLog {
        CommitLog::default()
    }

    /// Record a commit the optimizer deferred.
    pub fn record(&self, sig: UdfSignature, assoc: Dnf, assoc_expr: Option<Expr>) {
        self.pending.borrow_mut().push(PendingCommit {
            sig,
            assoc,
            assoc_expr,
        });
    }

    /// Number of deferred commits currently held.
    pub fn len(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Whether no commits are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.borrow().is_empty()
    }

    /// Apply every pending commit to the manager (the query completed), in
    /// the order the optimizer recorded them. Returns how many were applied.
    pub fn apply(&self, manager: &UdfManager) -> usize {
        let drained: Vec<PendingCommit> = self.pending.borrow_mut().drain(..).collect();
        let n = drained.len();
        for c in drained {
            manager.analyze(&c.sig, &c.assoc, c.assoc_expr.as_ref());
            manager.commit(&c.sig, &c.assoc, c.assoc_expr.as_ref());
        }
        n
    }

    /// Drop every pending commit without applying (the query was cancelled
    /// or degraded). Returns how many were discarded.
    pub fn discard(&self) -> usize {
        let n = self.pending.borrow().len();
        self.pending.borrow_mut().clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> UdfSignature {
        UdfSignature::new("udf", "video", &["frame"])
    }

    fn manager_with_view() -> UdfManager {
        // `commit` only folds into signatures registered via `view_for`,
        // which the optimizer always does before recording a store.
        let manager = UdfManager::new(eva_storage::StorageEngine::new());
        manager.view_for(
            &sig(),
            eva_storage::ViewKeyKind::Frame,
            std::sync::Arc::new(eva_common::Schema::empty()),
        );
        manager
    }

    #[test]
    fn apply_drains_and_commits() {
        let log = CommitLog::new();
        log.record(sig(), Dnf::true_(), None);
        log.record(sig(), Dnf::true_(), None);
        assert_eq!(log.len(), 2);
        let manager = manager_with_view();
        assert_eq!(log.apply(&manager), 2);
        assert!(log.is_empty());
        assert!(!manager.aggregated(&sig()).is_false());
    }

    #[test]
    fn discard_drops_without_committing() {
        let log = CommitLog::new();
        log.record(sig(), Dnf::true_(), None);
        let manager = manager_with_view();
        assert_eq!(log.discard(), 1);
        assert!(log.is_empty());
        assert_eq!(log.apply(&manager), 0);
        assert!(manager.aggregated(&sig()).is_false());
    }
}
