//! The materialization-aware cost model (paper §4.2, Eqs. 2–4).

/// Parameters of one UDF-based predicate for ranking purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredicateProfile {
    /// Selectivity `s` of the predicate itself.
    pub selectivity: f64,
    /// Per-tuple UDF evaluation cost `c_e` in milliseconds.
    pub eval_cost_ms: f64,
    /// Selectivity `s_{p₋}` of the difference predicate — the fraction of
    /// incoming tuples whose results are *not* materialized (1.0 when no
    /// view exists).
    pub diff_selectivity: f64,
    /// Per-tuple view/join read cost `c_r` in milliseconds.
    pub read_cost_ms: f64,
}

/// The canonical ranking function of Hellerstein-style predicate ordering
/// (Eq. 2): `r = (s − 1) / c`. Smaller ranks run earlier.
pub fn rank_canonical(p: &PredicateProfile) -> f64 {
    (p.selectivity - 1.0) / p.eval_cost_ms.max(f64::MIN_POSITIVE)
}

/// EVA's materialization-aware ranking function (Eq. 4):
/// `r = (s − 1) / (s_{p₋}·c_e + c_r)` — the effective per-tuple cost shrinks
/// by the fraction of tuples already materialized.
pub fn rank_materialization_aware(p: &PredicateProfile) -> f64 {
    let denom = p.diff_selectivity * p.eval_cost_ms + p.read_cost_ms;
    (p.selectivity - 1.0) / denom.max(f64::MIN_POSITIVE)
}

/// Expected cost of evaluating a UDF-based predicate over `n_rows` input
/// tuples (Eq. 3): `T(σ,|R|) = 3·C_M + |R|·c_r + |R|·s_{p₋}·c_e`, with the
/// `3·C_M` join term folded into `read_cost_ms` per tuple (the paper notes
/// it is negligible and chargeable per-tuple).
pub fn predicate_eval_cost_ms(p: &PredicateProfile, n_rows: f64) -> f64 {
    n_rows * (p.read_cost_ms + p.diff_selectivity * p.eval_cost_ms)
}

/// Expected cost of evaluating an *ordering* of predicates over `n_rows`
/// tuples: each predicate sees the input shrunk by the selectivities of its
/// predecessors (the expansion of `T(O, |R|)` in the proof of Theorem 4.1).
pub fn ordering_cost_ms(profiles: &[PredicateProfile], n_rows: f64) -> f64 {
    let mut rows = n_rows;
    let mut total = 0.0;
    for p in profiles {
        total += predicate_eval_cost_ms(p, rows);
        rows *= p.selectivity;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(s: f64, ce: f64, sdiff: f64) -> PredicateProfile {
        PredicateProfile {
            selectivity: s,
            eval_cost_ms: ce,
            diff_selectivity: sdiff,
            read_cost_ms: 0.15,
        }
    }

    #[test]
    fn ranks_are_negative_and_ordered() {
        // Selective & cheap ⇒ very negative rank (runs first).
        let cheap_selective = profile(0.1, 1.0, 1.0);
        let costly_loose = profile(0.9, 100.0, 1.0);
        assert!(rank_canonical(&cheap_selective) < rank_canonical(&costly_loose));
        assert!(rank_canonical(&cheap_selective) < 0.0);
    }

    #[test]
    fn materialization_discounts_cost() {
        // Same predicate; one fully materialized (s_diff = 0).
        let cold = profile(0.5, 100.0, 1.0);
        let hot = profile(0.5, 100.0, 0.0);
        assert!(
            rank_materialization_aware(&hot) < rank_materialization_aware(&cold),
            "materialized predicate should rank earlier"
        );
        // Canonical ranking cannot tell them apart.
        assert_eq!(rank_canonical(&hot), rank_canonical(&cold));
    }

    #[test]
    fn paper_example_order_flip() {
        // VehicleModel (fully reused) vs VehicleColor (not computed yet):
        // canonical ranks them by raw cost; materialization-aware puts the
        // reused one first even when raw costs favour the other.
        let model = profile(0.2, 6.0, 0.0); // reused
        let color = profile(0.2, 5.0, 1.0); // must evaluate
        assert!(rank_canonical(&color) < rank_canonical(&model));
        assert!(rank_materialization_aware(&model) < rank_materialization_aware(&color));
    }

    #[test]
    fn ordering_cost_shrinks_with_selectivity() {
        let a = profile(0.1, 10.0, 1.0);
        let b = profile(0.9, 100.0, 1.0);
        let good = ordering_cost_ms(&[a, b], 1000.0);
        let bad = ordering_cost_ms(&[b, a], 1000.0);
        assert!(
            good < bad,
            "selective-first must be cheaper: {good} vs {bad}"
        );
    }

    #[test]
    fn eval_cost_scales_linearly() {
        let p = profile(0.5, 10.0, 0.5);
        let c1 = predicate_eval_cost_ms(&p, 100.0);
        let c2 = predicate_eval_cost_ms(&p, 200.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-9);
        // Fully materialized: only read cost remains.
        let hot = profile(0.5, 10.0, 0.0);
        assert!((predicate_eval_cost_ms(&hot, 100.0) - 15.0).abs() < 1e-9);
    }
}
