//! Marking parallel-safe pipeline segments for morsel-driven execution.
//!
//! A *parallel segment* is the maximal UDF-free suffix of a physical plan's
//! operator chain that sits directly on a [`PhysPlan::ScanFrames`] leaf:
//! `Scan ← (Filter | Project)*`, optionally terminated by an
//! [`PhysPlan::Aggregate`] pipeline breaker. Every operator in the segment
//! is a pure function of its morsel — no UDFs, no view probes, no shared
//! state — so the executor may run one pipeline instance per worker over
//! fixed-size frame-range morsels and stitch the outputs back together in
//! morsel order, bit-identical to serial execution.
//!
//! This module is *analysis only*: it never rewrites the plan, so
//! `EXPLAIN` output and the pre-order [`OpId`] numbering are untouched.
//! The executor substitutes its own parallel operator for the segment at
//! build time, keyed by [`ParallelSegment::root_op_id`], and decides
//! *whether* to engage from the scan-range size and the configured
//! thresholds — both deterministic inputs, never the worker count.

use std::sync::Arc;

use eva_common::{OpId, Schema};
use eva_expr::{AggFunc, Expr};

use crate::plan::PhysPlan;

/// One pipeline stage above the scan, in bottom-up order.
#[derive(Debug, Clone)]
pub enum ParallelStage {
    /// A UDF-free selection.
    Filter {
        /// The original plan node's id (runtime stats are replayed here).
        op_id: OpId,
        /// The predicate, evaluated column-at-a-time per morsel.
        predicate: Expr,
    },
    /// A UDF-free projection.
    Project {
        /// The original plan node's id.
        op_id: OpId,
        /// `(expression, output name)` pairs.
        items: Vec<(Expr, String)>,
        /// Output schema.
        schema: Arc<Schema>,
    },
}

impl ParallelStage {
    /// The original plan node's id.
    pub fn op_id(&self) -> OpId {
        match self {
            ParallelStage::Filter { op_id, .. } | ParallelStage::Project { op_id, .. } => *op_id,
        }
    }
}

/// The aggregate pipeline breaker terminating a segment, if any: workers
/// fold per-morsel partial states, the caller merges them in morsel order.
#[derive(Debug, Clone)]
pub struct ParallelBreaker {
    /// The original `Aggregate` node's id.
    pub op_id: OpId,
    /// Group-by columns.
    pub group_by: Vec<String>,
    /// Aggregates.
    pub aggs: Vec<(AggFunc, Option<Expr>, String)>,
    /// Output schema.
    pub schema: Arc<Schema>,
}

/// A parallel-safe pipeline segment rooted at a frame scan.
#[derive(Debug, Clone)]
pub struct ParallelSegment {
    /// Id of the segment's topmost node — the breaker if present, else the
    /// highest stage, else the scan itself. The executor substitutes its
    /// parallel operator where it would have built this node.
    pub root_op_id: OpId,
    /// The `ScanFrames` leaf's id.
    pub scan_op_id: OpId,
    /// Dataset the scan reads.
    pub dataset: String,
    /// Frame-id range `[from, to)` after predicate pushdown.
    pub range: (u64, u64),
    /// The scan's output schema.
    pub scan_schema: Arc<Schema>,
    /// Filter/Project stages above the scan, bottom-up.
    pub stages: Vec<ParallelStage>,
    /// Terminating aggregate, if the segment ends at one.
    pub breaker: Option<ParallelBreaker>,
}

impl ParallelSegment {
    /// Frames in the scan range (the executor's engagement test compares
    /// this against `parallel_scan_min_rows`).
    pub fn range_len(&self) -> u64 {
        self.range.1.saturating_sub(self.range.0)
    }
}

/// True when the expression is safe to evaluate on a worker thread: free of
/// UDF calls (which probe views, charge cost, and touch shared caches) and
/// of aggregate calls (which belong to the breaker, not a stage).
fn worker_safe(e: &Expr) -> bool {
    let mut safe = true;
    e.visit(&mut |n| {
        if matches!(n, Expr::Udf(_) | Expr::Agg { .. }) {
            safe = false;
        }
    });
    safe
}

/// Find the parallel-safe segment of `plan`, if it has one.
///
/// Walks to the plan's `ScanFrames` leaf and climbs back up through
/// consecutive worker-safe `Filter`/`Project` nodes; if the next node up is
/// an `Aggregate` with worker-safe arguments, it becomes the breaker.
/// Purely structural — the result depends only on the plan shape, so the
/// same query text always yields the same segmentation.
pub fn parallel_segment(plan: &PhysPlan) -> Option<ParallelSegment> {
    // Path from root to leaf.
    let mut path: Vec<&PhysPlan> = vec![plan];
    while let Some(input) = path.last().unwrap().input() {
        path.push(input);
    }
    let (scan_op_id, dataset, range, scan_schema) = match path.last().unwrap() {
        PhysPlan::ScanFrames {
            id,
            dataset,
            range,
            schema,
            ..
        } => (*id, dataset.clone(), *range, Arc::clone(schema)),
        _ => return None,
    };
    // Climb from just above the scan, collecting worker-safe stages.
    let mut stages = Vec::new();
    let mut top = path.len() - 1; // index into `path` of the segment's top
    for idx in (0..path.len() - 1).rev() {
        match path[idx] {
            PhysPlan::Filter { id, predicate, .. } if worker_safe(predicate) => {
                stages.push(ParallelStage::Filter {
                    op_id: *id,
                    predicate: predicate.clone(),
                });
                top = idx;
            }
            PhysPlan::Project {
                id, items, schema, ..
            } if items.iter().all(|(e, _)| worker_safe(e)) => {
                stages.push(ParallelStage::Project {
                    op_id: *id,
                    items: items.clone(),
                    schema: Arc::clone(schema),
                });
                top = idx;
            }
            _ => break,
        }
    }
    // The node directly above the chain, if an aggregate, is the breaker.
    let breaker = if top > 0 {
        match path[top - 1] {
            PhysPlan::Aggregate {
                id,
                group_by,
                aggs,
                schema,
                ..
            } if aggs
                .iter()
                .all(|(_, arg, _)| arg.as_ref().map_or(true, worker_safe)) =>
            {
                Some(ParallelBreaker {
                    op_id: *id,
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                    schema: Arc::clone(schema),
                })
            }
            _ => None,
        }
    } else {
        None
    };
    let root_op_id = breaker
        .as_ref()
        .map(|b| b.op_id)
        .or_else(|| stages.last().map(|s| s.op_id()))
        .unwrap_or(scan_op_id);
    Some(ParallelSegment {
        root_op_id,
        scan_op_id,
        dataset,
        range,
        scan_schema,
        stages,
        breaker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::{DataType, Field};

    fn scan_schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("timestamp", DataType::Int),
                Field::new("frame", DataType::Int),
            ])
            .unwrap(),
        )
    }

    fn scan(range: (u64, u64)) -> PhysPlan {
        PhysPlan::ScanFrames {
            id: OpId::UNSET,
            table: "video".into(),
            dataset: "v".into(),
            range,
            schema: scan_schema(),
        }
    }

    fn filter(input: PhysPlan, predicate: Expr) -> PhysPlan {
        PhysPlan::Filter {
            id: OpId::UNSET,
            input: Box::new(input),
            predicate,
        }
    }

    fn project(input: PhysPlan, items: Vec<(Expr, String)>) -> PhysPlan {
        let schema = Arc::new(
            Schema::new(
                items
                    .iter()
                    .map(|(_, n)| Field::new(n.clone(), DataType::Int))
                    .collect(),
            )
            .unwrap(),
        );
        PhysPlan::Project {
            id: OpId::UNSET,
            input: Box::new(input),
            items,
            schema,
        }
    }

    fn aggregate(input: PhysPlan) -> PhysPlan {
        PhysPlan::Aggregate {
            id: OpId::UNSET,
            input: Box::new(input),
            group_by: vec![],
            aggs: vec![(AggFunc::Count, None, "n".into())],
            schema: Arc::new(Schema::new(vec![Field::new("n", DataType::Int)]).unwrap()),
        }
    }

    #[test]
    fn full_chain_with_breaker() {
        let mut plan = aggregate(project(
            filter(scan((0, 10_000)), Expr::col("id").lt(5_000)),
            vec![(Expr::col("id"), "id".into())],
        ));
        plan.assign_op_ids();
        let seg = parallel_segment(&plan).expect("segment");
        assert_eq!(seg.range, (0, 10_000));
        assert_eq!(seg.range_len(), 10_000);
        assert_eq!(seg.stages.len(), 2);
        assert!(matches!(seg.stages[0], ParallelStage::Filter { .. }));
        assert!(matches!(seg.stages[1], ParallelStage::Project { .. }));
        let breaker = seg.breaker.as_ref().expect("breaker");
        // Pre-order ids: agg=1, project=2, filter=3, scan=4.
        assert_eq!(breaker.op_id, OpId(1));
        assert_eq!(seg.root_op_id, OpId(1));
        assert_eq!(seg.scan_op_id, OpId(4));
    }

    #[test]
    fn chain_stops_below_udf_filter() {
        let udf = Expr::Udf(eva_expr::UdfCall::new("det", vec![Expr::col("frame")]));
        let mut plan = filter(
            filter(scan((0, 100)), Expr::col("id").lt(50)),
            udf.clone().eq_val("car"),
        );
        plan.assign_op_ids();
        let seg = parallel_segment(&plan).expect("segment");
        // Only the UDF-free filter joins the segment; root is that filter.
        assert_eq!(seg.stages.len(), 1);
        assert!(seg.breaker.is_none());
        assert_eq!(seg.root_op_id, OpId(2));
    }

    #[test]
    fn bare_scan_is_its_own_segment() {
        let mut plan = scan((5, 25));
        plan.assign_op_ids();
        let seg = parallel_segment(&plan).expect("segment");
        assert!(seg.stages.is_empty());
        assert!(seg.breaker.is_none());
        assert_eq!(seg.root_op_id, seg.scan_op_id);
        assert_eq!(seg.range_len(), 20);
    }

    #[test]
    fn breaker_requires_adjacency() {
        // Aggregate above a UDF filter is NOT a breaker for the segment.
        let udf = Expr::Udf(eva_expr::UdfCall::new("det", vec![Expr::col("frame")]));
        let mut plan = aggregate(filter(
            filter(scan((0, 100)), Expr::col("id").lt(50)),
            udf.eq_val("car"),
        ));
        plan.assign_op_ids();
        let seg = parallel_segment(&plan).expect("segment");
        assert_eq!(seg.stages.len(), 1);
        assert!(seg.breaker.is_none());
    }
}
