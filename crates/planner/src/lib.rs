//! # eva-planner
//!
//! The query optimizer of EVA-RS: the binder, the canonical transformation
//! rules, and the **semantic reuse algorithm** of the paper —
//!
//! * [`cost`] — the materialization-aware cost model (Eqs. 2–4),
//! * [`reorder`] — predicate reordering and Theorem 4.1,
//! * [`setcover`] — logical UDF reuse via greedy weighted set cover
//!   (Algorithm 2, Theorem 4.2),
//! * [`optimizer`] — the Cascades-style rule pipeline combining canonical
//!   rules with Rule I (UDF-predicate transformation, Fig. 3) and Rule II
//!   (materialization-aware transformation, Fig. 4), plus the baseline
//!   strategies (No-Reuse, HashStash, FunCache) used in the evaluation.

pub mod bind;
pub mod commits;
pub mod cost;
pub mod optimizer;
pub mod parallel;
pub mod plan;
pub mod reorder;
pub mod rules;
pub mod setcover;

pub use bind::Binder;
pub use commits::{CommitLog, PendingCommit};
pub use cost::PredicateProfile;
pub use optimizer::{Optimizer, PlannerConfig, ReuseStrategy};
pub use parallel::{parallel_segment, ParallelBreaker, ParallelSegment, ParallelStage};
pub use plan::{ApplyReuse, ApplySpec, LogicalPlan, PhysPlan, Segment};
pub use reorder::RankingKind;
