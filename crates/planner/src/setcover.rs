//! Logical UDF reuse via weighted set cover (paper §4.3, Algorithm 2).
//!
//! A query naming a *logical* vision task (e.g. `ObjectDetector … ACCURACY
//! 'LOW'`) may be served by any physical model meeting the accuracy
//! constraint — including by *reading the materialized views* of models that
//! already ran (Theorem 4.2 reduces picking the cheapest combination to
//! weighted set cover). The greedy loop of Algorithm 2 repeatedly picks the
//! view with the lowest cost per uncovered tuple while it beats evaluating
//! the cheapest eligible model, then falls back to that model for the rest.

use std::collections::BTreeSet;

use eva_catalog::UdfDef;
use eva_common::ViewId;
use eva_symbolic::{diff, inter, Dnf, StatsCatalog};

/// One physical model with its reuse state.
#[derive(Debug, Clone)]
pub struct PhysicalCandidate {
    /// Catalog definition (cost, accuracy).
    pub udf: UdfDef,
    /// Its materialized view, if one exists.
    pub view: Option<ViewId>,
    /// Number of keys materialized in the view.
    pub view_keys: u64,
    /// The aggregated predicate `p_x` describing which tuples the view
    /// covers.
    pub agg_pred: Dnf,
}

/// One element of the model-selection result, in probe order.
#[derive(Debug, Clone, PartialEq)]
pub enum Choice {
    /// Read this model's materialized view for the tuples it covers.
    ReadView {
        /// The model whose view is read.
        udf: UdfDef,
        /// The view.
        view: ViewId,
    },
    /// Evaluate this model for everything still uncovered (the `y` of
    /// Algorithm 2 — always the last element).
    Evaluate {
        /// The model to run.
        udf: UdfDef,
    },
}

/// Algorithm 2. `eligible` are the physical UDFs satisfying the accuracy
/// constraint (`PhysicalUDFs(sig, C)`), each annotated with its view state;
/// `q` is the invocation's associated predicate; `view_read_ms_per_row` is
/// the per-row view read cost (incl. the `3×` join factor of Eq. 3).
pub fn optimal_physical_udfs(
    eligible: &[PhysicalCandidate],
    q: &Dnf,
    n_input: f64,
    stats: &StatsCatalog,
    view_read_ms_per_row: f64,
) -> Vec<Choice> {
    // Line 3: the cheapest eligible model (used when no view wins).
    let cheapest = eligible
        .iter()
        .min_by(|a, b| {
            cost_of(&a.udf)
                .partial_cmp(&cost_of(&b.udf))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one eligible physical UDF");
    let c_y = cost_of(&cheapest.udf);

    let mut out: Vec<Choice> = Vec::new();
    let mut remaining = q.clone().reduced();
    let mut used: BTreeSet<String> = BTreeSet::new();

    // Lines 4–14: greedy cover.
    loop {
        if remaining.is_false() {
            break;
        }
        // Line 6: cost per uncovered tuple for every candidate view.
        let mut best: Option<(&PhysicalCandidate, f64)> = None;
        for x in eligible {
            if x.view.is_none() || x.view_keys == 0 || used.contains(&x.udf.name) {
                continue;
            }
            let covered = stats.dnf_selectivity(&inter(&x.agg_pred, &remaining)) * n_input;
            if covered <= 0.0 {
                continue;
            }
            let read_cost = view_read_ms_per_row * x.view_keys as f64;
            let w = read_cost / covered;
            if best.map(|(_, bw)| w < bw).unwrap_or(true) {
                best = Some((x, w));
            }
        }
        // Line 8: does the best view beat running the cheapest model?
        match best {
            Some((x, w)) if w < c_y => {
                out.push(Choice::ReadView {
                    udf: x.udf.clone(),
                    view: x.view.expect("checked above"),
                });
                used.insert(x.udf.name.clone());
                // Line 10: shrink the remaining predicate.
                remaining = diff(&x.agg_pred, &remaining);
            }
            _ => break, // Lines 11–13: run the cheapest model for the rest.
        }
    }
    out.push(Choice::Evaluate {
        udf: cheapest.udf.clone(),
    });
    out
}

fn cost_of(udf: &UdfDef) -> f64 {
    udf.cost_ms.unwrap_or(f64::INFINITY)
}

// ---------------------------------------------------------------------------
// Generic greedy weighted set cover (the textbook form behind Theorem 4.2),
// kept for direct testing of the approximation behaviour.
// ---------------------------------------------------------------------------

/// Greedy weighted set cover over an explicit universe: returns the indices
/// of chosen sets. Elements that no set contains are simply never covered.
pub fn greedy_weighted_set_cover(universe: usize, sets: &[(f64, BTreeSet<usize>)]) -> Vec<usize> {
    let mut uncovered: BTreeSet<usize> = (0..universe).collect();
    let mut chosen = Vec::new();
    let mut available: Vec<usize> = (0..sets.len()).collect();
    while !uncovered.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for &i in &available {
            let (w, s) = &sets[i];
            let gain = s.intersection(&uncovered).count();
            if gain == 0 {
                continue;
            }
            let ratio = w / gain as f64;
            if best.map(|(_, br)| ratio < br).unwrap_or(true) {
                best = Some((i, ratio));
            }
        }
        match best {
            Some((i, _)) => {
                for e in &sets[i].1 {
                    uncovered.remove(e);
                }
                available.retain(|&j| j != i);
                chosen.push(i);
            }
            None => break, // nothing can cover the rest
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_catalog::AccuracyLevel;
    use eva_common::{Schema, UdfId};
    use eva_expr::Expr;

    fn udf(name: &str, cost: f64) -> UdfDef {
        UdfDef {
            id: UdfId(0),
            name: name.into(),
            input: Schema::empty(),
            output: Schema::empty(),
            impl_id: format!("sim/{name}"),
            logical_type: Some("objectdetector".into()),
            accuracy: AccuracyLevel::Medium,
            cost_ms: Some(cost),
            gpu: true,
        }
    }

    fn pred(lo: f64, hi: f64) -> Dnf {
        eva_symbolic::to_dnf(&Expr::col("id").ge(lo).and(Expr::col("id").lt(hi))).unwrap()
    }

    fn candidate(name: &str, cost: f64, view: Option<(u64, Dnf)>) -> PhysicalCandidate {
        match view {
            Some((keys, p)) => PhysicalCandidate {
                udf: udf(name, cost),
                view: Some(ViewId(1)),
                view_keys: keys,
                agg_pred: p,
            },
            None => PhysicalCandidate {
                udf: udf(name, cost),
                view: None,
                view_keys: 0,
                agg_pred: Dnf::false_(),
            },
        }
    }

    fn stats() -> StatsCatalog {
        let mut s = StatsCatalog::new();
        s.insert(
            "id",
            eva_symbolic::ColumnStats::Numeric {
                min: 0.0,
                max: 10_000.0,
                buckets: vec![0.1; 10],
            },
        );
        s
    }

    #[test]
    fn no_views_falls_back_to_cheapest() {
        let eligible = vec![
            candidate("rcnn50", 99.0, None),
            candidate("yolo", 9.0, None),
        ];
        let choices = optimal_physical_udfs(&eligible, &pred(0.0, 1000.0), 1000.0, &stats(), 0.15);
        assert_eq!(choices.len(), 1);
        assert!(matches!(&choices[0], Choice::Evaluate { udf } if udf.name == "yolo"));
    }

    #[test]
    fn covering_view_beats_cheap_model() {
        // rcnn50's view covers the whole query range; reading it costs
        // 0.15ms/row vs 9ms/row for yolo ⇒ read the view.
        let eligible = vec![
            candidate("rcnn50", 99.0, Some((1000, pred(0.0, 1000.0)))),
            candidate("yolo", 9.0, None),
        ];
        let q = pred(0.0, 1000.0);
        let choices = optimal_physical_udfs(&eligible, &q, 1000.0, &stats(), 0.15);
        assert_eq!(choices.len(), 2);
        assert!(matches!(&choices[0], Choice::ReadView { udf, .. } if udf.name == "rcnn50"));
        assert!(matches!(&choices[1], Choice::Evaluate { udf } if udf.name == "yolo"));
    }

    #[test]
    fn expensive_view_with_tiny_overlap_is_skipped() {
        // View covers only a sliver of the query but reading it costs as
        // much as a full scan of its many keys ⇒ cost per uncovered tuple
        // exceeds the cheap model.
        let eligible = vec![
            candidate("rcnn50", 99.0, Some((1_000_000, pred(0.0, 10.0)))),
            candidate("yolo", 9.0, None),
        ];
        let q = pred(0.0, 10_000.0);
        let choices = optimal_physical_udfs(&eligible, &q, 10_000.0, &stats(), 0.15);
        assert_eq!(choices.len(), 1);
        assert!(matches!(&choices[0], Choice::Evaluate { udf } if udf.name == "yolo"));
    }

    #[test]
    fn multiple_views_cover_disjoint_ranges() {
        // Two views covering the two halves; both get picked (the paper's
        // "EVA reuses results from multiple views" behaviour of Fig. 10).
        let eligible = vec![
            candidate("rcnn50", 99.0, Some((500, pred(0.0, 5000.0)))),
            candidate("rcnn101", 120.0, Some((500, pred(5000.0, 10_000.0)))),
            candidate("yolo", 9.0, None),
        ];
        let q = pred(0.0, 10_000.0);
        let choices = optimal_physical_udfs(&eligible, &q, 10_000.0, &stats(), 0.15);
        let views: Vec<&str> = choices
            .iter()
            .filter_map(|c| match c {
                Choice::ReadView { udf, .. } => Some(udf.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(views.len(), 2);
        assert!(views.contains(&"rcnn50") && views.contains(&"rcnn101"));
        assert!(matches!(choices.last(), Some(Choice::Evaluate { udf }) if udf.name == "yolo"));
    }

    #[test]
    fn greedy_cover_matches_brute_force_on_small_instances() {
        // Greedy is a ln(n)-approximation; on these instances it is optimal.
        let sets: Vec<(f64, BTreeSet<usize>)> = vec![
            (1.0, [0, 1].into_iter().collect()),
            (1.0, [2, 3].into_iter().collect()),
            (2.5, [0, 1, 2, 3].into_iter().collect()),
        ];
        let chosen = greedy_weighted_set_cover(4, &sets);
        let weight: f64 = chosen.iter().map(|&i| sets[i].0).sum();
        assert!((weight - 2.0).abs() < 1e-9, "chosen {chosen:?}");
    }

    #[test]
    fn greedy_known_suboptimal_case_still_covers() {
        // Classic greedy trap: a large cheap set vs two medium ones.
        let sets: Vec<(f64, BTreeSet<usize>)> = vec![
            (1.0, [0, 1, 2].into_iter().collect()),
            (1.0, [3, 4, 5].into_iter().collect()),
            (1.1, [0, 1, 2, 3].into_iter().collect()),
        ];
        let chosen = greedy_weighted_set_cover(6, &sets);
        let covered: BTreeSet<usize> = chosen
            .iter()
            .flat_map(|&i| sets[i].1.iter().cloned())
            .collect();
        assert_eq!(covered.len(), 6, "must cover the universe");
    }

    #[test]
    fn uncoverable_elements_terminate() {
        let sets: Vec<(f64, BTreeSet<usize>)> = vec![(1.0, [0].into_iter().collect())];
        let chosen = greedy_weighted_set_cover(3, &sets);
        assert_eq!(chosen, vec![0]);
    }
}
