//! The binder: EVA-QL AST → logical plan.

use std::sync::Arc;

use eva_catalog::{AccuracyLevel, Catalog};
use eva_common::{EvaError, Result, Schema};
use eva_expr::{collect_udf_calls, util::substitute_udf, AggFunc, Expr, UdfCall};
use eva_parser::{SelectItem, SelectStmt};
use eva_symbolic::udf_dim;

use crate::plan::LogicalPlan;

/// Binds parsed statements against the catalog.
#[derive(Debug, Clone, Copy)]
pub struct Binder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Binder<'a> {
    /// New binder over a catalog.
    pub fn new(catalog: &'a Catalog) -> Binder<'a> {
        Binder { catalog }
    }

    /// Bind a SELECT statement to a logical plan.
    pub fn bind_select(&self, stmt: &SelectStmt) -> Result<LogicalPlan> {
        let table = self.catalog.table(&stmt.from)?;
        let mut plan = LogicalPlan::Scan {
            table: table.name.clone(),
            dataset: table.dataset.clone(),
            n_rows: table.n_rows,
            schema: Arc::new(table.schema.clone()),
        };

        // CROSS APPLY chain.
        for clause in &stmt.applies {
            plan = self.bind_apply(plan, &clause.udf, true)?;
        }

        // WHERE: validate column references against the post-apply schema.
        if let Some(w) = &stmt.where_clause {
            self.validate_columns(w, &plan.schema())?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: w.clone(),
            };
        }

        // Extract scalar UDF calls from the projection into applies above
        // the filter (they run only on surviving rows).
        let mut items: Vec<(Expr, Option<String>)> = Vec::new();
        let mut wildcard = false;
        for item in &stmt.projection {
            match item {
                SelectItem::Wildcard => wildcard = true,
                SelectItem::Expr { expr, alias } => items.push((expr.clone(), alias.clone())),
            }
        }
        let mut extracted: Vec<UdfCall> = Vec::new();
        for (expr, _) in &items {
            for call in collect_udf_calls(expr) {
                if !extracted.iter().any(|c| udf_dim(c) == udf_dim(&call)) {
                    extracted.push(call);
                }
            }
        }
        for call in &extracted {
            plan = self.bind_apply(plan, call, false)?;
            let out_col = self.output_column(call)?;
            for (expr, _) in items.iter_mut() {
                *expr = substitute_udf(expr.clone(), call, &Expr::col(out_col.clone()));
            }
        }

        // Aggregation vs plain projection.
        let has_aggs = items.iter().any(|(e, _)| matches!(e, Expr::Agg { .. }));
        if has_aggs || !stmt.group_by.is_empty() {
            plan = self.bind_aggregate(plan, &stmt.group_by, &items)?;
        } else {
            plan = self.bind_project(plan, wildcard, &items)?;
        }

        if !stmt.order_by.is_empty() {
            let schema = plan.schema();
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for (col, ord) in &stmt.order_by {
                if schema.index_of(col).is_none() {
                    return Err(EvaError::Binder(format!(
                        "ORDER BY column '{col}' is not in the output"
                    )));
                }
                keys.push((col.clone(), *ord == eva_parser::SortOrder::Desc));
            }
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    /// Bind one table-valued UDF application, resolving logical names.
    fn bind_apply(
        &self,
        input: LogicalPlan,
        call: &UdfCall,
        from_cross_apply: bool,
    ) -> Result<LogicalPlan> {
        // Args must reference existing columns.
        for a in &call.args {
            self.validate_columns(a, &input.schema())?;
        }
        let (output, logical) = if self.catalog.has_udf(&call.name) {
            (self.catalog.udf(&call.name)?.output, false)
        } else {
            // A logical vision task: all physical UDFs of the type share an
            // output schema; use the least accurate as the representative.
            let phys = self.catalog.physical_udfs(&call.name, AccuracyLevel::Low);
            match phys.first() {
                Some(d) => (d.output.clone(), true),
                None => {
                    return Err(EvaError::Binder(format!(
                        "unknown UDF or logical type '{}'",
                        call.name
                    )))
                }
            }
        };
        let schema = Arc::new(input.schema().join(&output));
        Ok(LogicalPlan::Apply {
            input: Box::new(input),
            call: call.clone(),
            logical,
            from_cross_apply,
            schema,
        })
    }

    /// The single output column name of a scalar (box-level) UDF.
    fn output_column(&self, call: &UdfCall) -> Result<String> {
        let def = self.catalog.udf(&call.name)?;
        if def.output.len() != 1 {
            return Err(EvaError::Binder(format!(
                "UDF '{}' used as a scalar must have exactly one output column",
                call.name
            )));
        }
        Ok(def.output.fields()[0].name.clone())
    }

    fn bind_project(
        &self,
        input: LogicalPlan,
        wildcard: bool,
        items: &[(Expr, Option<String>)],
    ) -> Result<LogicalPlan> {
        let in_schema = input.schema();
        let mut out_items: Vec<(Expr, String)> = Vec::new();
        if wildcard {
            for f in in_schema.fields() {
                out_items.push((Expr::col(f.name.clone()), f.name.clone()));
            }
        }
        for (i, (expr, alias)) in items.iter().enumerate() {
            self.validate_columns(expr, &in_schema)?;
            let name = alias.clone().unwrap_or_else(|| match expr {
                Expr::Column(c) => c.clone(),
                _ => format!("col{i}"),
            });
            out_items.push((expr.clone(), name));
        }
        if out_items.is_empty() {
            return Err(EvaError::Binder("empty projection".into()));
        }
        let schema = project_schema(&in_schema, &out_items)?;
        Ok(LogicalPlan::Project {
            input: Box::new(input),
            items: out_items,
            schema: Arc::new(schema),
        })
    }

    fn bind_aggregate(
        &self,
        input: LogicalPlan,
        group_by: &[String],
        items: &[(Expr, Option<String>)],
    ) -> Result<LogicalPlan> {
        let in_schema = input.schema();
        for g in group_by {
            if in_schema.index_of(g).is_none() {
                return Err(EvaError::Binder(format!("unknown GROUP BY column '{g}'")));
            }
        }
        let mut aggs: Vec<(AggFunc, Option<Expr>, String)> = Vec::new();
        for (i, (expr, alias)) in items.iter().enumerate() {
            match expr {
                Expr::Agg { func, arg } => {
                    if let Some(a) = arg {
                        self.validate_columns(a, &in_schema)?;
                    }
                    let name = alias
                        .clone()
                        .unwrap_or_else(|| format!("{}_{i}", func.to_string().to_lowercase()));
                    aggs.push((*func, arg.as_deref().cloned(), name));
                }
                Expr::Column(c) if group_by.contains(c) => {
                    // Group columns pass through implicitly.
                }
                other => {
                    return Err(EvaError::Binder(format!(
                        "projection item '{other}' must be an aggregate or a GROUP BY column"
                    )))
                }
            }
        }
        // Schema: group columns then aggregates.
        let mut fields = Vec::new();
        for g in group_by {
            fields.push(in_schema.field(g).expect("validated above").clone());
        }
        for (func, _, name) in &aggs {
            let dtype = match func {
                AggFunc::Count => eva_common::DataType::Int,
                _ => eva_common::DataType::Float,
            };
            fields.push(eva_common::Field::new(name.clone(), dtype));
        }
        let schema = Schema::new(fields).map_err(|e| EvaError::Binder(e.to_string()))?;
        Ok(LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by: group_by.to_vec(),
            aggs,
            schema: Arc::new(schema),
        })
    }

    /// Ensure every column reference resolves in `schema`.
    fn validate_columns(&self, e: &Expr, schema: &Schema) -> Result<()> {
        let mut missing: Option<String> = None;
        e.visit(&mut |node| {
            if let Expr::Column(c) = node {
                if schema.index_of(c).is_none() && missing.is_none() {
                    missing = Some(c.clone());
                }
            }
        });
        match missing {
            Some(c) => Err(EvaError::Binder(format!(
                "unknown column '{c}' (schema: {schema})"
            ))),
            None => Ok(()),
        }
    }
}

fn project_schema(input: &Schema, items: &[(Expr, String)]) -> Result<Schema> {
    let mut fields = Vec::with_capacity(items.len());
    for (expr, name) in items {
        let dtype = match expr {
            Expr::Column(c) => input
                .field(c)
                .map(|f| f.dtype)
                .unwrap_or(eva_common::DataType::Str),
            Expr::Literal(eva_common::Value::Int(_)) => eva_common::DataType::Int,
            Expr::Literal(eva_common::Value::Float(_)) => eva_common::DataType::Float,
            Expr::Literal(eva_common::Value::Str(_)) => eva_common::DataType::Str,
            Expr::Cmp { .. } | Expr::And(..) | Expr::Or(..) | Expr::Not(_) => {
                eva_common::DataType::Bool
            }
            _ => eva_common::DataType::Str,
        };
        fields.push(eva_common::Field::new(name.clone(), dtype));
    }
    Schema::new(fields).map_err(|e| EvaError::Binder(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_catalog::TableDef;
    use eva_common::{DataType, Field, UdfId};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        cat.create_table(TableDef {
            name: "video".into(),
            schema: Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("timestamp", DataType::Int),
                Field::new("frame", DataType::Frame),
            ])
            .unwrap(),
            n_rows: 1000,
            dataset: "ds".into(),
        })
        .unwrap();
        let det_out = Schema::new(vec![
            Field::new("label", DataType::Str),
            Field::new("bbox", DataType::BBox),
            Field::new("score", DataType::Float),
        ])
        .unwrap();
        for (name, acc) in [
            ("yolo_tiny", AccuracyLevel::Low),
            ("fasterrcnn_resnet50", AccuracyLevel::Medium),
        ] {
            cat.create_udf(
                eva_catalog::UdfDef {
                    id: UdfId(0),
                    name: name.into(),
                    input: Schema::new(vec![Field::new("frame", DataType::Frame)]).unwrap(),
                    output: det_out.clone(),
                    impl_id: format!("sim/{name}"),
                    logical_type: Some("objectdetector".into()),
                    accuracy: acc,
                    cost_ms: Some(9.0),
                    gpu: true,
                },
                false,
            )
            .unwrap();
        }
        cat.create_udf(
            eva_catalog::UdfDef {
                id: UdfId(0),
                name: "cartype".into(),
                input: Schema::new(vec![
                    Field::new("frame", DataType::Frame),
                    Field::new("bbox", DataType::BBox),
                ])
                .unwrap(),
                output: Schema::new(vec![Field::new("cartype", DataType::Str)]).unwrap(),
                impl_id: "sim/cartype".into(),
                logical_type: None,
                accuracy: AccuracyLevel::High,
                cost_ms: Some(6.0),
                gpu: true,
            },
            false,
        )
        .unwrap();
        cat
    }

    fn bind(cat: &Catalog, sql: &str) -> Result<LogicalPlan> {
        match eva_parser::parse(sql)? {
            eva_parser::Statement::Select(s) => Binder::new(cat).bind_select(&s),
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn binds_cross_apply_and_filter() {
        let cat = setup();
        let plan = bind(
            &cat,
            "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE id < 100 AND label = 'car'",
        )
        .unwrap();
        let text = plan.explain();
        assert!(text.contains("Apply FASTERRCNN_RESNET50(frame)"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Project id AS id, bbox AS bbox"));
        // Detector output columns are visible post-apply.
        assert!(plan.schema().index_of("bbox").is_some());
    }

    #[test]
    fn logical_type_resolution() {
        let cat = setup();
        let plan = bind(
            &cat,
            "SELECT id FROM video CROSS APPLY objectdetector(frame) ACCURACY 'LOW' WHERE label='car'",
        )
        .unwrap();
        assert!(plan.explain().contains("LogicalApply"));
    }

    #[test]
    fn projection_udf_extracted_above_filter() {
        let cat = setup();
        let plan = bind(
            &cat,
            "SELECT id, cartype(frame, bbox) FROM video CROSS APPLY \
             fasterrcnn_resnet50(frame) WHERE label = 'car'",
        )
        .unwrap();
        let text = plan.explain();
        // The cartype apply sits above the filter.
        let apply_pos = text.find("Apply CARTYPE").unwrap();
        let filter_pos = text.find("Filter").unwrap();
        assert!(apply_pos < filter_pos, "{text}");
        // Projection references the output column.
        assert!(text.contains("cartype AS"));
    }

    #[test]
    fn group_by_binds_aggregate() {
        let cat = setup();
        let plan = bind(
            &cat,
            "SELECT timestamp, COUNT(*) FROM video CROSS APPLY \
             fasterrcnn_resnet50(frame) WHERE label = 'car' GROUP BY timestamp",
        )
        .unwrap();
        assert!(plan.explain().contains("Aggregate group_by=[timestamp]"));
        assert_eq!(plan.schema().fields()[0].name, "timestamp");
    }

    #[test]
    fn binder_errors() {
        let cat = setup();
        // Unknown table.
        assert!(bind(&cat, "SELECT * FROM nope").is_err());
        // Unknown column in WHERE.
        assert!(bind(&cat, "SELECT id FROM video WHERE wrong = 1").is_err());
        // Detector columns unavailable without apply.
        assert!(bind(&cat, "SELECT id FROM video WHERE label = 'car'").is_err());
        // Unknown UDF.
        assert!(bind(
            &cat,
            "SELECT id FROM video CROSS APPLY nothere(frame) WHERE id<1"
        )
        .is_err());
        // Non-aggregate projection with GROUP BY.
        assert!(bind(
            &cat,
            "SELECT id, COUNT(*) FROM video CROSS APPLY fasterrcnn_resnet50(frame) GROUP BY timestamp"
        )
        .is_err());
        // ORDER BY a non-output column.
        assert!(bind(&cat, "SELECT id FROM video ORDER BY timestamp").is_err());
    }

    #[test]
    fn wildcard_projects_everything() {
        let cat = setup();
        let plan = bind(&cat, "SELECT * FROM video").unwrap();
        assert_eq!(plan.schema().len(), 3);
    }

    #[test]
    fn sort_and_limit() {
        let cat = setup();
        let plan = bind(&cat, "SELECT id FROM video ORDER BY id DESC LIMIT 3").unwrap();
        let text = plan.explain();
        assert!(text.contains("Limit 3"));
        assert!(text.contains("Sort id DESC"));
    }
}
