//! Canonical transformation rules: constant folding, conjunct
//! classification (predicate pushdown), and scan-range extraction.
//!
//! These are the "canonical optimization algorithms" the paper applies
//! before the semantic-reuse pass (§3.1): a WHERE clause is split into
//! conjuncts, UDF-free conjuncts are pushed as close to the scan as their
//! column references allow, and frame-id bounds are folded into the scan
//! range (using the symbolic engine's interval algebra rather than ad-hoc
//! bound juggling).

use eva_common::Schema;
use eva_expr::{collect_udf_calls, conjuncts, Expr};
use eva_symbolic::{to_dnf, Conjunct, Constraint};

/// Classification of a WHERE clause's conjuncts relative to the plan shape
/// `Scan → Detector-APPLY* → σ`.
#[derive(Debug, Clone, Default)]
pub struct ClassifiedPredicates {
    /// UDF-free conjuncts referencing only scan columns — pushed below the
    /// detector applies (and into the scan range where possible).
    pub scan: Vec<Expr>,
    /// UDF-free conjuncts referencing detector outputs — evaluated right
    /// after the detector.
    pub post_detector: Vec<Expr>,
    /// Single-UDF comparison atoms (`CarType(frame,bbox) = 'Nissan'`) — the
    /// reorderable UDF-based predicates of §4.2.
    pub udf_atoms: Vec<Expr>,
    /// Anything else containing UDF calls (disjunctions across UDFs etc.) —
    /// evaluated last, after every referenced UDF has been applied.
    pub complex: Vec<Expr>,
}

/// Split and classify a predicate. `scan_schema` is the base table schema.
pub fn classify_predicates(predicate: &Expr, scan_schema: &Schema) -> ClassifiedPredicates {
    let folded = eva_expr::util::fold_constants(predicate.clone());
    let mut out = ClassifiedPredicates::default();
    for c in conjuncts(&folded) {
        let udfs = collect_udf_calls(&c);
        if udfs.is_empty() {
            let cols = eva_expr::referenced_columns(&c);
            if cols.iter().all(|col| scan_schema.index_of(col).is_some()) {
                out.scan.push(c);
            } else {
                out.post_detector.push(c);
            }
        } else if udfs.len() == 1 && is_udf_atom(&c) {
            out.udf_atoms.push(c);
        } else {
            out.complex.push(c);
        }
    }
    out
}

/// Is this conjunct a single comparison `UDF(args) op literal` (possibly
/// flipped)? These are the predicates the ranking function reorders.
pub fn is_udf_atom(e: &Expr) -> bool {
    match e {
        Expr::Cmp { lhs, rhs, .. } => matches!(
            (&**lhs, &**rhs),
            (Expr::Udf(_), Expr::Literal(_)) | (Expr::Literal(_), Expr::Udf(_))
        ),
        _ => false,
    }
}

/// Derive a frame-id scan range `[from, to)` from scan-level conjuncts by
/// converting them to DNF and bounding the `id` dimension. Conservative:
/// failures fall back to the full range; the residual filter keeps
/// exactness either way.
pub fn extract_scan_range(scan_preds: &[Expr], n_rows: u64) -> (u64, u64) {
    let full = (0u64, n_rows);
    if scan_preds.is_empty() {
        return full;
    }
    let combined = eva_expr::conjoin(scan_preds.to_vec());
    let dnf = match to_dnf(&combined) {
        Ok(d) => d.reduced(),
        Err(_) => return full,
    };
    if dnf.is_false() {
        return (0, 0);
    }
    if dnf.is_true() {
        return full;
    }
    // Bound `id` across all conjuncts: the scan must cover the union, so
    // take the global min/max of the id constraint.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut hi_open = true;
    for c in dnf.conjuncts() {
        match id_bounds(c) {
            Some((l, h, h_open)) => {
                lo = lo.min(l);
                if h > hi {
                    hi = h;
                    hi_open = h_open;
                } else if h == hi {
                    hi_open = hi_open && h_open;
                }
            }
            // A conjunct without an id constraint admits every frame.
            None => return full,
        }
    }
    if !lo.is_finite() && !hi.is_finite() {
        return full;
    }
    let from = if lo.is_finite() {
        lo.floor().max(0.0) as u64
    } else {
        0
    };
    let to = if hi.is_finite() {
        // Frame ids are integers: `id < 10000` (open) excludes 10000 itself;
        // `id ≤ 99` (closed) includes 99, so scan through 100.
        let bound = if hi_open && hi.fract() == 0.0 {
            hi as u64
        } else {
            (hi.floor() as u64).saturating_add(1)
        };
        bound.min(n_rows)
    } else {
        n_rows
    };
    (from.min(n_rows), to.max(from))
}

fn id_bounds(c: &Conjunct) -> Option<(f64, f64, bool)> {
    match c.constraint("id") {
        Some(Constraint::Num(set)) if !set.is_full() => {
            let lo = set.intervals().first().map(|i| i.lo)?;
            let last = set.intervals().last()?;
            Some((lo, last.hi, last.hi_open))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::{DataType, Field};
    use eva_expr::{CmpOp, UdfCall};

    fn scan_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("timestamp", DataType::Int),
            Field::new("frame", DataType::Frame),
        ])
        .unwrap()
    }

    fn cartype_atom() -> Expr {
        Expr::cmp(
            Expr::Udf(UdfCall::new(
                "cartype",
                vec![Expr::col("frame"), Expr::col("bbox")],
            )),
            CmpOp::Eq,
            Expr::lit("Nissan"),
        )
    }

    #[test]
    fn classification_buckets() {
        let pred = Expr::col("id")
            .lt(10_000)
            .and(Expr::col("label").eq_val("car"))
            .and(cartype_atom())
            .and(Expr::col("timestamp").gt(0));
        let c = classify_predicates(&pred, &scan_schema());
        assert_eq!(c.scan.len(), 2); // id, timestamp
        assert_eq!(c.post_detector.len(), 1); // label
        assert_eq!(c.udf_atoms.len(), 1);
        assert!(c.complex.is_empty());
    }

    #[test]
    fn disjunction_over_udfs_is_complex() {
        let pred = cartype_atom().or(Expr::col("label").eq_val("bus"));
        let c = classify_predicates(&pred, &scan_schema());
        assert_eq!(c.complex.len(), 1);
        assert!(c.udf_atoms.is_empty());
    }

    #[test]
    fn constant_folding_applies_first() {
        let pred = Expr::true_().and(Expr::col("id").lt(5));
        let c = classify_predicates(&pred, &scan_schema());
        assert_eq!(c.scan.len(), 1);
        assert_eq!(c.scan[0].to_string(), "id < 5");
    }

    #[test]
    fn udf_atom_detection() {
        assert!(is_udf_atom(&cartype_atom()));
        // Flipped literal side.
        let flipped = Expr::cmp(
            Expr::lit("Nissan"),
            CmpOp::Eq,
            Expr::Udf(UdfCall::new("cartype", vec![Expr::col("frame")])),
        );
        assert!(is_udf_atom(&flipped));
        assert!(!is_udf_atom(&Expr::col("id").lt(5)));
        assert!(!is_udf_atom(&cartype_atom().and(Expr::true_())));
    }

    #[test]
    fn scan_range_simple_upper_bound() {
        let preds = vec![Expr::col("id").lt(10_000)];
        assert_eq!(extract_scan_range(&preds, 14_000), (0, 10_000));
    }

    #[test]
    fn scan_range_window() {
        let preds = vec![Expr::col("id").ge(2_000), Expr::col("id").lt(5_000)];
        assert_eq!(extract_scan_range(&preds, 14_000), (2_000, 5_000));
    }

    #[test]
    fn scan_range_union_covers_both() {
        let preds = vec![Expr::col("id").lt(100).or(Expr::col("id").gt(900))];
        let (lo, hi) = extract_scan_range(&preds, 1_000);
        assert_eq!((lo, hi), (0, 1_000));
    }

    #[test]
    fn scan_range_without_id_is_full() {
        let preds = vec![Expr::col("timestamp").gt(5)];
        assert_eq!(extract_scan_range(&preds, 500), (0, 500));
        assert_eq!(extract_scan_range(&[], 500), (0, 500));
    }

    #[test]
    fn contradictory_range_is_empty() {
        let preds = vec![Expr::col("id").lt(10), Expr::col("id").gt(20)];
        assert_eq!(extract_scan_range(&preds, 500), (0, 0));
    }

    #[test]
    fn inclusive_bounds_rounded_outward() {
        let preds = vec![Expr::col("id").le(99)];
        let (lo, hi) = extract_scan_range(&preds, 500);
        assert_eq!(lo, 0);
        assert!(hi >= 100, "id ≤ 99 must include frame 99, got hi={hi}");
    }
}
