//! A tiny deterministic RNG for workload generation.
//!
//! SplitMix64: 64 bits of state, one multiply-xorshift avalanche per draw.
//! The fuzzer's bit-reproducibility guarantee (same seed ⇒ byte-identical
//! case log) rests on this being fully specified here — no `rand` crate,
//! no platform entropy, no thread-local state.

/// SplitMix64 (Steele, Lea & Flood, OOPSLA'14 — the `java.util.SplittableRandom`
/// mixer). Passes BigCrush; more than enough for workload sampling.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Equal seeds produce equal streams forever.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n = 0` yields 0. The modulo bias is
    /// irrelevant at workload-sampling scale.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `permille / 1000`.
    pub fn chance(&mut self, permille: u64) -> bool {
        self.below(1000) < permille
    }

    /// Uniformly pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        debug_assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// An independent generator split off this one's stream.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_vector() {
        // First outputs for seed 0 from the reference SplitMix64.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..100 {
            let v = r.range(3, 9);
            assert!((3..=9).contains(&v));
            assert!(r.below(5) < 5);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn pick_and_fork() {
        let mut r = SplitMix64::new(9);
        let pool = [10, 20, 30];
        for _ in 0..10 {
            assert!(pool.contains(r.pick(&pool)));
        }
        let mut f1 = SplitMix64::new(9).fork();
        let mut f2 = SplitMix64::new(9).fork();
        assert_eq!(f1.next_u64(), f2.next_u64());
    }
}
