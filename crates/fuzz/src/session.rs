//! Deterministic replay of a [`FuzzCase`] under one *arm* configuration.
//!
//! Every oracle in [`crate::oracles`] is "replay the same session twice
//! under configurations that must be observably equivalent, then diff".
//! This module owns the replay half: a fresh [`EvaDb`] per arm, the case's
//! dataset loaded as `video`, and the statement list executed in order with
//! deterministic semantics for the statements that can fail by design
//! (faulted saves) or that only make sense conditionally (loads).
//!
//! Replay rules that keep the two arms of an oracle symmetric:
//!
//! * Failpoints are disarmed right after session construction — CI exports
//!   `EVA_FAILPOINTS=all` for the chaos suite, and an env-armed registry
//!   would desynchronize the arms' fault schedules.
//! * `Save` may fail (a generated fault plan can be armed); the error is
//!   swallowed and the session only counts a *successful* save. Both arms
//!   replay the same statements against the same deterministic fault
//!   schedule, so they agree on which saves succeeded.
//! * `Load` replays only after a successful save. This keeps every
//!   statement *subset* replayable, which the shrinker depends on.
//! * A SELECT error is a hard replay error — the oracles treat "fails to
//!   execute" as its own failure kind, distinct from "wrong answer".

use std::collections::BTreeMap;

use eva_common::{CostBreakdown, MetricsSnapshot, OpId, OpStats, Row};
use eva_core::{EvaDb, SessionConfig, WorkerPool};
use eva_exec::{ExecConfig, QueryOutput};
use eva_harness::{test_dataset, TempDir};
use eva_parser::{parse, SelectStmt, Statement};
use eva_planner::ReuseStrategy;

use crate::gen::{FuzzCase, FuzzStmt, Sabotage};

/// What one SELECT produced, in the representation the oracles compare.
#[derive(Debug, Clone)]
pub struct SelectObs {
    /// Result rows, in emission order.
    pub rows: Vec<Row>,
    /// Per-query simulated-cost delta.
    pub breakdown: CostBreakdown,
    /// Per-query session-metrics delta.
    pub metrics: MetricsSnapshot,
    /// Per-operator stats keyed by plan node id.
    pub op_stats: BTreeMap<OpId, OpStats>,
}

impl SelectObs {
    pub(crate) fn from_output(out: QueryOutput) -> SelectObs {
        SelectObs {
            breakdown: out.breakdown,
            metrics: out.metrics,
            op_stats: out.op_stats,
            rows: out.batch.into_rows(),
        }
    }

    /// The result rows as an order-insensitive multiset key. `Row` is
    /// `Vec<Value>` and `Value`'s `Debug` form is injective on the values a
    /// query can produce, so sorted debug strings compare multisets exactly.
    pub fn row_multiset(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.rows.iter().map(|r| format!("{r:?}")).collect();
        keys.sort();
        keys
    }
}

/// One arm of a differential pair: an exec configuration plus an optional
/// worker-pool width for `execute_select_with_pool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmCfg {
    /// Execution tunables for this arm.
    pub exec: ExecConfig,
    /// Worker-pool width (`None` ⇒ no pool, engine-internal threading only).
    pub width: Option<usize>,
    /// Per-query governance knobs. Default (ungoverned) for oracles 1–4;
    /// the governed-replay oracle sets the case's knobs here.
    pub governor: eva_common::GovernorConfig,
}

/// Everything an oracle needs from one full-session replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Per-SELECT observations, in statement order.
    pub selects: Vec<SelectObs>,
    /// Statement index of the first `Save`, if any.
    pub first_save_index: Option<usize>,
    /// Materialized-view count just *before* the first save ran — sizes the
    /// crash oracle's write-fault sweep (segments + manifest + manager).
    pub views_at_first_save: Option<usize>,
}

/// Parse one EVA-QL statement that must be a SELECT.
pub fn parse_select(sql: &str) -> Result<SelectStmt, String> {
    match parse(sql) {
        Ok(Statement::Select(s)) => Ok(s),
        Ok(other) => Err(format!("`{sql}` is not a SELECT: {other:?}")),
        Err(e) => Err(format!("`{sql}` does not parse: {e}")),
    }
}

/// A fresh EVA-strategy session for one arm: case dataset loaded, env-armed
/// failpoints cleared, sabotage flags applied.
pub fn fresh_db(case: &FuzzCase, arm: &ArmCfg) -> Result<EvaDb, String> {
    let mut cfg = SessionConfig::for_strategy(ReuseStrategy::Eva);
    cfg.exec = arm.exec;
    cfg.governor = arm.governor;
    let mut db = EvaDb::new(cfg).map_err(|e| format!("session construction: {e}"))?;
    db.load_video(test_dataset(case.dataset_seed, case.n_frames), "video")
        .map_err(|e| format!("dataset load: {e}"))?;
    db.storage().failpoints().disarm_all();
    if case.sabotage == Some(Sabotage::SkipPrune) {
        db.set_recovery_prune(false);
    }
    Ok(db)
}

/// Execute one SELECT on an open session, with this arm's pool.
pub fn exec_select(
    db: &mut EvaDb,
    sql: &str,
    pool: Option<&WorkerPool>,
) -> Result<SelectObs, String> {
    let stmt = parse_select(sql)?;
    db.execute_select_with_pool(&stmt, pool)
        .map(SelectObs::from_output)
        .map_err(|e| format!("`{sql}`: {e}"))
}

/// Replay the whole session under one arm. `tag` names the scratch
/// directory (it must differ between concurrently-live replays only by
/// what [`TempDir`] already guarantees; the tag is for debuggability).
pub fn replay(case: &FuzzCase, arm: &ArmCfg, tag: &str) -> Result<ReplayOutcome, String> {
    let mut db = fresh_db(case, arm)?;
    let pool = arm.width.map(WorkerPool::new);
    let scratch = TempDir::new(tag);
    let mut outcome = ReplayOutcome {
        selects: Vec::new(),
        first_save_index: None,
        views_at_first_save: None,
    };
    let mut saved = false;

    for (i, stmt) in case.stmts.iter().enumerate() {
        match stmt {
            FuzzStmt::Select(sql) => {
                let obs = exec_select(&mut db, sql, pool.as_ref())
                    .map_err(|e| format!("stmt {i}: {e}"))?;
                outcome.selects.push(obs);
            }
            FuzzStmt::ResetViews => db.reset_reuse_state(),
            FuzzStmt::Save => {
                if outcome.first_save_index.is_none() {
                    outcome.first_save_index = Some(i);
                    outcome.views_at_first_save = Some(db.storage().view_defs().len());
                }
                // Tolerated: a generated fault plan may be targeting this
                // save's writes. The fault schedule is deterministic, so
                // both arms of any pair agree on the outcome.
                if db.save_state(scratch.path()).is_ok() {
                    saved = true;
                }
            }
            FuzzStmt::Load => {
                if saved {
                    db.load_state(scratch.path())
                        .map_err(|e| format!("stmt {i} (Load): {e}"))?;
                }
            }
            FuzzStmt::Fault(spec) => {
                db.storage()
                    .failpoints()
                    .apply_spec(spec)
                    .map_err(|e| format!("stmt {i} (Fault `{spec}`): {e}"))?;
            }
            FuzzStmt::Disarm => db.storage().failpoints().disarm_all(),
        }
    }
    Ok(outcome)
}

/// Run one SELECT alone in a brand-new default-arm session (the "cold"
/// side of the warm-vs-cold oracle: no views, no carried-over faults).
pub fn run_single_select(case: &FuzzCase, sql: &str) -> Result<SelectObs, String> {
    let mut db = fresh_db(case, &ArmCfg::default())?;
    exec_select(&mut db, sql, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;

    fn tiny_case() -> FuzzCase {
        FuzzCase {
            seed: 0,
            dataset_seed: 7,
            n_frames: 16,
            sabotage: None,
            governor: eva_common::GovernorConfig::default(),
            admission_width: None,
            stmts: vec![
                FuzzStmt::Select("SELECT id FROM video WHERE id < 8 ORDER BY id".to_string()),
                FuzzStmt::Save,
                FuzzStmt::Load,
                FuzzStmt::Select("SELECT COUNT(*) FROM video".to_string()),
            ],
        }
    }

    #[test]
    fn replay_collects_per_select_observations() {
        let case = tiny_case();
        let out = replay(&case, &ArmCfg::default(), "fuzz_session_test").expect("replay");
        assert_eq!(out.selects.len(), 2);
        assert_eq!(out.selects[0].rows.len(), 8);
        assert_eq!(out.first_save_index, Some(1));
        assert_eq!(out.views_at_first_save, Some(0));
    }

    #[test]
    fn replay_is_deterministic_across_runs() {
        let case = generate_case(11);
        let a = replay(&case, &ArmCfg::default(), "fuzz_session_det_a").expect("replay a");
        let b = replay(&case, &ArmCfg::default(), "fuzz_session_det_b").expect("replay b");
        assert_eq!(a.selects.len(), b.selects.len());
        for (x, y) in a.selects.iter().zip(&b.selects) {
            assert_eq!(x.rows, y.rows);
            assert_eq!(x.breakdown, y.breakdown);
            assert_eq!(x.metrics, y.metrics);
            assert_eq!(x.op_stats, y.op_stats);
        }
    }

    #[test]
    fn row_multiset_ignores_order() {
        let a = SelectObs {
            rows: vec![
                vec![eva_common::Value::Int(1)],
                vec![eva_common::Value::Int(2)],
            ],
            breakdown: CostBreakdown::default(),
            metrics: MetricsSnapshot::default(),
            op_stats: BTreeMap::new(),
        };
        let b = SelectObs {
            rows: vec![
                vec![eva_common::Value::Int(2)],
                vec![eva_common::Value::Int(1)],
            ],
            ..a.clone()
        };
        assert_eq!(a.row_multiset(), b.row_multiset());
    }
}
