//! Seeded generation of EVA-QL fuzz *sessions*.
//!
//! A [`FuzzCase`] is a deterministic little analytics session over the
//! standard test dataset: SELECTs whose predicates mix UDF calls,
//! comparisons and AND/OR/NOT, interleaved with view drops, save/load
//! cycles and `EVA_FAILPOINTS`-style fault plans. The generator is
//! schema-aware — every emitted statement binds — and *determinism-aware*:
//! it only emits queries whose result set is a pure function of the
//! dataset, so the four oracles in [`crate::oracles`] can demand exact
//! equivalence without false positives. Concretely:
//!
//! * `LIMIT` only appears on apply-free queries ordered by the unique `id`
//!   column (a `LIMIT` under ties would truncate differently between a
//!   view-serving and a recomputing plan);
//! * aggregate arguments are integer columns or `COUNT`, so per-group folds
//!   are exact and order-independent;
//! * keyed UDF fault plans use `fails:2`, within the default retry budget,
//!   so injected flakiness never turns into a query error.

use serde::{Deserialize, Serialize};

use eva_common::{GovernorConfig, Value};
use eva_expr::{AggFunc, CmpOp, Expr, UdfCall};
use eva_parser::{ApplyClause, SelectItem, SelectStmt, SortOrder};

use crate::rng::SplitMix64;

/// One statement of a fuzz session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FuzzStmt {
    /// An EVA-QL SELECT (stored as text so corpus files are readable and
    /// self-contained; the replayer parses it).
    Select(String),
    /// Drop all reuse state (materialized views + statistics), like a
    /// fresh-session planner with a warm OS cache.
    ResetViews,
    /// `save_state` into the case's scratch directory. May fail by design
    /// when a write-site fault plan is armed; the replayer tolerates that.
    Save,
    /// `load_state` from the scratch directory (skipped until a save has
    /// succeeded, so arbitrary statement subsets stay replayable).
    Load,
    /// Arm failpoints from an `EVA_FAILPOINTS` spec string.
    Fault(String),
    /// Disarm every failpoint.
    Disarm,
}

/// Deliberate bug reintroductions used to prove the harness catches real
/// regressions end to end (generate → oracle → shrink → corpus file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sabotage {
    /// Skip `prune_dangling` after recovery — the wrong-answer bug the
    /// durable-store work fixed: a quarantined view segment stays claimed
    /// as coverage, so warm plans serve empty results.
    SkipPrune,
}

/// A generated session: dataset parameters plus a statement list. Fully
/// serializable, so a failing case (after shrinking) becomes a
/// self-contained corpus file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzCase {
    /// The case seed (provenance; regeneration uses it, replay does not).
    pub seed: u64,
    /// Seed of the deterministic test video dataset.
    pub dataset_seed: u64,
    /// Frame count of the dataset.
    pub n_frames: u64,
    /// Optional deliberate bug reintroduction, honored by the replayer.
    pub sabotage: Option<Sabotage>,
    /// Per-query governance knobs for the governed-replay oracle (oracles
    /// 1–4 always replay ungoverned). Tight knobs cancel or degrade
    /// mid-session; loose knobs must be invisible. Defaults keep older
    /// corpus files deserializable.
    #[serde(default)]
    pub governor: GovernorConfig,
    /// Admission width for the governed replay (`Some(1)` serializes every
    /// query through a one-slot [`eva_core::AdmissionController`]).
    #[serde(default)]
    pub admission_width: Option<usize>,
    /// The session's statements, replayed in order.
    pub stmts: Vec<FuzzStmt>,
}

impl FuzzCase {
    /// Number of SELECT statements (the oracles compare per-SELECT output).
    pub fn n_selects(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s, FuzzStmt::Select(_)))
            .count()
    }

    /// True when the governed-replay oracle has anything to exercise.
    pub fn is_governed(&self) -> bool {
        self.governor.is_governed() || self.admission_width.is_some()
    }
}

/// Physical object detectors of the UDF zoo (all emit `label, bbox, score`).
const DETECTORS: [&str; 3] = ["fasterrcnn_resnet50", "fasterrcnn_resnet101", "yolo_tiny"];
/// Box-attribute scalar UDFs: (call name, output column when projected).
const BOX_ATTRS: [(&str, &str); 3] = [
    ("cartype", "cartype"),
    ("colordet", "color"),
    ("license", "license"),
];
/// Labels the synthetic video generator emits (plus one never-matching).
const LABELS: [&str; 5] = ["car", "truck", "bus", "person", "zeppelin"];
const CAR_TYPES: [&str; 4] = ["Toyota", "Nissan", "Ford", "unknown"];
const COLORS: [&str; 4] = ["gray", "red", "white", "unknown"];
const SCORES: [f64; 4] = [0.25, 0.5, 0.75, 0.9];
const AREAS: [f64; 3] = [0.001, 0.01, 0.05];
/// Ordinal write-site failpoints (save-path IO).
const WRITE_SITES: [&str; 4] = ["torn_write", "rename_fail", "short_write", "bit_flip"];

fn col(name: &str) -> Expr {
    Expr::col(name)
}

fn box_attr_call(name: &str) -> Expr {
    Expr::Udf(UdfCall::new(name, vec![col("frame"), col("bbox")]))
}

fn int_cmp_op(rng: &mut SplitMix64) -> CmpOp {
    *rng.pick(&[
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ])
}

fn range_cmp_op(rng: &mut SplitMix64) -> CmpOp {
    *rng.pick(&[CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge])
}

/// One predicate atom. With a detector applied, atoms may reference the
/// detection columns and the box-attribute UDFs; without, only the base
/// frame columns (`id`, `timestamp`) are in scope.
fn gen_atom(rng: &mut SplitMix64, n_frames: u64, with_apply: bool) -> Expr {
    let n_choices = if with_apply { 8 } else { 2 };
    match rng.below(n_choices) {
        0 => Expr::cmp(
            col("id"),
            int_cmp_op(rng),
            Expr::lit(rng.below(n_frames + 1) as i64),
        ),
        1 => Expr::cmp(
            col("timestamp"),
            range_cmp_op(rng),
            // fps 25 ⇒ timestamps step by 40ms.
            Expr::lit((rng.below(n_frames + 1) * 40) as i64),
        ),
        2 => Expr::cmp(
            col("label"),
            *rng.pick(&[CmpOp::Eq, CmpOp::Ne]),
            Expr::lit(*rng.pick(&LABELS)),
        ),
        3 => Expr::cmp(
            col("score"),
            range_cmp_op(rng),
            Expr::Literal(Value::Float(*rng.pick(&SCORES))),
        ),
        4 => Expr::cmp(
            box_attr_call("cartype"),
            *rng.pick(&[CmpOp::Eq, CmpOp::Ne]),
            Expr::lit(*rng.pick(&CAR_TYPES)),
        ),
        5 => Expr::cmp(
            box_attr_call("colordet"),
            CmpOp::Eq,
            Expr::lit(*rng.pick(&COLORS)),
        ),
        6 => Expr::cmp(
            box_attr_call("area"),
            range_cmp_op(rng),
            Expr::Literal(Value::Float(*rng.pick(&AREAS))),
        ),
        _ => Expr::IsNull {
            expr: Box::new(col("label")),
            negated: true,
        },
    }
}

/// A predicate: 1–3 atoms joined by AND/OR, occasionally negated.
fn gen_predicate(rng: &mut SplitMix64, n_frames: u64, with_apply: bool) -> Expr {
    let n_atoms = rng.range(1, 3);
    let mut e = gen_atom(rng, n_frames, with_apply);
    for _ in 1..n_atoms {
        let rhs = gen_atom(rng, n_frames, with_apply);
        e = if rng.chance(650) {
            e.and(rhs)
        } else {
            e.or(rhs)
        };
    }
    if rng.chance(150) {
        e = e.not();
    }
    e
}

fn item(expr: Expr) -> SelectItem {
    SelectItem::Expr { expr, alias: None }
}

fn items_of(cols: &[&str]) -> Vec<SelectItem> {
    cols.iter().map(|c| item(col(c))).collect()
}

fn agg(func: AggFunc, arg: Option<&str>) -> SelectItem {
    item(Expr::Agg {
        func,
        arg: arg.map(|c| Box::new(col(c))),
    })
}

/// Generate one schema-valid, deterministic SELECT.
pub fn gen_select(rng: &mut SplitMix64, n_frames: u64, force_apply: bool) -> SelectStmt {
    let with_apply = force_apply || rng.chance(700);
    let applies = if with_apply {
        vec![ApplyClause {
            udf: UdfCall::new(*rng.pick(&DETECTORS), vec![col("frame")]),
        }]
    } else {
        Vec::new()
    };

    let where_clause = if rng.chance(850) {
        Some(gen_predicate(rng, n_frames, with_apply))
    } else {
        None
    };

    // Shape: 0 = plain projection, 1 = box-attr projection (apply only),
    // 2 = ungrouped aggregate, 3 = grouped aggregate (apply only).
    let shape = if with_apply {
        rng.below(10)
    } else if rng.below(10) < 7 {
        0 // plain projection
    } else {
        7 // ungrouped aggregate (no detector columns to group by)
    };
    let (projection, group_by) = match shape {
        0..=4 => {
            let p = if with_apply {
                match rng.below(4) {
                    0 => vec![SelectItem::Wildcard],
                    1 => items_of(&["id", "label", "score"]),
                    2 => items_of(&["id", "label", "bbox"]),
                    _ => items_of(&["id", "timestamp", "label"]),
                }
            } else if rng.chance(500) {
                vec![SelectItem::Wildcard]
            } else {
                items_of(&["id", "timestamp"])
            };
            (p, Vec::new())
        }
        5..=6 if with_apply => {
            let (udf, _) = *rng.pick(&BOX_ATTRS);
            (
                vec![
                    item(col("id")),
                    item(col("label")),
                    item(box_attr_call(udf)),
                ],
                Vec::new(),
            )
        }
        7..=8 => {
            let mut p = vec![agg(AggFunc::Count, None)];
            if rng.chance(600) {
                p.push(agg(AggFunc::Min, Some("id")));
                p.push(agg(AggFunc::Max, Some("id")));
            }
            if rng.chance(300) {
                p.push(agg(AggFunc::Avg, Some("timestamp")));
            }
            (p, Vec::new())
        }
        _ => {
            // Grouped by label (apply only): projection = group col + aggs.
            let mut p = vec![item(col("label")), agg(AggFunc::Count, None)];
            if rng.chance(400) {
                p.push(agg(AggFunc::Min, Some("id")));
            }
            (p, vec!["label".to_string()])
        }
    };

    // ORDER BY / LIMIT, respecting both the binder (sort key must be in the
    // output schema) and determinism (LIMIT needs a unique total order).
    let mut order_by: Vec<(String, SortOrder)> = Vec::new();
    let mut limit = None;
    let grouped = !group_by.is_empty();
    let aggregated = grouped || matches!(shape, 7..=8);
    if grouped {
        if rng.chance(500) {
            order_by.push(("label".to_string(), SortOrder::Asc));
        }
    } else if !aggregated {
        let has_id = projection.iter().any(|i| match i {
            SelectItem::Wildcard => true,
            SelectItem::Expr {
                expr: Expr::Column(c),
                ..
            } => c == "id",
            _ => false,
        });
        if has_id && rng.chance(500) {
            let dir = if rng.chance(500) {
                SortOrder::Asc
            } else {
                SortOrder::Desc
            };
            order_by.push(("id".to_string(), dir));
            // `id` is unique in the base table, so LIMIT under this order is
            // deterministic — but only without a detector apply (detections
            // share their frame's id).
            if !with_apply && rng.chance(500) {
                limit = Some(rng.range(1, n_frames));
            }
        }
    }

    SelectStmt {
        projection,
        from: "video".to_string(),
        applies,
        where_clause,
        group_by,
        order_by,
        limit,
    }
}

/// Tighten every integer literal in the WHERE clause (`k → k/2`) — the
/// mutated query's predicate region shrinks, steering the planner toward
/// the subsumption-reuse path against views from the original query.
pub fn tighten_select(stmt: &SelectStmt) -> SelectStmt {
    let mut s = stmt.clone();
    if let Some(w) = s.where_clause.take() {
        s.where_clause = Some(w.transform(&mut |e| match e {
            Expr::Literal(Value::Int(k)) if k > 1 => Expr::Literal(Value::Int(k / 2)),
            other => other,
        }));
    }
    s
}

/// Generate the session for one case seed.
pub fn generate_case(seed: u64) -> FuzzCase {
    let mut rng = SplitMix64::new(seed);
    let n_frames = rng.range(32, 96);
    let dataset_seed = rng.range(1, 1_000_000);
    let mut stmts = Vec::new();
    let mut past: Vec<SelectStmt> = Vec::new();
    let mut saved = false;

    let mut push_select = |rng: &mut SplitMix64,
                           past: &mut Vec<SelectStmt>,
                           stmts: &mut Vec<FuzzStmt>,
                           force_apply: bool| {
        let stmt = match rng.below(10) {
            // Exact repeat: the warm session must serve it from views.
            0..=2 if !past.is_empty() => rng.pick(&past[..]).clone(),
            // Tightened repeat: the subsumption-reuse path.
            3..=5 if !past.is_empty() => tighten_select(rng.pick(&past[..])),
            _ => gen_select(rng, n_frames, force_apply),
        };
        stmts.push(FuzzStmt::Select(stmt.to_string()));
        past.push(stmt);
    };

    // Open with a detector query so views exist for later statements.
    push_select(&mut rng, &mut past, &mut stmts, true);

    for _ in 0..rng.range(2, 6) {
        match rng.below(100) {
            0..=54 => push_select(&mut rng, &mut past, &mut stmts, false),
            55..=66 => {
                if rng.chance(400) {
                    // A save under an armed write-site fault, then disarm:
                    // the torn/corrupt store is what Load and the crash
                    // oracle must shrug off.
                    let site = *rng.pick(&WRITE_SITES);
                    let nth = rng.range(1, 4);
                    stmts.push(FuzzStmt::Fault(format!("{site}=nth:{nth}")));
                    stmts.push(FuzzStmt::Save);
                    stmts.push(FuzzStmt::Disarm);
                } else {
                    stmts.push(FuzzStmt::Save);
                }
                saved = true;
            }
            67..=76 => {
                if saved {
                    stmts.push(FuzzStmt::Load);
                } else {
                    stmts.push(FuzzStmt::ResetViews);
                }
            }
            77..=84 => stmts.push(FuzzStmt::ResetViews),
            _ => {
                // Keyed UDF flakiness; fails:2 stays within the default
                // retry budget so results are unchanged by contract.
                let fseed = rng.range(1, 10_000);
                stmts.push(FuzzStmt::Fault(format!(
                    "seed:{fseed};udf_transient=p:0.25:fails:2"
                )));
            }
        }
    }

    // Roughly half the sessions replay governed (oracle 5). Tight knobs
    // are sized to trip on the standard detector queries (a sim-ms
    // deadline a few frames deep; a byte budget a few result rows deep);
    // loose knobs must be observably invisible.
    let (governor, admission_width) = match rng.below(12) {
        0..=5 => (GovernorConfig::default(), None),
        6 => (
            GovernorConfig {
                deadline_ms: Some(40.0),
                ..GovernorConfig::default()
            },
            None,
        ),
        7 => (
            GovernorConfig {
                deadline_ms: Some(1e9),
                ..GovernorConfig::default()
            },
            None,
        ),
        8 => (
            GovernorConfig {
                budget_bytes: Some(256),
                ..GovernorConfig::default()
            },
            None,
        ),
        9 => (
            GovernorConfig {
                budget_bytes: Some(1 << 20),
                ..GovernorConfig::default()
            },
            None,
        ),
        10 => (GovernorConfig::default(), Some(1)),
        _ => (
            GovernorConfig {
                deadline_ms: Some(60.0),
                budget_bytes: Some(512),
                ..GovernorConfig::default()
            },
            Some(1),
        ),
    };

    FuzzCase {
        seed,
        dataset_seed,
        n_frames,
        sabotage: None,
        governor,
        admission_width,
        stmts,
    }
}

/// The deliberate-fault drill: a session that is wrong *only* because the
/// replayer (honoring [`Sabotage::SkipPrune`]) skips the recovery pass's
/// `prune_dangling`. The first view segment is bit-flipped during the save;
/// recovery quarantines it, but the un-pruned coverage claim makes the warm
/// plan serve empty detector results — which the warm-vs-cold oracle flags.
pub fn sabotage_case(seed: u64) -> FuzzCase {
    let query = "SELECT id, label FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                 WHERE id < 40 AND label = 'car'";
    FuzzCase {
        seed,
        dataset_seed: 777,
        n_frames: 48,
        sabotage: Some(Sabotage::SkipPrune),
        governor: GovernorConfig::default(),
        admission_width: None,
        stmts: vec![
            FuzzStmt::Select(query.to_string()),
            FuzzStmt::Fault("bit_flip=nth:1".to_string()),
            FuzzStmt::Save,
            FuzzStmt::Load,
            FuzzStmt::Select(query.to_string()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_parser::{parse, Statement};

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(generate_case(seed), generate_case(seed));
        }
        assert_ne!(generate_case(1).stmts, generate_case(2).stmts);
    }

    #[test]
    fn generated_selects_reparse() {
        for seed in 0..200u64 {
            let case = generate_case(seed);
            assert!(case.n_selects() >= 1, "seed {seed} has no SELECT");
            for stmt in &case.stmts {
                if let FuzzStmt::Select(sql) = stmt {
                    match parse(sql) {
                        Ok(Statement::Select(_)) => {}
                        other => panic!("seed {seed}: `{sql}` → {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn load_never_precedes_save() {
        for seed in 0..300u64 {
            let case = generate_case(seed);
            let mut saved = false;
            for stmt in &case.stmts {
                match stmt {
                    FuzzStmt::Save => saved = true,
                    FuzzStmt::Load => assert!(saved, "seed {seed}: Load before Save"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn tighten_halves_where_constants() {
        let mut rng = SplitMix64::new(5);
        let s = gen_select(&mut rng, 64, true);
        let t = tighten_select(&s);
        // Only the WHERE clause may differ.
        assert_eq!(s.projection, t.projection);
        assert_eq!(s.applies, t.applies);
        assert_eq!(s.limit, t.limit);
    }

    #[test]
    fn governance_knobs_are_emitted() {
        let mut governed = 0;
        let mut tight_deadline = 0;
        let mut budgeted = 0;
        let mut width_one = 0;
        for seed in 0..200u64 {
            let case = generate_case(seed);
            if case.is_governed() {
                governed += 1;
            }
            if case.governor.deadline_ms.is_some_and(|d| d < 1e6) {
                tight_deadline += 1;
            }
            if case.governor.budget_bytes.is_some() {
                budgeted += 1;
            }
            if case.admission_width == Some(1) {
                width_one += 1;
            }
        }
        assert!(governed > 40, "only {governed}/200 governed cases");
        assert!(tight_deadline > 0, "no tight-deadline cases");
        assert!(budgeted > 0, "no byte-budget cases");
        assert!(width_one > 0, "no admission-width-1 cases");
    }

    #[test]
    fn sabotage_case_is_small() {
        let c = sabotage_case(1);
        assert!(c.stmts.len() <= 5);
        assert_eq!(c.sabotage, Some(Sabotage::SkipPrune));
    }
}
