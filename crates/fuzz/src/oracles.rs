//! The four equivalence oracles.
//!
//! Each oracle replays the same [`FuzzCase`] under two configurations that
//! the system contracts to be observably equivalent, then diffs:
//!
//! 1. **Warm vs cold** — every SELECT of the warm session (views
//!    accumulating, save/load cycles, armed faults) must return the same
//!    row *multiset* as the same SELECT run alone in a fresh session.
//!    This is the paper's core correctness claim: reuse rewrites never
//!    change answers.
//! 2. **Parallel vs serial** — morsel-parallel execution at several
//!    (width × morsel) points must be bit-identical to serial: same rows
//!    in the same order, same simulated cost, same deterministic counters,
//!    same per-operator stats.
//! 3. **Columnar vs row** — the columnar hot path must match the
//!    `PivotRowsOp`-forced row-at-a-time path on rows and simulated cost
//!    (pivoting is charged to counters, never to the clock).
//! 4. **Crash recovery** — for sessions that save, crash the save at every
//!    write ordinal with a cycling fault site, then recover in a fresh
//!    session; the recovered session's remaining SELECTs must still answer
//!    correctly, and `load_state` must never error on a torn store.
//! 5. **Governed replay** — replay the session under the case's governance
//!    knobs (deadline, byte budget, admission width). Statements may be
//!    cancelled or degraded, but only with structured `Cancelled` errors;
//!    every SELECT that survives must answer identically when re-asked on
//!    the same session with governance lifted and in a fresh clean
//!    session — a cancelled query must leave no trace in the view store.

use std::fmt;
use std::path::Path;

use eva_common::{GovernorConfig, MetricsSnapshot};
use eva_core::{AdmissionConfig, AdmissionController, EvaDb};
use eva_exec::ExecConfig;
use eva_harness::TempDir;

use crate::gen::{FuzzCase, FuzzStmt};
use crate::session::{
    exec_select, fresh_db, parse_select, replay, run_single_select, ArmCfg, SelectObs,
};

/// Which oracle flagged a divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleId {
    /// Warm full-session replay vs each SELECT alone in a fresh session.
    WarmCold,
    /// Morsel-parallel execution vs serial, at several config points.
    ParallelSerial,
    /// Columnar hot path vs the forced row-at-a-time path.
    ColumnarRow,
    /// Save crashed at every write ordinal, then recovered and resumed.
    CrashRecovery,
    /// Governed replay (deadline/budget/admission); surviving SELECTs
    /// revalidated with governance lifted and against a clean session.
    GovernedReplay,
}

impl fmt::Display for OracleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OracleId::WarmCold => "warm-vs-cold",
            OracleId::ParallelSerial => "parallel-vs-serial",
            OracleId::ColumnarRow => "columnar-vs-row",
            OracleId::CrashRecovery => "crash-recovery",
            OracleId::GovernedReplay => "governed-replay",
        })
    }
}

/// How a case failed. The shrinker preserves this at *kind* granularity: a
/// candidate reproduces the failure iff it fails the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// The session did not replay at all (parse, bind, or execution error).
    Replay,
    /// A replayed session diverged under the named oracle.
    Oracle(OracleId),
}

impl fmt::Display for FailKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailKind::Replay => f.write_str("replay-error"),
            FailKind::Oracle(o) => write!(f, "oracle:{o}"),
        }
    }
}

/// A case failure: kind plus a human diagnosis.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Failure kind (the shrinker's equivalence key).
    pub kind: FailKind,
    /// What diverged, with enough context to debug from the log alone.
    pub detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

impl Failure {
    fn replay(detail: impl Into<String>) -> Failure {
        Failure {
            kind: FailKind::Replay,
            detail: detail.into(),
        }
    }

    fn oracle(id: OracleId, detail: impl Into<String>) -> Failure {
        Failure {
            kind: FailKind::Oracle(id),
            detail: detail.into(),
        }
    }
}

/// What a green case exercised (for the per-case log line).
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseReport {
    /// SELECT statements in the session.
    pub n_selects: usize,
    /// (SELECT × config-point) comparisons made by the parallel oracle.
    pub parallel_cmps: usize,
    /// Crash points swept by the recovery oracle (0 when the case never
    /// saves).
    pub crash_points: usize,
    /// Statements cancelled (deadline/budget/shed) during the governed
    /// replay (0 when the case carries no governance knobs).
    pub governed_cancelled: usize,
}

/// Width × morsel points for the parallel oracle. `(8, 1)` maximizes
/// scheduling chaos (every frame its own morsel, more lanes than work);
/// `(1, 4096)` degenerates to serial-through-the-pool.
const PAIRS: [(usize, usize); 3] = [(8, 1), (2, 64), (1, 4096)];

/// Write-site cycle for the crash sweep, in save-path write order.
const SITES: [&str; 4] = ["torn_write", "rename_fail", "short_write", "bit_flip"];

/// Scheduling-dependent counters masked for any cross-config comparison.
fn core_mask(m: &MetricsSnapshot) -> MetricsSnapshot {
    MetricsSnapshot {
        morsels_dispatched: 0,
        parallel_pipelines: 0,
        ..m.deterministic()
    }
}

/// Additionally mask the counters that *define* the columnar-vs-row split.
fn col_mask(m: &MetricsSnapshot) -> MetricsSnapshot {
    MetricsSnapshot {
        columnar_batches: 0,
        columnar_rows: 0,
        rows_pivoted: 0,
        ..core_mask(m)
    }
}

/// The SQL of every SELECT in the case, in statement order.
fn select_sqls(case: &FuzzCase) -> Vec<&str> {
    case.stmts
        .iter()
        .filter_map(|s| match s {
            FuzzStmt::Select(sql) => Some(sql.as_str()),
            _ => None,
        })
        .collect()
}

/// Run every oracle against one case.
pub fn check_case(case: &FuzzCase) -> Result<CaseReport, Failure> {
    let base = replay(case, &ArmCfg::default(), "fuzz_base").map_err(Failure::replay)?;
    let sqls = select_sqls(case);
    debug_assert_eq!(base.selects.len(), sqls.len());
    let mut report = CaseReport {
        n_selects: sqls.len(),
        ..CaseReport::default()
    };

    warm_vs_cold(case, &sqls, &base.selects)?;
    report.parallel_cmps = parallel_vs_serial(case, &sqls)?;
    columnar_vs_row(case, &sqls, &base.selects)?;
    report.crash_points = crash_recovery(case, &base)?;
    report.governed_cancelled = governed_replay(case)?;
    Ok(report)
}

/// Oracle 1: each warm SELECT vs the same SELECT alone in a fresh session.
/// Rows only, as multisets — a view-serving plan may emit in another order.
fn warm_vs_cold(case: &FuzzCase, sqls: &[&str], warm: &[SelectObs]) -> Result<(), Failure> {
    for (k, (sql, w)) in sqls.iter().zip(warm).enumerate() {
        let cold = run_single_select(case, sql)
            .map_err(|e| Failure::oracle(OracleId::WarmCold, format!("cold select {k}: {e}")))?;
        if w.row_multiset() != cold.row_multiset() {
            return Err(Failure::oracle(
                OracleId::WarmCold,
                format!(
                    "select {k} `{sql}`: warm {} row(s) != cold {} row(s)",
                    w.rows.len(),
                    cold.rows.len()
                ),
            ));
        }
    }
    Ok(())
}

/// Oracle 2: for each (width, morsel) point, a fully-parallel replay must be
/// bit-identical to a pipelines-disabled serial replay at the same batch
/// cadence — rows in order, simulated cost, deterministic counters, and
/// per-operator stats.
fn parallel_vs_serial(case: &FuzzCase, sqls: &[&str]) -> Result<usize, Failure> {
    let id = OracleId::ParallelSerial;
    let mut cmps = 0;
    for (width, morsel) in PAIRS {
        // `batch_size = morsel_rows` in *both* arms keeps the serial arm on
        // the exact batch boundaries the parallel arm's morsels produce.
        let serial = ArmCfg {
            exec: ExecConfig {
                batch_size: morsel,
                morsel_rows: morsel,
                parallel_scan_min_rows: 0,
                ..ExecConfig::default()
            },
            width: None,
            ..ArmCfg::default()
        };
        let parallel = ArmCfg {
            exec: ExecConfig {
                batch_size: morsel,
                morsel_rows: morsel,
                parallel_scan_min_rows: 1,
                ..ExecConfig::default()
            },
            width: Some(width),
            ..ArmCfg::default()
        };
        let s = replay(case, &serial, "fuzz_ps_serial")
            .map_err(|e| Failure::oracle(id, format!("serial arm (morsel {morsel}): {e}")))?;
        let p = replay(case, &parallel, "fuzz_ps_parallel")
            .map_err(|e| Failure::oracle(id, format!("parallel arm (w{width} m{morsel}): {e}")))?;
        for (k, (sv, pv)) in s.selects.iter().zip(&p.selects).enumerate() {
            let ctx = format!("select {k} `{}` at w{width} m{morsel}", sqls[k]);
            if sv.rows != pv.rows {
                return Err(Failure::oracle(id, format!("{ctx}: rows differ")));
            }
            if sv.breakdown != pv.breakdown {
                return Err(Failure::oracle(
                    id,
                    format!(
                        "{ctx}: simulated cost differs (serial {:?} vs parallel {:?})",
                        sv.breakdown, pv.breakdown
                    ),
                ));
            }
            if core_mask(&sv.metrics) != core_mask(&pv.metrics) {
                return Err(Failure::oracle(
                    id,
                    format!(
                        "{ctx}: counters differ (serial {:?} vs parallel {:?})",
                        core_mask(&sv.metrics),
                        core_mask(&pv.metrics)
                    ),
                ));
            }
            if sv.op_stats != pv.op_stats {
                return Err(Failure::oracle(id, format!("{ctx}: op_stats differ")));
            }
            cmps += 1;
        }
    }
    Ok(cmps)
}

/// Oracle 3: the base (columnar-capable) replay vs a `force_row_path`
/// replay. Rows in order and simulated cost must match; the columnar
/// bookkeeping counters are masked (they define the split), and op_stats
/// are skipped (the plans legitimately differ by a pivot node).
fn columnar_vs_row(case: &FuzzCase, sqls: &[&str], columnar: &[SelectObs]) -> Result<(), Failure> {
    let id = OracleId::ColumnarRow;
    let row_arm = ArmCfg {
        exec: ExecConfig {
            force_row_path: true,
            ..ExecConfig::default()
        },
        width: None,
        ..ArmCfg::default()
    };
    let r = replay(case, &row_arm, "fuzz_row_path")
        .map_err(|e| Failure::oracle(id, format!("row arm: {e}")))?;
    for (k, (cv, rv)) in columnar.iter().zip(&r.selects).enumerate() {
        let ctx = format!("select {k} `{}`", sqls[k]);
        if cv.rows != rv.rows {
            return Err(Failure::oracle(id, format!("{ctx}: rows differ")));
        }
        if cv.breakdown != rv.breakdown {
            return Err(Failure::oracle(
                id,
                format!(
                    "{ctx}: simulated cost differs (columnar {:?} vs row {:?})",
                    cv.breakdown, rv.breakdown
                ),
            ));
        }
        if col_mask(&cv.metrics) != col_mask(&rv.metrics) {
            return Err(Failure::oracle(
                id,
                format!(
                    "{ctx}: counters differ (columnar {:?} vs row {:?})",
                    col_mask(&cv.metrics),
                    col_mask(&rv.metrics)
                ),
            ));
        }
    }
    Ok(())
}

/// Replay a statement slice on an open session (serial, no pool), returning
/// per-SELECT observations. `saved` seeds the load-gating flag — the crash
/// survivor starts with it set, since it begins life by loading the store.
fn drive(
    db: &mut EvaDb,
    stmts: &[FuzzStmt],
    dir: &Path,
    mut saved: bool,
) -> Result<Vec<SelectObs>, String> {
    let mut out = Vec::new();
    for stmt in stmts {
        match stmt {
            FuzzStmt::Select(sql) => out.push(exec_select(db, sql, None)?),
            FuzzStmt::ResetViews => db.reset_reuse_state(),
            FuzzStmt::Save => {
                if db.save_state(dir).is_ok() {
                    saved = true;
                }
            }
            FuzzStmt::Load => {
                if saved {
                    db.load_state(dir).map_err(|e| format!("Load: {e}"))?;
                }
            }
            FuzzStmt::Fault(spec) => db
                .storage()
                .failpoints()
                .apply_spec(spec)
                .map_err(|e| format!("Fault `{spec}`: {e}"))?,
            FuzzStmt::Disarm => db.storage().failpoints().disarm_all(),
        }
    }
    Ok(out)
}

/// Oracle 4: crash the first save at every write ordinal and recover.
///
/// For each ordinal `nth` (cycling through the fault sites), a *victim*
/// session replays up to the first `Save`, arms `site=nth:<n>`, and
/// attempts the save — which dies partway, leaving a torn store. A fresh
/// *survivor* session must then `load_state` without error (quarantining
/// whatever is damaged) and answer the session's remaining SELECTs with
/// the same row multisets as the uninterrupted base replay.
fn crash_recovery(case: &FuzzCase, base: &crate::session::ReplayOutcome) -> Result<usize, Failure> {
    let id = OracleId::CrashRecovery;
    let Some(save_idx) = base.first_save_index else {
        return Ok(0);
    };
    // Writes during a save: one segment file per view, plus the store
    // manifest and the manager state. Sweep them all (capped — deep view
    // stacks would make the sweep quadratic-ish in session length).
    let n_writes = base.views_at_first_save.unwrap_or(0) + 2;
    let n_selects_before = case.stmts[..save_idx]
        .iter()
        .filter(|s| matches!(s, FuzzStmt::Select(_)))
        .count();
    let base_after = &base.selects[n_selects_before..];
    let remainder = &case.stmts[save_idx + 1..];

    let mut points = 0;
    for nth in 1..=n_writes.min(6) {
        let site = SITES[(nth - 1) % SITES.len()];
        let crash_dir = TempDir::new("fuzz_crash");

        // Victim: run up to the save, then crash the save's nth write.
        let mut victim = fresh_db(case, &ArmCfg::default()).map_err(Failure::replay)?;
        drive(
            &mut victim,
            &case.stmts[..save_idx],
            crash_dir.path(),
            false,
        )
        .map_err(|e| Failure::replay(format!("victim prefix (nth {nth}): {e}")))?;
        victim
            .storage()
            .failpoints()
            .apply_spec(&format!("{site}=nth:{nth}"))
            .map_err(|e| Failure::replay(format!("arming {site}=nth:{nth}: {e}")))?;
        let _ = victim.save_state(crash_dir.path()); // the crash: Err expected
        victim.storage().failpoints().disarm_all();
        drop(victim);

        // Survivor: recover from the torn store, then finish the session.
        let mut survivor = fresh_db(case, &ArmCfg::default()).map_err(Failure::replay)?;
        survivor.load_state(crash_dir.path()).map_err(|e| {
            Failure::oracle(
                id,
                format!("load_state after {site}=nth:{nth} crash errored: {e}"),
            )
        })?;
        let recovered = drive(&mut survivor, remainder, crash_dir.path(), true)
            .map_err(|e| Failure::oracle(id, format!("survivor after {site}=nth:{nth}: {e}")))?;

        if recovered.len() != base_after.len() {
            return Err(Failure::oracle(
                id,
                format!(
                    "survivor after {site}=nth:{nth} ran {} select(s), base ran {}",
                    recovered.len(),
                    base_after.len()
                ),
            ));
        }
        for (k, (rv, bv)) in recovered.iter().zip(base_after).enumerate() {
            if rv.row_multiset() != bv.row_multiset() {
                return Err(Failure::oracle(
                    id,
                    format!(
                        "post-recovery select {k} after {site}=nth:{nth}: {} row(s) vs base {}",
                        rv.rows.len(),
                        bv.rows.len()
                    ),
                ));
            }
        }
        points += 1;
    }
    Ok(points)
}

/// Oracle 5: replay under the case's governance knobs. Any statement may
/// come back `Cancelled { Deadline | Budget | Shed | User }` — that is a
/// tolerated, structured outcome — but a non-governance error is a replay
/// failure, and a cancelled query must leave no trace: each surviving
/// SELECT is re-asked (a) on the same session with governance lifted and
/// (b) in a fresh clean session, and all three answers must agree as row
/// multisets. Returns the number of cancelled statements.
fn governed_replay(case: &FuzzCase) -> Result<usize, Failure> {
    let id = OracleId::GovernedReplay;
    if !case.is_governed() {
        return Ok(0);
    }
    let arm = ArmCfg {
        governor: case.governor,
        ..ArmCfg::default()
    };
    let mut db = fresh_db(case, &arm).map_err(Failure::replay)?;
    if let Some(width) = case.admission_width {
        db.set_admission(Some(AdmissionController::new(AdmissionConfig {
            max_concurrent: width.max(1),
            max_waiters: 4,
            queue_deadline_ms: Some(30_000),
        })));
    }
    let scratch = TempDir::new("fuzz_governed");
    let mut survivors: Vec<(&str, Vec<String>)> = Vec::new();
    let mut cancelled = 0;
    let mut saved = false;

    for (i, stmt) in case.stmts.iter().enumerate() {
        match stmt {
            FuzzStmt::Select(sql) => {
                let parsed = parse_select(sql).map_err(Failure::replay)?;
                match db.execute_select_with_pool(&parsed, None) {
                    Ok(out) => {
                        let obs = SelectObs::from_output(out);
                        survivors.push((sql.as_str(), obs.row_multiset()));
                    }
                    Err(e) if e.cancel_reason().is_some() => cancelled += 1,
                    Err(e) => {
                        return Err(Failure::replay(format!(
                            "governed stmt {i} `{sql}`: non-governance error: {e}"
                        )))
                    }
                }
            }
            FuzzStmt::ResetViews => db.reset_reuse_state(),
            FuzzStmt::Save => {
                // Tolerated, as in the base replay: a fault plan may be
                // targeting this save's writes.
                if db.save_state(scratch.path()).is_ok() {
                    saved = true;
                }
            }
            FuzzStmt::Load => {
                if saved {
                    db.load_state(scratch.path())
                        .map_err(|e| Failure::replay(format!("governed stmt {i} (Load): {e}")))?;
                }
            }
            FuzzStmt::Fault(spec) => {
                db.storage().failpoints().apply_spec(spec).map_err(|e| {
                    Failure::replay(format!("governed stmt {i} (Fault `{spec}`): {e}"))
                })?;
            }
            FuzzStmt::Disarm => db.storage().failpoints().disarm_all(),
        }
    }

    // Revalidation: governance lifted on the *survived* session. Whatever
    // the cancelled statements touched (partial view materialization,
    // coverage claims, admission slots) must not change any answer.
    db.storage().failpoints().disarm_all();
    db.set_governor(GovernorConfig::default());
    db.set_admission(None);
    for (k, (sql, governed)) in survivors.iter().enumerate() {
        let warm = exec_select(&mut db, sql, None)
            .map_err(|e| Failure::oracle(id, format!("post-governance warm select {k}: {e}")))?;
        if warm.row_multiset() != *governed {
            return Err(Failure::oracle(
                id,
                format!(
                    "survivor {k} `{sql}`: governed {} row(s) != ungoverned warm re-ask {}",
                    governed.len(),
                    warm.rows.len()
                ),
            ));
        }
        let clean = run_single_select(case, sql)
            .map_err(|e| Failure::oracle(id, format!("clean select {k}: {e}")))?;
        if clean.row_multiset() != *governed {
            return Err(Failure::oracle(
                id,
                format!(
                    "survivor {k} `{sql}`: governed {} row(s) != clean session {}",
                    governed.len(),
                    clean.rows.len()
                ),
            ));
        }
    }
    Ok(cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, sabotage_case};

    #[test]
    fn small_generated_cases_are_green() {
        // A handful of quick seeds; the full smoke run lives in the CLI and
        // the corpus replay test.
        for seed in [3u64, 14] {
            let case = generate_case(seed);
            if let Err(f) = check_case(&case) {
                panic!("seed {seed} failed: {f}\ncase: {case:#?}");
            }
        }
    }

    #[test]
    fn sabotage_case_is_caught() {
        let case = sabotage_case(1);
        let f = check_case(&case).expect_err("sabotaged recovery must be flagged");
        assert!(
            matches!(f.kind, FailKind::Oracle(_)),
            "expected an oracle failure, got {f}"
        );
    }

    #[test]
    fn crash_oracle_skips_saveless_cases() {
        let case = crate::gen::FuzzCase {
            seed: 0,
            dataset_seed: 5,
            n_frames: 12,
            sabotage: None,
            governor: GovernorConfig::default(),
            admission_width: None,
            stmts: vec![FuzzStmt::Select("SELECT id FROM video WHERE id < 4".into())],
        };
        let report = check_case(&case).expect("trivial case is green");
        assert_eq!(report.crash_points, 0);
        assert_eq!(report.n_selects, 1);
        assert_eq!(
            report.governed_cancelled, 0,
            "ungoverned case skips oracle 5"
        );
    }

    #[test]
    fn governed_oracle_tolerates_total_cancellation() {
        // A zero sim-ms deadline cancels every statement that does any
        // work; the oracle must stay green (structured cancellations are
        // an outcome, not a failure) and the session must stay clean.
        let case = crate::gen::FuzzCase {
            seed: 0,
            dataset_seed: 5,
            n_frames: 24,
            sabotage: None,
            governor: GovernorConfig {
                deadline_ms: Some(0.0),
                ..GovernorConfig::default()
            },
            admission_width: None,
            stmts: vec![
                FuzzStmt::Select(
                    "SELECT id, label FROM video CROSS APPLY yolo_tiny(frame) WHERE id < 16".into(),
                ),
                FuzzStmt::Select("SELECT COUNT(*) FROM video".into()),
            ],
        };
        let report = check_case(&case).expect("cancelled-everything case is green");
        assert!(
            report.governed_cancelled >= 1,
            "a 0ms deadline must cancel at least one statement"
        );
    }

    #[test]
    fn governed_oracle_covers_budget_and_admission() {
        // A 256-byte budget degrades the aggregation (which must still be
        // exact) and cancels wide projections; admission width 1 threads
        // every query through a one-slot controller.
        let case = crate::gen::FuzzCase {
            seed: 0,
            dataset_seed: 5,
            n_frames: 24,
            sabotage: None,
            governor: GovernorConfig {
                budget_bytes: Some(256),
                ..GovernorConfig::default()
            },
            admission_width: Some(1),
            stmts: vec![
                FuzzStmt::Select(
                    "SELECT label, COUNT(*) FROM video CROSS APPLY yolo_tiny(frame) \
                     WHERE id < 16 GROUP BY label"
                        .into(),
                ),
                FuzzStmt::Select("SELECT id FROM video WHERE id < 2".into()),
            ],
        };
        check_case(&case).expect("budget degradation under admission is green");
    }
}
