//! The on-disk regression corpus.
//!
//! Every shrunk failure is written as a self-contained JSON file — the full
//! [`FuzzCase`] (dataset parameters + statements), a version tag, and a
//! human note. `tests/corpus/` holds the *committed* corpus: seeds that
//! once failed (or that pin known-tricky interleavings) and now must stay
//! green; `tests/fuzz_corpus.rs` replays all of them on every `cargo test`.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::gen::FuzzCase;

/// Bumped when [`FuzzCase`]'s serialized form changes incompatibly; the
/// replay test refuses files from another version instead of mis-reading
/// them.
pub const CORPUS_VERSION: u32 = 1;

/// One corpus entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusFile {
    /// Format version (see [`CORPUS_VERSION`]).
    pub version: u32,
    /// Why this case is in the corpus.
    pub note: String,
    /// The session to replay through the oracles.
    pub case: FuzzCase,
}

/// The committed corpus directory (`tests/corpus/` at the repository root).
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Stable file name for a repro of the given case.
pub fn repro_file_name(case: &FuzzCase) -> String {
    format!("repro-{:016x}.json", case.seed)
}

/// Write one corpus file (pretty-printed, trailing newline) and return its
/// path.
pub fn write_corpus_file(dir: &Path, file: &CorpusFile) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(repro_file_name(&file.case));
    let mut json =
        serde_json::to_string_pretty(file).map_err(|e| format!("serialize corpus file: {e}"))?;
    json.push('\n');
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Load every `.json` file in a corpus directory, sorted by file name.
/// A malformed file is an error — a corpus entry that silently stops
/// parsing is a regression test that silently stopped running.
pub fn load_corpus_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusFile)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let file: CorpusFile =
            serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        out.push((path, file));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, sabotage_case};
    use eva_harness::TempDir;

    #[test]
    fn corpus_files_round_trip() {
        let dir = TempDir::new("fuzz_corpus_rt");
        for case in [generate_case(3), sabotage_case(9)] {
            let file = CorpusFile {
                version: CORPUS_VERSION,
                note: "round-trip test".to_string(),
                case,
            };
            let path = write_corpus_file(dir.path(), &file).expect("write");
            assert!(path.is_file());
        }
        let loaded = load_corpus_dir(dir.path()).expect("load");
        assert_eq!(loaded.len(), 2);
        for (_, f) in &loaded {
            assert_eq!(f.version, CORPUS_VERSION);
        }
        // Deterministic order: sorted by file name.
        let names: Vec<_> = loaded
            .iter()
            .map(|(p, _)| p.file_name().unwrap().to_owned())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn malformed_corpus_file_is_an_error() {
        let dir = TempDir::new("fuzz_corpus_bad");
        std::fs::write(dir.path().join("broken.json"), "{ not json").expect("write");
        assert!(load_corpus_dir(dir.path()).is_err());
    }

    #[test]
    fn committed_corpus_dir_exists() {
        // The committed corpus must never silently vanish (an empty or
        // missing directory would make the replay test vacuous).
        let entries = load_corpus_dir(&corpus_dir()).expect("committed corpus loads");
        assert!(!entries.is_empty(), "tests/corpus/ has no entries");
    }
}
