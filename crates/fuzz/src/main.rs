//! The `eva-fuzz` CLI: generate sessions, run the oracles, shrink and
//! record failures.
//!
//! ```text
//! eva-fuzz [--seed N] [--cases N] [--corpus-dir PATH] [--sabotage]
//! ```
//!
//! * `--seed` (or `EVA_FUZZ_SEED`, default 42) — master seed; each case's
//!   seed is drawn from this stream, so a run is fully described by
//!   (seed, cases).
//! * `--cases` (or `EVA_FUZZ_CASES`, default 200) — cases to run.
//! * `--corpus-dir` — where shrunk repros are written (default: the
//!   committed `tests/corpus/`, so a fixed failure can be committed as a
//!   regression test; the sabotage drill defaults to a scratch directory
//!   instead, because its repro *fails* by design).
//! * `--sabotage` — self-test drill: replay a session against a session
//!   flag that deliberately reintroduces a fixed wrong-answer bug, and
//!   verify the harness flags it, shrinks it to ≤ 5 statements, and writes
//!   a repro that still fails. Exits non-zero if the bug slips through.
//!
//! The per-case log is timing-free and therefore byte-identical across
//! runs with the same seed — `eva-fuzz --seed 42 --cases 200 | sha256sum`
//! is a reproducibility check.

use std::path::PathBuf;
use std::process::ExitCode;

use eva_fuzz::shrink::shrink_case;
use eva_fuzz::{
    check_case, corpus_dir, generate_case, sabotage_case, write_corpus_file, CorpusFile, FuzzCase,
    SplitMix64, CORPUS_VERSION,
};

/// Oracle evaluations granted to each shrink run.
const SHRINK_BUDGET: usize = 150;

struct Args {
    seed: u64,
    cases: u64,
    corpus_dir: Option<PathBuf>,
    sabotage: bool,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: env_u64("EVA_FUZZ_SEED").unwrap_or(42),
        cases: env_u64("EVA_FUZZ_CASES").unwrap_or(200),
        corpus_dir: None,
        sabotage: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v.parse().map_err(|e| format!("--seed {v}: {e}"))?;
            }
            "--cases" => {
                let v = value("--cases")?;
                args.cases = v.parse().map_err(|e| format!("--cases {v}: {e}"))?;
            }
            "--corpus-dir" => args.corpus_dir = Some(PathBuf::from(value("--corpus-dir")?)),
            "--sabotage" => args.sabotage = true,
            "--help" | "-h" => {
                println!("usage: eva-fuzz [--seed N] [--cases N] [--corpus-dir PATH] [--sabotage]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Shrink a failure and write its repro file; returns the written path.
fn record_failure(
    case: &FuzzCase,
    failure: &eva_fuzz::Failure,
    dir: &std::path::Path,
) -> Result<PathBuf, String> {
    let shrunk = shrink_case(case, failure.kind, SHRINK_BUDGET);
    eprintln!(
        "shrink: {} -> {} statement(s) in {} oracle evaluation(s)",
        case.stmts.len(),
        shrunk.case.stmts.len(),
        shrunk.evals
    );
    let file = CorpusFile {
        version: CORPUS_VERSION,
        note: format!("auto-shrunk repro of: {failure}"),
        case: shrunk.case,
    };
    write_corpus_file(dir, &file)
}

fn run_fuzz(args: &Args) -> ExitCode {
    let mut master = SplitMix64::new(args.seed);
    println!("eva-fuzz: seed={} cases={}", args.seed, args.cases);
    for i in 0..args.cases {
        let case_seed = master.next_u64();
        let case = generate_case(case_seed);
        match check_case(&case) {
            Ok(report) => {
                println!(
                    "case {i:04} case_seed={case_seed:016x} stmts={} selects={} wc={} ps={} cr={} gv={} ok",
                    case.stmts.len(),
                    report.n_selects,
                    report.n_selects,
                    report.parallel_cmps,
                    report.crash_points,
                    report.governed_cancelled,
                );
            }
            Err(failure) => {
                println!(
                    "case {i:04} case_seed={case_seed:016x} stmts={} FAILED",
                    case.stmts.len()
                );
                eprintln!("failure: {failure}");
                for (j, stmt) in case.stmts.iter().enumerate() {
                    eprintln!("  stmt {j}: {stmt:?}");
                }
                let dir = args.corpus_dir.clone().unwrap_or_else(corpus_dir);
                match record_failure(&case, &failure, &dir) {
                    Ok(path) => eprintln!("repro written to {}", path.display()),
                    Err(e) => eprintln!("could not write repro: {e}"),
                }
                return ExitCode::FAILURE;
            }
        }
    }
    println!("eva-fuzz: all {} case(s) green", args.cases);
    ExitCode::SUCCESS
}

/// The self-test drill: prove the pipeline catches a deliberately
/// reintroduced wrong-answer bug and shrinks it to a tiny repro.
fn run_sabotage(args: &Args) -> ExitCode {
    let case = sabotage_case(args.seed);
    println!(
        "sabotage drill: seed={} stmts={} (recovery pruning disabled)",
        args.seed,
        case.stmts.len()
    );
    let failure = match check_case(&case) {
        Err(f) => f,
        Ok(_) => {
            eprintln!("DRILL FAILED: the sabotaged session was not flagged by any oracle");
            return ExitCode::FAILURE;
        }
    };
    println!("caught: {failure}");
    let dir = args
        .corpus_dir
        .clone()
        .unwrap_or_else(|| eva_harness::unique_temp_dir("fuzz_sabotage_repro"));
    let shrunk = shrink_case(&case, failure.kind, SHRINK_BUDGET);
    println!(
        "shrunk to {} statement(s) in {} oracle evaluation(s)",
        shrunk.case.stmts.len(),
        shrunk.evals
    );
    if shrunk.case.stmts.len() > 5 {
        eprintln!("DRILL FAILED: repro has more than 5 statements");
        return ExitCode::FAILURE;
    }
    // The written repro must itself replay red — a repro that passes when
    // replayed is worse than no repro.
    match check_case(&shrunk.case) {
        Err(f) if f.kind == failure.kind => {}
        other => {
            eprintln!("DRILL FAILED: shrunk repro did not reproduce ({other:?})");
            return ExitCode::FAILURE;
        }
    }
    let file = CorpusFile {
        version: CORPUS_VERSION,
        note: format!("sabotage drill repro (replays red by design): {failure}"),
        case: shrunk.case,
    };
    match write_corpus_file(&dir, &file) {
        Ok(path) => println!("repro written to {}", path.display()),
        Err(e) => {
            eprintln!("DRILL FAILED: could not write repro: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("sabotage drill passed");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("eva-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.sabotage {
        run_sabotage(&args)
    } else {
        run_fuzz(&args)
    }
}
