//! # eva-fuzz
//!
//! A differential fuzzing harness for EVA-RS. The pieces, in pipeline
//! order:
//!
//! * [`rng`] — a fully-specified [`SplitMix64`](rng::SplitMix64), so equal
//!   seeds produce byte-identical runs on every platform.
//! * [`gen`] — seeded generation of [`FuzzCase`](gen::FuzzCase) sessions:
//!   schema-aware EVA-QL SELECTs (UDF predicates, AND/OR/NOT, aggregates,
//!   ORDER BY/LIMIT) interleaved with view resets, save/load cycles and
//!   failpoint plans.
//! * [`session`] — deterministic replay of a case under one *arm*
//!   configuration, collecting per-SELECT rows, simulated cost, metrics
//!   and operator stats.
//! * [`oracles`] — the five equivalence checks: warm-vs-cold reuse,
//!   parallel-vs-serial execution, columnar-vs-row execution,
//!   crash-at-every-write recovery, and governed replay (deadline/budget/
//!   admission cancellations must be structured and leave no trace).
//! * [`shrink`] — greedy delta-debugging of a failing case to a minimal
//!   repro that still fails the same way.
//! * [`corpus`] — self-contained JSON repro files under `tests/corpus/`,
//!   replayed by `tests/fuzz_corpus.rs` on every `cargo test`.
//!
//! The `eva-fuzz` binary drives the whole loop; see `--help` (or the
//! README's "Differential fuzzing" section) for the CLI and the
//! `EVA_FUZZ_SEED` / `EVA_FUZZ_CASES` environment knobs.

pub mod corpus;
pub mod gen;
pub mod oracles;
pub mod rng;
pub mod session;
pub mod shrink;

pub use corpus::{corpus_dir, load_corpus_dir, write_corpus_file, CorpusFile, CORPUS_VERSION};
pub use gen::{generate_case, sabotage_case, FuzzCase, FuzzStmt, Sabotage};
pub use oracles::{check_case, CaseReport, FailKind, Failure, OracleId};
pub use rng::SplitMix64;
pub use session::{replay, ArmCfg, ReplayOutcome, SelectObs};
pub use shrink::{shrink_case, ShrinkResult};
