//! Greedy failure shrinking: from a failing session to a minimal repro.
//!
//! Classic delta-debugging adapted to sessions: first drop whole statements
//! (end-first, so dependency-shaped prefixes survive longest), then simplify
//! the surviving SELECTs structurally (strip the WHERE clause or replace it
//! with a sub-predicate, drop LIMIT / ORDER BY / GROUP BY, widen the
//! projection, drop the APPLY). A candidate is accepted iff it still fails
//! with the *same* [`FailKind`] — candidates that mutate into unbindable
//! queries fail with [`FailKind::Replay`] instead and reject themselves.
//! Both passes loop to a fixpoint under an evaluation budget (each
//! evaluation is a full multi-replay oracle run, so the budget is the knob
//! that keeps shrinking bounded).

use eva_expr::Expr;
use eva_parser::{SelectItem, SelectStmt};

use crate::gen::{FuzzCase, FuzzStmt};
use crate::oracles::{check_case, FailKind};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest failing case found.
    pub case: FuzzCase,
    /// Oracle evaluations spent.
    pub evals: usize,
    /// Statements removed relative to the input case.
    pub removed_stmts: usize,
}

/// True iff `candidate` fails with the same kind as the original failure.
/// Costs one full oracle evaluation.
fn fails_same(candidate: &FuzzCase, kind: FailKind) -> bool {
    match check_case(candidate) {
        Ok(_) => false,
        Err(f) => f.kind == kind,
    }
}

/// Structurally smaller variants of one SELECT, most aggressive first.
fn simplify_select(stmt: &SelectStmt) -> Vec<SelectStmt> {
    let mut out = Vec::new();
    let mut push = |s: SelectStmt| {
        if s != *stmt && !out.contains(&s) {
            out.push(s);
        }
    };

    if let Some(w) = &stmt.where_clause {
        // Drop the predicate entirely, then try each immediate sub-predicate.
        let mut s = stmt.clone();
        s.where_clause = None;
        push(s);
        let subs: Vec<Expr> = match w {
            Expr::And(a, b) | Expr::Or(a, b) => vec![(**a).clone(), (**b).clone()],
            Expr::Not(e) => vec![(**e).clone()],
            _ => Vec::new(),
        };
        for sub in subs {
            let mut s = stmt.clone();
            s.where_clause = Some(sub);
            push(s);
        }
    }
    if stmt.limit.is_some() {
        let mut s = stmt.clone();
        s.limit = None;
        push(s);
    }
    if !stmt.order_by.is_empty() {
        let mut s = stmt.clone();
        s.order_by.clear();
        s.limit = None; // LIMIT without a total order is nondeterministic
        push(s);
    }
    if !stmt.group_by.is_empty() {
        let mut s = stmt.clone();
        s.group_by.clear();
        s.order_by.clear();
        s.projection = vec![SelectItem::Wildcard];
        push(s);
    }
    if stmt.group_by.is_empty() && stmt.projection != vec![SelectItem::Wildcard] {
        let mut s = stmt.clone();
        s.projection = vec![SelectItem::Wildcard];
        push(s);
    }
    if !stmt.applies.is_empty() {
        // Usually rejects itself (predicates referencing detector columns
        // stop binding), but when the predicate was already dropped this is
        // the biggest simplification available.
        let mut s = stmt.clone();
        s.applies.clear();
        push(s);
    }
    out
}

/// Shrink `case` (which fails with `kind`) to a smaller case failing the
/// same way, spending at most `budget` oracle evaluations.
pub fn shrink_case(case: &FuzzCase, kind: FailKind, budget: usize) -> ShrinkResult {
    let mut best = case.clone();
    let mut evals = 0;
    let mut changed = true;

    while changed && evals < budget {
        changed = false;

        // Pass 1: drop whole statements, scanning from the end.
        let mut i = best.stmts.len();
        while i > 0 && evals < budget {
            i -= 1;
            if best.stmts.len() == 1 {
                break; // keep at least one statement
            }
            let mut candidate = best.clone();
            candidate.stmts.remove(i);
            evals += 1;
            if fails_same(&candidate, kind) {
                best = candidate;
                changed = true;
                // `i` now indexes the statement after the removed one; the
                // countdown naturally continues leftward.
            }
        }

        // Pass 2: simplify each surviving SELECT.
        let mut i = 0;
        'stmts: while i < best.stmts.len() && evals < budget {
            if let FuzzStmt::Select(sql) = &best.stmts[i] {
                if let Ok(eva_parser::Statement::Select(stmt)) = eva_parser::parse(sql) {
                    for simpler in simplify_select(&stmt) {
                        if evals >= budget {
                            break 'stmts;
                        }
                        let mut candidate = best.clone();
                        candidate.stmts[i] = FuzzStmt::Select(simpler.to_string());
                        evals += 1;
                        if fails_same(&candidate, kind) {
                            best = candidate;
                            changed = true;
                            continue 'stmts; // re-simplify this slot from scratch
                        }
                    }
                }
            }
            i += 1;
        }
    }

    ShrinkResult {
        removed_stmts: case.stmts.len() - best.stmts.len(),
        case: best,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_parser::{parse, Statement};

    fn parse_sel(sql: &str) -> SelectStmt {
        match parse(sql) {
            Ok(Statement::Select(s)) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simplify_produces_strictly_different_variants() {
        let s = parse_sel(
            "SELECT id, label FROM video CROSS APPLY yolo_tiny(frame) \
             WHERE id < 10 AND label = 'car' ORDER BY id",
        );
        let variants = simplify_select(&s);
        assert!(!variants.is_empty());
        for v in &variants {
            assert_ne!(*v, s);
            // Every variant must round-trip through the parser.
            assert_eq!(parse_sel(&v.to_string()), *v);
        }
        // The predicate-dropping and conjunct-splitting variants exist.
        assert!(variants.iter().any(|v| v.where_clause.is_none()));
        assert!(variants
            .iter()
            .any(|v| matches!(&v.where_clause, Some(Expr::Cmp { .. }))));
    }

    #[test]
    fn simplify_wildcard_query_offers_apply_removal() {
        let s = parse_sel("SELECT * FROM video CROSS APPLY yolo_tiny(frame)");
        let variants = simplify_select(&s);
        assert!(variants.iter().any(|v| v.applies.is_empty()));
    }

    #[test]
    fn shrink_on_sabotage_reaches_minimal_repro() {
        // The sabotage drill's case is already near-minimal: every statement
        // is load-bearing (query → corrupting fault → save → load → requery),
        // so shrinking must keep all five while staying within budget.
        let case = crate::gen::sabotage_case(1);
        let kind = match check_case(&case) {
            Err(f) => f.kind,
            Ok(_) => panic!("sabotage case unexpectedly green"),
        };
        let r = shrink_case(&case, kind, 40);
        assert!(r.case.stmts.len() <= case.stmts.len());
        assert!(fails_same(&r.case, kind), "shrunk case must still fail");
        assert!(
            r.case.stmts.len() >= 4,
            "save/load/select core must survive"
        );
    }
}
