//! Concurrency hammer tests for the sharded view store.
//!
//! Many threads share one `StorageEngine` (cheap clone of shared state) and
//! mix appends with probes — on a view all threads fight over, and on
//! per-thread private views that should never contend. The `SimClock` is
//! not `Sync` by design, so each thread charges its own clock; the engine
//! itself must be safely shareable.

use std::sync::Arc;

use eva_common::{DataType, Field, FrameId, Row, Schema, SimClock, Value, ViewId};
use eva_storage::{StorageEngine, ViewKey, ViewKeyKind};

const N_THREADS: u64 = 8;
const KEYS_PER_THREAD: u64 = 200;

fn out_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![Field::new("label", DataType::Str)]).unwrap())
}

fn row(label: &str) -> Arc<[Row]> {
    vec![vec![Value::from(label)]].into()
}

#[test]
fn threads_hammering_one_view_stay_consistent() {
    let eng = StorageEngine::new();
    let shared = eng.create_view("shared", ViewKeyKind::Frame, out_schema());

    let mut handles = Vec::new();
    for t in 0..N_THREADS {
        let eng = eng.clone();
        handles.push(std::thread::spawn(move || {
            let clock = SimClock::new();
            let mut hits = 0usize;
            for i in 0..KEYS_PER_THREAD {
                // Interleaved key ranges: every thread appends its own keys
                // but probes the whole space, racing appends from peers.
                let own = ViewKey::frame(FrameId(t * KEYS_PER_THREAD + i));
                eng.view_append(shared, vec![(own, row("car"))], &clock)
                    .unwrap();
                let probe: Vec<ViewKey> = (0..N_THREADS)
                    .map(|p| ViewKey::frame(FrameId(p * KEYS_PER_THREAD + i)))
                    .collect();
                let got = eng.view_probe(shared, &probe, &clock).unwrap();
                // Our own key must be visible to ourselves immediately.
                assert!(got[t as usize].is_some(), "own append must be visible");
                hits += got.iter().flatten().count();
            }
            hits
        }));
    }
    let total_hits: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    // Every append eventually lands exactly once.
    assert_eq!(
        eng.view_n_keys(shared).unwrap(),
        N_THREADS * KEYS_PER_THREAD
    );
    assert_eq!(
        eng.view_n_rows(shared).unwrap(),
        N_THREADS * KEYS_PER_THREAD
    );
    // At minimum each thread saw its own appends; racing probes can only
    // add hits on top.
    assert!(total_hits >= (N_THREADS * KEYS_PER_THREAD) as usize);
}

#[test]
fn private_views_do_not_interfere() {
    let eng = StorageEngine::new();
    let mut handles = Vec::new();
    for t in 0..N_THREADS {
        let eng = eng.clone();
        handles.push(std::thread::spawn(move || {
            let clock = SimClock::new();
            let view = eng.create_view(format!("private-{t}"), ViewKeyKind::Frame, out_schema());
            for i in 0..KEYS_PER_THREAD {
                let k = ViewKey::frame(FrameId(i));
                eng.view_append(view, vec![(k, row("bus"))], &clock)
                    .unwrap();
            }
            let keys: Vec<ViewKey> = (0..KEYS_PER_THREAD)
                .map(|i| ViewKey::frame(FrameId(i)))
                .collect();
            let got = eng.view_probe(view, &keys, &clock).unwrap();
            assert!(got.iter().all(Option::is_some));
            view
        }));
    }
    let views: Vec<ViewId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for v in views {
        assert_eq!(eng.view_n_keys(v).unwrap(), KEYS_PER_THREAD);
    }
    assert_eq!(eng.view_defs().len(), N_THREADS as usize);
}

#[test]
fn concurrent_probes_share_one_allocation() {
    let eng = StorageEngine::new();
    let view = eng.create_view("zero-copy", ViewKeyKind::Frame, out_schema());
    let k = ViewKey::frame(FrameId(0));
    let clock = SimClock::new();
    eng.view_append(view, vec![(k, row("truck"))], &clock)
        .unwrap();

    let baseline = eng.view_probe(view, &[k], &clock).unwrap()[0]
        .clone()
        .unwrap();
    let mut handles = Vec::new();
    for _ in 0..N_THREADS {
        let eng = eng.clone();
        handles.push(std::thread::spawn(move || {
            let clock = SimClock::new();
            eng.view_probe(view, &[k], &clock).unwrap()[0]
                .clone()
                .unwrap()
        }));
    }
    for h in handles {
        let got = h.join().unwrap();
        assert!(
            Arc::ptr_eq(&baseline, &got),
            "every concurrent hit must share the stored allocation"
        );
    }
}
