//! Malformed-store recovery tests: every way a segment file can be damaged
//! must yield quarantine-and-continue — never a panic, never a half-loaded
//! engine, never an aborted load.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use eva_common::codec;
use eva_common::{DataType, Field, FrameId, Schema, SimClock, Value, ViewId};
use eva_storage::segment;
use eva_storage::{StorageEngine, ViewKey, ViewKeyKind};

fn unique_dir(tag: &str) -> PathBuf {
    eva_common::testutil::unique_temp_dir(&format!("recovery_{tag}"))
}

fn out_schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(vec![
            Field::new("label", DataType::Str),
            Field::new("score", DataType::Float),
        ])
        .unwrap(),
    )
}

/// Build a store with three views (ids 1..=3, one entry per frame 0..N).
fn saved_store(dir: &Path) -> StorageEngine {
    let eng = StorageEngine::new();
    let clock = SimClock::new();
    for v in 0..3u64 {
        let id = eng.create_view(format!("det{v}"), ViewKeyKind::Frame, out_schema());
        let entries = (0..4 + v)
            .map(|f| {
                (
                    ViewKey::frame(FrameId(f)),
                    vec![vec![Value::from("car"), Value::Float(0.5 + v as f64)]].into(),
                )
            })
            .collect();
        eng.view_append(id, entries, &clock).unwrap();
    }
    eng.save_views(dir).unwrap();
    eng
}

/// Load the store and assert the damaged view (and only it) was
/// quarantined, while the other two keep serving probes.
fn assert_quarantines_only(dir: &Path, damaged: ViewId, expect_reason_fragment: &str) {
    let eng = StorageEngine::new();
    let report = eng.load_views(dir).unwrap();
    assert_eq!(
        report.quarantined.len(),
        1,
        "exactly the damaged segment quarantines: {report}"
    );
    assert_eq!(report.quarantined[0].view_id, Some(damaged));
    assert!(
        report.quarantined[0]
            .reason
            .contains(expect_reason_fragment),
        "reason {:?} should mention {:?}",
        report.quarantined[0].reason,
        expect_reason_fragment
    );
    assert_eq!(report.loaded.len(), 2, "{report}");
    // The engine is not half-loaded: survivors serve probes…
    let clock = SimClock::new();
    for id in &report.loaded {
        let probed = eng
            .view_probe(*id, &[ViewKey::frame(FrameId(0))], &clock)
            .unwrap();
        assert!(probed[0].is_some(), "view {id} lost its entries");
    }
    // …the quarantined view is simply cold (unknown to the engine)…
    assert!(eng.view_n_keys(damaged).is_err());
    // …and the counters reflect the outcome.
    let m = eng.metrics().snapshot();
    assert_eq!(m.views_recovered, 2);
    assert_eq!(m.views_quarantined, 1);
    // New view ids never collide with quarantined ids.
    let fresh = eng.create_view("fresh", ViewKeyKind::Frame, out_schema());
    assert!(fresh.raw() > damaged.raw().max(3));
}

#[test]
fn truncated_segment_quarantines_at_every_cut() {
    let dir = unique_dir("truncate");
    saved_store(&dir);
    let victim = dir.join("view_2.seg");
    let original = std::fs::read(&victim).unwrap();
    // Fuzz-style sweep: cut the file at a spread of positions covering the
    // magic, header, payload and checksum regions.
    for step in 0..16 {
        let cut = step * original.len() / 16;
        std::fs::write(&victim, &original[..cut]).unwrap();
        assert_quarantines_only(&dir, ViewId(2), "");
        // The recovery pass moved the file aside; put a fresh copy back.
        let _ = std::fs::remove_file(dir.join("view_2.seg.quarantined"));
        std::fs::write(&victim, &original).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_segment_quarantines_at_every_position() {
    let dir = unique_dir("bitflip");
    saved_store(&dir);
    let victim = dir.join("view_1.seg");
    let original = std::fs::read(&victim).unwrap();
    for step in 0..32 {
        let byte = step * original.len() / 32;
        let mut bad = original.clone();
        bad[byte] ^= 1 << (step % 8);
        std::fs::write(&victim, &bad).unwrap();
        assert_quarantines_only(&dir, ViewId(1), "");
        let _ = std::fs::remove_file(dir.join("view_1.seg.quarantined"));
        std::fs::write(&victim, &original).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_segment_quarantines() {
    let dir = unique_dir("empty");
    saved_store(&dir);
    std::fs::write(dir.join("view_3.seg"), b"").unwrap();
    assert_quarantines_only(&dir, ViewId(3), "too small");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn future_format_version_quarantines() {
    let dir = unique_dir("future");
    saved_store(&dir);
    // A well-formed envelope from a "newer" writer: magic and checksum are
    // valid, only the version is beyond what this reader understands.
    let sealed = codec::seal(
        segment::SEGMENT_MAGIC,
        segment::FORMAT_VERSION + 7,
        b"who knows",
    );
    std::fs::write(dir.join("view_2.seg"), sealed).unwrap();
    assert_quarantines_only(&dir, ViewId(2), "future");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_header_quarantines() {
    let dir = unique_dir("garbage");
    saved_store(&dir);
    std::fs::write(dir.join("view_1.seg"), vec![0xAB; 512]).unwrap();
    assert_quarantines_only(&dir, ViewId(1), "bad magic");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_view_id_inside_segment_quarantines() {
    let dir = unique_dir("swap");
    saved_store(&dir);
    // Simulate an operator mistake: view 3's bytes under view 1's name.
    std::fs::copy(dir.join("view_3.seg"), dir.join("view_1.seg")).unwrap();
    let eng = StorageEngine::new();
    let report = eng.load_views(&dir).unwrap();
    assert_eq!(report.quarantined.len(), 1, "{report}");
    assert!(report.quarantined[0].reason.contains("file name"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_manifest_falls_back_to_directory_scan() {
    let dir = unique_dir("no_manifest");
    saved_store(&dir);
    std::fs::remove_file(dir.join(segment::MANIFEST_FILE)).unwrap();
    let eng = StorageEngine::new();
    let report = eng.load_views(&dir).unwrap();
    assert!(report.manifest_fallback, "{report}");
    assert_eq!(report.loaded.len(), 3, "{report}");
    assert!(report.quarantined.is_empty(), "{report}");
    // The id allocator recovered its high-water mark from the scan.
    let fresh = eng.create_view("fresh", ViewKeyKind::Frame, out_schema());
    assert_eq!(fresh, ViewId(4));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_falls_back_to_directory_scan() {
    let dir = unique_dir("bad_manifest");
    saved_store(&dir);
    let path = dir.join(segment::MANIFEST_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, bytes).unwrap();
    let eng = StorageEngine::new();
    let report = eng.load_views(&dir).unwrap();
    assert!(report.manifest_fallback, "{report}");
    assert_eq!(report.loaded.len(), 3, "{report}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn leftover_tmp_files_are_cleaned() {
    let dir = unique_dir("tmp");
    saved_store(&dir);
    std::fs::write(dir.join("view_9.seg.tmp"), b"half a segment").unwrap();
    std::fs::write(dir.join("views.manifest.tmp"), b"half a manifest").unwrap();
    let eng = StorageEngine::new();
    let report = eng.load_views(&dir).unwrap();
    assert_eq!(report.tmp_cleaned, 2, "{report}");
    assert_eq!(report.loaded.len(), 3, "{report}");
    assert!(!dir.join("view_9.seg.tmp").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segment_listed_in_manifest_but_missing_quarantines() {
    let dir = unique_dir("missing_seg");
    saved_store(&dir);
    std::fs::remove_file(dir.join("view_2.seg")).unwrap();
    let eng = StorageEngine::new();
    let report = eng.load_views(&dir).unwrap();
    assert_eq!(report.loaded.len(), 2, "{report}");
    assert_eq!(report.quarantined.len(), 1, "{report}");
    assert!(report.quarantined[0].reason.contains("unreadable"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_directory_is_io_not_corrupt() {
    let eng = StorageEngine::new();
    let err = eng
        .load_views(Path::new("/definitely/not/a/real/dir"))
        .unwrap_err();
    assert_eq!(err.stage(), "io");
}

#[test]
fn whole_store_corrupt_yields_empty_engine_not_panic() {
    let dir = unique_dir("total_loss");
    saved_store(&dir);
    for entry in std::fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        std::fs::write(&p, b"\x00\x01garbage").unwrap();
    }
    let eng = StorageEngine::new();
    let report = eng.load_views(&dir).unwrap();
    assert!(report.manifest_fallback);
    assert!(report.loaded.is_empty(), "{report}");
    assert_eq!(report.quarantined.len(), 3, "{report}");
    assert_eq!(
        eng.view_defs().len(),
        0,
        "engine stays empty, not half-loaded"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
