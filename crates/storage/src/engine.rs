//! The storage engine: datasets, video tables, and the view store.
//!
//! The view store is built for concurrent sessions: views live behind
//! per-view locks in a sharded registry, so probes and appends on
//! different views never contend, and probes on the *same* view share a
//! read lock. Registry shards are only locked for the instant it takes to
//! look up a view's handle. Probe results are `Arc<[Row]>` — hits are
//! refcount bumps, never row copies.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eva_common::{
    Batch, Column, ColumnarBatch, CostCategory, DataType, EvaError, FailpointRegistry, Field,
    FrameId, MetricsSink, Result, Row, Schema, SimClock, SpanKind, TraceSink, Value, ViewId,
};
use eva_video::VideoDataset;

use crate::cost::IoCostModel;
use crate::recovery::RecoveryReport;
use crate::segment;
use crate::view::{MaterializedView, ViewDef, ViewKey, ViewKeyKind};

/// Number of registry shards. Sequential view ids round-robin across
/// shards, so concurrent sessions touching different views hit different
/// shard locks even before reaching the per-view locks.
const N_SHARDS: usize = 16;

/// The schema every loaded video table exposes:
/// `(id INT, timestamp INT, frame FRAME)`.
pub fn video_table_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("timestamp", DataType::Int),
        Field::new("frame", DataType::Frame),
    ])
    .expect("static schema is valid")
}

/// A view behind its own lock; handles are shared out of the registry so
/// operations on the view never hold a registry shard lock.
type ViewHandle = Arc<RwLock<MaterializedView>>;

/// One registry shard: view id → view handle.
type Shard = RwLock<BTreeMap<ViewId, ViewHandle>>;

/// Thread-safe storage engine. Cheap to clone (shared state).
#[derive(Debug, Clone, Default)]
pub struct StorageEngine {
    shared: Arc<Shared>,
    cost: IoCostModel,
}

#[derive(Debug)]
struct Shared {
    datasets: RwLock<BTreeMap<String, Arc<VideoDataset>>>,
    shards: [Shard; N_SHARDS],
    next_view_id: AtomicU64,
    /// Engine-wide observability counters. Shared by reference with the
    /// session and executor so storage-level traffic (rows read/written,
    /// frames scanned, shard contention) lands in the same snapshot as the
    /// reuse counters.
    metrics: MetricsSink,
    /// Deterministic fault-injection sites, armed from `EVA_FAILPOINTS` (or
    /// programmatically by chaos tests). Disarmed sites cost one atomic
    /// load on the persistence paths and nothing on the query paths.
    failpoints: FailpointRegistry,
    /// Engine-wide trace sink. Owned here (like the metrics sink) so the
    /// executor's operator spans, the shard-wait spans below and the
    /// segment-IO spans of the persistence path all land in one tree.
    trace: TraceSink,
}

impl Default for Shared {
    fn default() -> Shared {
        Shared {
            datasets: RwLock::new(BTreeMap::new()),
            shards: std::array::from_fn(|_| RwLock::new(BTreeMap::new())),
            next_view_id: AtomicU64::new(0),
            metrics: MetricsSink::new(),
            failpoints: FailpointRegistry::from_env(),
            trace: TraceSink::new(),
        }
    }
}

impl Shared {
    fn shard_of(&self, id: ViewId) -> &Shard {
        &self.shards[id.raw() as usize % N_SHARDS]
    }

    /// Look up a view's handle; the shard lock is released on return.
    /// A contended shard lock is counted before blocking (the only
    /// scheduling-dependent counter — see `MetricsSnapshot::deterministic`).
    fn view(&self, id: ViewId) -> Result<ViewHandle> {
        let shard = self.shard_of(id);
        let guard = match shard.try_read() {
            Some(g) => g,
            None => {
                self.metrics.note_shard_contention();
                let waited = std::time::Instant::now();
                let g = shard.read();
                self.trace.leaf(
                    SpanKind::ShardWait,
                    "registry_shard",
                    0.0,
                    waited.elapsed().as_nanos() as u64,
                    1,
                );
                g
            }
        };
        guard
            .get(&id)
            .cloned()
            .ok_or_else(|| EvaError::Storage(format!("unknown view {id}")))
    }
}

impl StorageEngine {
    /// New engine with the default IO cost model.
    pub fn new() -> StorageEngine {
        StorageEngine::default()
    }

    /// New engine with a custom IO cost model.
    pub fn with_cost_model(cost: IoCostModel) -> StorageEngine {
        StorageEngine {
            shared: Arc::default(),
            cost,
        }
    }

    /// The IO cost model in effect.
    pub fn cost_model(&self) -> &IoCostModel {
        &self.cost
    }

    /// The engine-wide metrics sink. Sessions share this sink so storage
    /// traffic and executor reuse counters land in one snapshot.
    pub fn metrics(&self) -> &MetricsSink {
        &self.shared.metrics
    }

    /// The engine-wide trace sink. The executor opens the per-query span
    /// tree through this handle; storage contributes shard-wait and
    /// segment-IO leaf spans to whichever query is active.
    pub fn trace(&self) -> &TraceSink {
        &self.shared.trace
    }

    /// The engine's fault-injection registry. The executor reaches retryable
    /// UDF failures through here too, so one registry (and one seed) governs
    /// a whole session's injected faults.
    pub fn failpoints(&self) -> &FailpointRegistry {
        &self.shared.failpoints
    }

    /// Register a synthetic video dataset (the `LOAD VIDEO` path).
    pub fn load_dataset(&self, dataset: VideoDataset) -> Arc<VideoDataset> {
        let ds = Arc::new(dataset);
        self.shared
            .datasets
            .write()
            .insert(ds.name().to_string(), Arc::clone(&ds));
        ds
    }

    /// Fetch a dataset by name.
    pub fn dataset(&self, name: &str) -> Result<Arc<VideoDataset>> {
        self.shared
            .datasets
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EvaError::Storage(format!("unknown dataset '{name}'")))
    }

    /// Scan a contiguous frame-id range `[from, to)` of a dataset into a
    /// batch of `(id, timestamp, frame)` rows, charging frame-read IO.
    pub fn scan_frames(
        &self,
        dataset: &str,
        from: u64,
        to: u64,
        clock: &SimClock,
    ) -> Result<Batch> {
        let ds = self.dataset(dataset)?;
        let to = to.min(ds.len());
        let schema = Arc::new(video_table_schema());
        if from >= to {
            return Ok(Batch::empty(schema));
        }
        let mut rows: Vec<Row> = Vec::with_capacity((to - from) as usize);
        for id in from..to {
            let f = ds
                .frame(FrameId(id))
                .ok_or_else(|| EvaError::Storage(format!("missing frame {id}")))?;
            rows.push(vec![
                Value::Int(id as i64),
                Value::Int(f.timestamp_ms),
                Value::Int(id as i64), // frame payload carried by reference
            ]);
        }
        clock.charge(
            CostCategory::ReadVideo,
            self.cost.frame_read_ms * rows.len() as f64,
        );
        self.shared.metrics.record_frames_scanned(rows.len() as u64);
        Ok(Batch::new(schema, rows))
    }

    /// Columnar variant of [`StorageEngine::scan_frames`]: the same
    /// `(id, timestamp, frame)` range as three contiguous all-valid `i64`
    /// arrays — no per-row `Vec<Value>` allocation. IO cost and the
    /// `frames_scanned` counter are charged identically, so swapping scan
    /// forms cannot move the cost model.
    pub fn scan_frames_columnar(
        &self,
        dataset: &str,
        from: u64,
        to: u64,
        clock: &SimClock,
    ) -> Result<ColumnarBatch> {
        let cb = self.scan_frames_columnar_uncharged(dataset, from, to)?;
        self.charge_frame_scan(cb.len() as u64, clock);
        Ok(cb)
    }

    /// The pure compute half of [`StorageEngine::scan_frames_columnar`]:
    /// builds the columnar batch without touching the clock or the metrics
    /// sink. Worker threads scan morsels through this; the **caller** replays
    /// the cost via [`StorageEngine::charge_frame_scan`], keeping every
    /// charge on the caller thread (module-level charging rule).
    pub fn scan_frames_columnar_uncharged(
        &self,
        dataset: &str,
        from: u64,
        to: u64,
    ) -> Result<ColumnarBatch> {
        let ds = self.dataset(dataset)?;
        let to = to.min(ds.len());
        let schema = Arc::new(video_table_schema());
        let n = to.saturating_sub(from) as usize;
        let mut ids = Vec::with_capacity(n);
        let mut timestamps = Vec::with_capacity(n);
        let mut frames = Vec::with_capacity(n);
        for id in from..to {
            let f = ds
                .frame(FrameId(id))
                .ok_or_else(|| EvaError::Storage(format!("missing frame {id}")))?;
            ids.push(id as i64);
            timestamps.push(f.timestamp_ms);
            frames.push(id as i64); // frame payload carried by reference
        }
        Ok(ColumnarBatch::new(
            schema,
            vec![
                Arc::new(Column::from_ints(ids)),
                Arc::new(Column::from_ints(timestamps)),
                Arc::new(Column::from_ints(frames)),
            ],
            n,
        ))
    }

    /// Replay the IO cost of `frames` scanned frames: charges `ReadVideo`
    /// and the `frames_scanned` counter exactly as the charged scan paths
    /// do. No-op at zero so empty ranges stay free in both forms.
    pub fn charge_frame_scan(&self, frames: u64, clock: &SimClock) {
        if frames > 0 {
            clock.charge(
                CostCategory::ReadVideo,
                self.cost.frame_read_ms * frames as f64,
            );
            self.shared.metrics.record_frames_scanned(frames);
        }
    }

    /// Partition the frame-id range `[from, to)` of a dataset into
    /// fixed-size morsels of at most `morsel_rows` frames each, clamped to
    /// the dataset length. Purely arithmetic and deterministic: the morsel
    /// list depends only on the range and the configured morsel size, never
    /// on worker scheduling — which is why `morsels_dispatched` can stay a
    /// deterministic counter. Each morsel scans independently via
    /// [`StorageEngine::scan_frames_columnar_uncharged`].
    ///
    /// Checks the query's cancellation token before partitioning, so a
    /// query cancelled before dispatch never fans out at all.
    pub fn scan_morsels(
        &self,
        dataset: &str,
        from: u64,
        to: u64,
        morsel_rows: u64,
        governor: &eva_common::QueryGovernor,
    ) -> Result<Vec<(u64, u64)>> {
        governor.check_token()?;
        debug_assert!(morsel_rows > 0, "morsel_rows must be positive");
        let ds = self.dataset(dataset)?;
        let to = to.min(ds.len());
        let step = morsel_rows.max(1);
        let mut morsels = Vec::new();
        let mut lo = from;
        while lo < to {
            let hi = (lo + step).min(to);
            morsels.push((lo, hi));
            lo = hi;
        }
        Ok(morsels)
    }

    /// Create a new, empty materialized view.
    pub fn create_view(
        &self,
        name: impl Into<String>,
        key_kind: ViewKeyKind,
        output_schema: Arc<Schema>,
    ) -> ViewId {
        let id = ViewId(self.shared.next_view_id.fetch_add(1, Ordering::Relaxed) + 1);
        let def = ViewDef {
            id,
            name: name.into(),
            key_kind,
            output_schema,
        };
        self.shared
            .shard_of(id)
            .write()
            .insert(id, Arc::new(RwLock::new(MaterializedView::new(def))));
        id
    }

    /// View metadata.
    pub fn view_def(&self, id: ViewId) -> Result<ViewDef> {
        Ok(self.shared.view(id)?.read().def().clone())
    }

    /// Number of materialized keys in a view.
    pub fn view_n_keys(&self, id: ViewId) -> Result<u64> {
        Ok(self.shared.view(id)?.read().n_keys())
    }

    /// Total output rows in a view.
    pub fn view_n_rows(&self, id: ViewId) -> Result<u64> {
        Ok(self.shared.view(id)?.read().n_rows())
    }

    /// Append result rows for a batch of keys (STORE operator), charging
    /// materialization IO. Entries are `Arc<[Row]>` so the caller can keep
    /// sharing the same rows it hands to the view (no copy on store).
    pub fn view_append(
        &self,
        id: ViewId,
        entries: Vec<(ViewKey, Arc<[Row]>)>,
        clock: &SimClock,
    ) -> Result<()> {
        let handle = self.shared.view(id)?;
        let mut view = match handle.try_write() {
            Some(g) => g,
            None => {
                self.shared.metrics.note_shard_contention();
                let waited = std::time::Instant::now();
                let g = handle.write();
                self.shared.trace.leaf(
                    SpanKind::ShardWait,
                    "view_write",
                    0.0,
                    waited.elapsed().as_nanos() as u64,
                    1,
                );
                g
            }
        };
        let mut written = 0usize;
        for (k, rows) in entries {
            written += rows.len().max(1);
            view.append(k, rows)?;
        }
        clock.charge(
            CostCategory::Materialize,
            self.cost.view_row_write_ms * written as f64,
        );
        self.shared.metrics.record_view_rows_written(written as u64);
        Ok(())
    }

    /// Probe a batch of keys against a view (the LEFT OUTER JOIN read path),
    /// charging `view_join_factor ×` the per-row read cost for probed keys,
    /// per Eq. 3's `3·C_M` model.
    ///
    /// Returns, per key, `Some(rows)` when materialized and `None` when
    /// missing (the conditional-APPLY guard then fires). Hits share the
    /// stored rows (`Arc` bump) — no per-row copies.
    #[allow(clippy::type_complexity)]
    pub fn view_probe(
        &self,
        id: ViewId,
        keys: &[ViewKey],
        clock: &SimClock,
    ) -> Result<Vec<Option<Arc<[Row]>>>> {
        let (out, rows_read) = self.view_probe_uncharged(id, keys)?;
        self.charge_view_read(rows_read, clock);
        Ok(out)
    }

    /// The probe itself, without touching a clock: returns per-key results
    /// plus the number of rows read. Lets callers fan a large probe out to
    /// worker threads (the clock is not `Sync`) and charge the summed row
    /// count once — integer summation keeps the simulated cost bit-identical
    /// to a serial probe.
    #[allow(clippy::type_complexity)]
    pub fn view_probe_uncharged(
        &self,
        id: ViewId,
        keys: &[ViewKey],
    ) -> Result<(Vec<Option<Arc<[Row]>>>, usize)> {
        let handle = self.shared.view(id)?;
        let view = handle.read();
        let mut out = Vec::with_capacity(keys.len());
        let mut rows_read = 0usize;
        for k in keys {
            match view.get(k) {
                Some(rows) => {
                    rows_read += rows.len().max(1);
                    out.push(Some(Arc::clone(rows)));
                }
                None => out.push(None),
            }
        }
        Ok((out, rows_read))
    }

    /// Charge the view-read IO for `rows_read` probed rows (the `3·C_M`
    /// model applied by [`StorageEngine::view_probe`]), and record them in
    /// the metrics sink. Probe hits are `Arc` clones of stored rows, so every
    /// row read here was also served zero-copy. Called on the *caller*
    /// thread, like every clock charge — uncharged worker probes report
    /// their row counts back and the caller invokes this once.
    pub fn charge_view_read(&self, rows_read: usize, clock: &SimClock) {
        clock.charge(
            CostCategory::ReadView,
            self.cost.view_join_factor * self.cost.view_row_read_ms * rows_read as f64,
        );
        self.shared.metrics.record_view_rows_read(rows_read as u64);
        self.shared.metrics.record_zero_copy_rows(rows_read as u64);
    }

    /// Fuzzy probe of a box-level view (§6 future work): highest-IoU stored
    /// box on the same frame. Charges view-read IO for the candidates
    /// scanned plus the matched rows.
    pub fn view_probe_fuzzy(
        &self,
        id: ViewId,
        frame: FrameId,
        bbox: &eva_common::BBox,
        min_iou: f32,
        clock: &SimClock,
    ) -> Result<Option<Arc<[Row]>>> {
        let handle = self.shared.view(id)?;
        let (rows, scanned) = handle.read().fuzzy_get(frame, bbox, min_iou);
        let matched = rows.as_ref().map(|r| r.len()).unwrap_or(0);
        let read = scanned + matched;
        clock.charge(
            CostCategory::ReadView,
            self.cost.view_row_read_ms * read as f64,
        );
        self.shared.metrics.record_view_rows_read(read as u64);
        self.shared.metrics.record_zero_copy_rows(matched as u64);
        Ok(rows)
    }

    /// Does the view contain the key? (No IO charge — membership is answered
    /// by the in-memory hash/index.)
    pub fn view_contains(&self, id: ViewId, key: &ViewKey) -> Result<bool> {
        Ok(self.shared.view(id)?.read().contains(key))
    }

    /// Total approximate bytes across all views (the storage-footprint
    /// metric of §5.2). O(number of views): each view keeps a running
    /// counter.
    pub fn total_view_bytes(&self) -> u64 {
        self.shared
            .shards
            .iter()
            .map(|shard| {
                shard
                    .read()
                    .values()
                    .map(|v| v.read().approx_bytes())
                    .sum::<u64>()
            })
            .sum()
    }

    /// Snapshot of all view definitions, in view-id order.
    pub fn view_defs(&self) -> Vec<ViewDef> {
        let mut defs: Vec<ViewDef> = self
            .shared
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .values()
                    .map(|v| v.read().def().clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        defs.sort_by_key(|d| d.id);
        defs
    }

    /// Drop every view (clean-state workload restarts).
    pub fn clear_views(&self) {
        for shard in &self.shared.shards {
            shard.write().clear();
        }
    }

    /// Persist all views to a directory as checksummed segment files (one
    /// per view, see [`segment`]), each written crash-safely via tmp-file +
    /// fsync + atomic rename. The manifest is written **last**, so a crash
    /// at any point leaves either the previous store or the new one —
    /// segments from the interrupted save self-validate and are picked up
    /// by the recovery scan. Datasets are *not* persisted — they regenerate
    /// from seeds.
    pub fn save_views(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        let fp = &self.shared.failpoints;
        let mut handles: Vec<(ViewId, ViewHandle)> = Vec::new();
        for shard in &self.shared.shards {
            for (id, handle) in shard.read().iter() {
                handles.push((*id, Arc::clone(handle)));
            }
        }
        handles.sort_by_key(|(id, _)| *id);
        let mut index = Vec::new();
        for (id, handle) in handles {
            let started = std::time::Instant::now();
            let name = segment::segment_file_name(id);
            let bytes = segment::encode_segment(&handle.read());
            let n_bytes = bytes.len() as u64;
            segment::write_atomic(dir, &name, &bytes, fp)?;
            self.shared.trace.leaf(
                SpanKind::SegmentIo,
                &name,
                0.0,
                started.elapsed().as_nanos() as u64,
                n_bytes,
            );
            index.push(id.raw());
        }
        let next_id = self.shared.next_view_id.load(Ordering::Relaxed);
        let manifest = segment::encode_manifest(next_id, &index);
        let started = std::time::Instant::now();
        let n_bytes = manifest.len() as u64;
        segment::write_atomic(dir, segment::MANIFEST_FILE, &manifest, fp)?;
        self.shared.trace.leaf(
            SpanKind::SegmentIo,
            segment::MANIFEST_FILE,
            0.0,
            started.elapsed().as_nanos() as u64,
            n_bytes,
        );
        Ok(())
    }

    /// Load views previously saved with [`StorageEngine::save_views`] — as a
    /// *recovery pass*: leftover `.tmp` files are removed, every segment's
    /// checksum and header are verified, and segments that fail validation
    /// are renamed aside (quarantined) instead of aborting the load. A
    /// quarantined view is simply cold: the planner's conditional-APPLY
    /// path recomputes it on demand. When the manifest itself is missing or
    /// damaged, the pass falls back to scanning the directory for segment
    /// files. A missing directory is still an `Io` error — there is nothing
    /// to recover from.
    pub fn load_views(&self, dir: &Path) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::new(dir);
        let mut seg_files: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(segment::TMP_SUFFIX) {
                // Leftover from a write that never reached its rename.
                if std::fs::remove_file(entry.path()).is_ok() {
                    report.tmp_cleaned += 1;
                }
            } else if let Some(raw) = segment::parse_segment_file_name(&name) {
                seg_files.push(raw);
            }
        }
        seg_files.sort_unstable();

        // Prefer the manifest; fall back to the directory scan when it is
        // absent or fails validation (e.g. the crash hit the manifest write).
        let mut next_id = 0u64;
        let ids = match std::fs::read(dir.join(segment::MANIFEST_FILE))
            .map_err(EvaError::from)
            .and_then(|bytes| segment::decode_manifest(&bytes))
        {
            Ok((next, ids)) => {
                next_id = next;
                ids
            }
            Err(_) => {
                report.manifest_fallback = true;
                seg_files.clone()
            }
        };

        for raw in ids {
            let id = ViewId(raw);
            let name = segment::segment_file_name(id);
            let path = dir.join(&name);
            let started = std::time::Instant::now();
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    report.quarantine(Some(id), path, format!("segment unreadable: {e}"));
                    continue;
                }
            };
            self.shared.trace.leaf(
                SpanKind::SegmentIo,
                &name,
                0.0,
                started.elapsed().as_nanos() as u64,
                bytes.len() as u64,
            );
            match segment::decode_segment(&bytes, Some(id)) {
                Ok(view) => {
                    self.shared
                        .shard_of(id)
                        .write()
                        .insert(id, Arc::new(RwLock::new(view)));
                    report.loaded.push(id);
                    next_id = next_id.max(raw);
                }
                Err(e) => {
                    let moved = segment::quarantine_file(&path);
                    report.quarantine(Some(id), moved, e.message().to_string());
                    next_id = next_id.max(raw);
                }
            }
        }
        self.shared
            .next_view_id
            .fetch_max(next_id, Ordering::Relaxed);
        self.shared
            .metrics
            .record_recovery(report.loaded.len() as u64, report.quarantined.len() as u64);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_video::generator::generate;
    use eva_video::VideoConfig;

    fn tiny_dataset(name: &str) -> VideoDataset {
        generate(VideoConfig {
            name: name.into(),
            n_frames: 100,
            width: 100,
            height: 100,
            fps: 25.0,
            target_density: 2.0,
            person_fraction: 0.0,
            seed: 5,
        })
    }

    fn out_schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![Field::new("label", DataType::Str)]).unwrap())
    }

    #[test]
    fn scan_charges_read_cost() {
        let eng = StorageEngine::new();
        eng.load_dataset(tiny_dataset("v"));
        let clock = SimClock::new();
        let b = eng.scan_frames("v", 10, 20, &clock).unwrap();
        assert_eq!(b.len(), 10);
        assert_eq!(b.value(0, "id").unwrap(), &Value::Int(10));
        assert!((clock.snapshot().get(CostCategory::ReadVideo) - 18.0).abs() < 1e-9);
        // Out-of-range scans clamp.
        let b = eng.scan_frames("v", 95, 200, &clock).unwrap();
        assert_eq!(b.len(), 5);
        let b = eng.scan_frames("v", 300, 400, &clock).unwrap();
        assert!(b.is_empty());
        assert!(eng.scan_frames("missing", 0, 1, &clock).is_err());
    }

    #[test]
    fn view_lifecycle_and_probe_costs() {
        let eng = StorageEngine::new();
        let clock = SimClock::new();
        let id = eng.create_view("det", ViewKeyKind::Frame, out_schema());
        let k0 = ViewKey::frame(FrameId(0));
        let k1 = ViewKey::frame(FrameId(1));
        eng.view_append(
            id,
            vec![(k0, vec![vec![Value::from("car")]].into())],
            &clock,
        )
        .unwrap();
        assert_eq!(eng.view_n_keys(id).unwrap(), 1);
        assert_eq!(eng.view_n_rows(id).unwrap(), 1);

        let probed = eng.view_probe(id, &[k0, k1], &clock).unwrap();
        assert!(probed[0].is_some());
        assert!(probed[1].is_none());
        let s = clock.snapshot();
        assert!(s.get(CostCategory::Materialize) > 0.0);
        assert!(s.get(CostCategory::ReadView) > 0.0);
        // Join factor of 3 applied to one row read at 0.05ms.
        assert!((s.get(CostCategory::ReadView) - 0.15).abs() < 1e-9);
    }

    #[test]
    fn probe_hits_share_stored_rows() {
        let eng = StorageEngine::new();
        let clock = SimClock::new();
        let id = eng.create_view("det", ViewKeyKind::Frame, out_schema());
        let k = ViewKey::frame(FrameId(0));
        eng.view_append(id, vec![(k, vec![vec![Value::from("car")]].into())], &clock)
            .unwrap();
        let a = eng.view_probe(id, &[k], &clock).unwrap();
        let b = eng.view_probe(id, &[k], &clock).unwrap();
        let (a, b) = (a[0].as_ref().unwrap(), b[0].as_ref().unwrap());
        assert!(Arc::ptr_eq(a, b), "probe hits must be zero-copy");
    }

    #[test]
    fn uncharged_probe_reports_rows_read() {
        let eng = StorageEngine::new();
        let clock = SimClock::new();
        let id = eng.create_view("det", ViewKeyKind::Frame, out_schema());
        let k0 = ViewKey::frame(FrameId(0));
        let k1 = ViewKey::frame(FrameId(1));
        eng.view_append(
            id,
            vec![(k0, vec![vec![Value::from("car")]].into())],
            &clock,
        )
        .unwrap();
        let before = clock.snapshot();
        let (out, rows_read) = eng.view_probe_uncharged(id, &[k0, k1]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(rows_read, 1);
        assert_eq!(
            clock.snapshot().get(CostCategory::ReadView),
            before.get(CostCategory::ReadView),
            "uncharged probe must not touch the clock"
        );
        eng.charge_view_read(rows_read, &clock);
        assert!((clock.snapshot().get(CostCategory::ReadView) - 0.15).abs() < 1e-9);
    }

    #[test]
    fn metrics_record_storage_traffic() {
        let eng = StorageEngine::new();
        eng.load_dataset(tiny_dataset("v"));
        let clock = SimClock::new();
        eng.scan_frames("v", 0, 10, &clock).unwrap();
        let id = eng.create_view("det", ViewKeyKind::Frame, out_schema());
        let k0 = ViewKey::frame(FrameId(0));
        let k1 = ViewKey::frame(FrameId(1));
        eng.view_append(
            id,
            vec![(k0, vec![vec![Value::from("car")]].into())],
            &clock,
        )
        .unwrap();
        eng.view_probe(id, &[k0, k1], &clock).unwrap();
        let m = eng.metrics().snapshot();
        assert_eq!(m.frames_scanned, 10);
        assert_eq!(m.view_rows_written, 1);
        assert_eq!(m.view_rows_read, 1);
        assert_eq!(m.rows_served_zero_copy, 1);
        eng.metrics().reset();
        assert_eq!(eng.metrics().snapshot(), Default::default());
    }

    #[test]
    fn unknown_view_errors() {
        let eng = StorageEngine::new();
        let clock = SimClock::new();
        assert!(eng.view_probe(ViewId(99), &[], &clock).is_err());
        assert!(eng.view_n_keys(ViewId(99)).is_err());
        assert!(eng.view_append(ViewId(99), vec![], &clock).is_err());
    }

    #[test]
    fn footprint_accumulates_across_views() {
        let eng = StorageEngine::new();
        let clock = SimClock::new();
        let a = eng.create_view("a", ViewKeyKind::Frame, out_schema());
        let b = eng.create_view("b", ViewKeyKind::Frame, out_schema());
        eng.view_append(
            a,
            vec![(
                ViewKey::frame(FrameId(0)),
                vec![vec![Value::from("car")]].into(),
            )],
            &clock,
        )
        .unwrap();
        eng.view_append(
            b,
            vec![(
                ViewKey::frame(FrameId(0)),
                vec![vec![Value::from("bus")]].into(),
            )],
            &clock,
        )
        .unwrap();
        assert!(eng.total_view_bytes() > 0);
        assert_eq!(eng.view_defs().len(), 2);
        eng.clear_views();
        assert_eq!(eng.total_view_bytes(), 0);
    }

    #[test]
    fn view_ids_are_unique_across_threads() {
        let eng = StorageEngine::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let eng = eng.clone();
            handles.push(std::thread::spawn(move || {
                (0..32)
                    .map(|i| eng.create_view(format!("v{i}"), ViewKeyKind::Frame, out_schema()))
                    .collect::<Vec<_>>()
            }));
        }
        let mut ids: Vec<ViewId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        ids.sort();
        ids.dedup();
        assert_eq!(
            ids.len(),
            4 * 32,
            "concurrent create_view must not reuse ids"
        );
        assert_eq!(eng.view_defs().len(), 4 * 32);
    }

    #[test]
    fn persistence_round_trip() {
        let dir = eva_common::testutil::unique_temp_dir("engine_persistence_round_trip");
        let eng = StorageEngine::new();
        let clock = SimClock::new();
        let id = eng.create_view("det", ViewKeyKind::Frame, out_schema());
        eng.view_append(
            id,
            vec![(
                ViewKey::frame(FrameId(7)),
                vec![vec![Value::from("car")]].into(),
            )],
            &clock,
        )
        .unwrap();
        eng.save_views(&dir).unwrap();

        let eng2 = StorageEngine::new();
        eng2.load_views(&dir).unwrap();
        assert_eq!(eng2.view_n_keys(id).unwrap(), 1);
        let probed = eng2
            .view_probe(id, &[ViewKey::frame(FrameId(7))], &clock)
            .unwrap();
        assert_eq!(probed[0].as_ref().unwrap()[0][0], Value::from("car"));
        // New views get fresh ids after load.
        let id2 = eng2.create_view("x", ViewKeyKind::Frame, out_schema());
        assert!(id2.raw() > id.raw());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
