//! Recovery reporting for the view store.
//!
//! `load_views` is a *recovery pass*, not a plain load: it validates every
//! segment, quarantines the ones that fail, and keeps going. The outcome is
//! captured in a [`RecoveryReport`] so sessions (and the repl's `\health`
//! command) can tell the operator exactly what survived a crash. A
//! quarantined view is not an error condition — it is simply cold, and the
//! planner's conditional-APPLY path recomputes and re-materializes it on
//! the next query that needs it.

use std::fmt;
use std::path::{Path, PathBuf};

use eva_common::ViewId;

/// One segment the recovery pass refused to load.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedSegment {
    /// The view id, when it could be determined from the file name.
    pub view_id: Option<ViewId>,
    /// Where the damaged bytes now live (the `.quarantined` path, or the
    /// original path when the file could not be moved aside).
    pub path: PathBuf,
    /// Why validation failed (checksum mismatch, truncation, bad magic…).
    pub reason: String,
}

/// What a [`load_views`](crate::StorageEngine::load_views) recovery pass
/// found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The store directory the pass ran over.
    pub dir: PathBuf,
    /// Views that validated and were installed, in id order.
    pub loaded: Vec<ViewId>,
    /// Segments that failed validation and were quarantined.
    pub quarantined: Vec<QuarantinedSegment>,
    /// Leftover `.tmp` files from interrupted writes that were removed.
    pub tmp_cleaned: usize,
    /// True when the manifest was missing or damaged and the pass fell back
    /// to scanning the directory for segments.
    pub manifest_fallback: bool,
    /// Note about the UDF-manager state (set by the session layer): `None`
    /// while the manager state loaded cleanly.
    pub manager_note: Option<String>,
}

impl RecoveryReport {
    /// An empty report for a directory.
    pub fn new(dir: &Path) -> RecoveryReport {
        RecoveryReport {
            dir: dir.to_path_buf(),
            loaded: Vec::new(),
            quarantined: Vec::new(),
            tmp_cleaned: 0,
            manifest_fallback: false,
            manager_note: None,
        }
    }

    /// True when nothing was quarantined, cleaned or worked around.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.tmp_cleaned == 0
            && !self.manifest_fallback
            && self.manager_note.is_none()
    }

    /// Record a quarantined segment.
    pub fn quarantine(&mut self, view_id: Option<ViewId>, path: PathBuf, reason: String) {
        self.quarantined.push(QuarantinedSegment {
            view_id,
            path,
            reason,
        });
    }

    /// Human-readable multi-line summary (what `\health` and `\load` print).
    pub fn summary(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store {}: {} view{} loaded, {} quarantined",
            self.dir.display(),
            self.loaded.len(),
            if self.loaded.len() == 1 { "" } else { "s" },
            self.quarantined.len(),
        )?;
        if self.tmp_cleaned > 0 {
            write!(f, ", {} tmp file(s) cleaned", self.tmp_cleaned)?;
        }
        if self.manifest_fallback {
            write!(
                f,
                ", manifest missing/damaged — recovered by directory scan"
            )?;
        }
        for q in &self.quarantined {
            let id = q
                .view_id
                .map(|v| v.to_string())
                .unwrap_or_else(|| "?".into());
            write!(
                f,
                "\n  quarantined {} ({}): {}",
                id,
                q.path.display(),
                q.reason
            )?;
        }
        if let Some(note) = &self.manager_note {
            write!(f, "\n  manager: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_summary() {
        let mut r = RecoveryReport::new(Path::new("/tmp/store"));
        r.loaded.push(ViewId(1));
        assert!(r.is_clean());
        assert_eq!(
            r.summary(),
            "store /tmp/store: 1 view loaded, 0 quarantined"
        );
    }

    #[test]
    fn dirty_report_lists_everything() {
        let mut r = RecoveryReport::new(Path::new("/tmp/store"));
        r.loaded.push(ViewId(1));
        r.loaded.push(ViewId(3));
        r.quarantine(
            Some(ViewId(2)),
            PathBuf::from("/tmp/store/view_2.seg.quarantined"),
            "checksum mismatch".into(),
        );
        r.tmp_cleaned = 1;
        r.manifest_fallback = true;
        r.manager_note = Some("state corrupt — starting cold".into());
        assert!(!r.is_clean());
        let s = r.summary();
        assert!(s.contains("2 views loaded, 1 quarantined"), "{s}");
        assert!(s.contains("1 tmp file(s) cleaned"), "{s}");
        assert!(s.contains("directory scan"), "{s}");
        assert!(s.contains("view_2.seg.quarantined"), "{s}");
        assert!(s.contains("checksum mismatch"), "{s}");
        assert!(s.contains("manager: state corrupt"), "{s}");
    }
}
