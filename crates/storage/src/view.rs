//! Materialized views of UDF results.
//!
//! A view is keyed by the identity of the UDF's input tuple:
//! * frame-level UDFs (object detectors) key on the frame id;
//! * box-level UDFs (CarType, ColorDet, License, Area) key on
//!   `(frame id, quantized bbox)` — two different detectors produce
//!   different boxes, so their downstream results do not collide.
//!
//! Each key maps to the *list* of output rows the UDF produced for that
//! input (a detector emits one row per detected object, possibly zero —
//! which still records "this frame was processed").
//!
//! Entries are stored as `Arc<[Row]>` so probe hits hand back a refcount
//! bump instead of deep-copying every row — the zero-copy half of the
//! reuse hot path. Probes go through a hash index (O(1) per key); box-level
//! views additionally keep a per-frame secondary index so fuzzy probes scan
//! only the boxes stored on the probed frame.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

use eva_common::{BBox, EvaError, FrameId, Result, Row, Schema, ViewId};

/// The kind of key a view uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViewKeyKind {
    /// Keyed by frame id (frame-level UDFs).
    Frame,
    /// Keyed by (frame id, quantized bbox) (box-level UDFs).
    FrameBox,
}

/// A concrete view key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ViewKey {
    /// Frame-level key.
    Frame(u64),
    /// Box-level key (frame id + quantized box corners).
    FrameBox(u64, [u16; 4]),
}

impl ViewKey {
    /// Build a frame key.
    pub fn frame(id: FrameId) -> ViewKey {
        ViewKey::Frame(id.raw())
    }

    /// Build a frame+box key (box is quantized via [`BBox::key`]).
    pub fn frame_box(id: FrameId, bbox: &BBox) -> ViewKey {
        ViewKey::FrameBox(id.raw(), bbox.key())
    }

    /// Which kind of key this is.
    pub fn kind(&self) -> ViewKeyKind {
        match self {
            ViewKey::Frame(_) => ViewKeyKind::Frame,
            ViewKey::FrameBox(..) => ViewKeyKind::FrameBox,
        }
    }

    /// The frame id component.
    pub fn frame_id(&self) -> FrameId {
        match self {
            ViewKey::Frame(f) | ViewKey::FrameBox(f, _) => FrameId(*f),
        }
    }
}

/// View metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewDef {
    /// View id assigned by the storage engine.
    pub id: ViewId,
    /// Owner UDF signature rendering (for introspection).
    pub name: String,
    /// Key kind.
    pub key_kind: ViewKeyKind,
    /// Schema of the stored output rows.
    pub output_schema: Arc<Schema>,
}

/// A materialized view: key → output rows (shared, immutable per key).
///
/// Serialized through [`ViewSnapshot`] because JSON object keys must be
/// strings while view keys are structured; snapshots list entries in key
/// order so the on-disk format stays deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(into = "ViewSnapshot", from = "ViewSnapshot")]
pub struct MaterializedView {
    def: ViewDef,
    data: HashMap<ViewKey, Arc<[Row]>>,
    /// Box-level views only: frame id → keys stored on that frame, sorted.
    /// Sorted order preserves the tie-breaking the old full-index range scan
    /// had (first key in key order wins among equal-IoU candidates).
    by_frame: HashMap<u64, Vec<ViewKey>>,
    total_rows: u64,
    approx_bytes: u64,
}

/// Flat, JSON-friendly encoding of a [`MaterializedView`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViewSnapshot {
    def: ViewDef,
    entries: Vec<(ViewKey, Vec<Row>)>,
}

impl From<MaterializedView> for ViewSnapshot {
    fn from(v: MaterializedView) -> ViewSnapshot {
        let mut entries: Vec<(ViewKey, Vec<Row>)> = v
            .data
            .into_iter()
            .map(|(k, rows)| (k, rows.to_vec()))
            .collect();
        entries.sort_by_key(|(k, _)| *k);
        ViewSnapshot {
            def: v.def,
            entries,
        }
    }
}

impl From<ViewSnapshot> for MaterializedView {
    fn from(s: ViewSnapshot) -> MaterializedView {
        let mut view = MaterializedView::new(s.def);
        for (key, rows) in s.entries {
            // Snapshots were written by `append`, so re-appending cannot
            // violate the key-kind invariant; ignore rather than panic.
            let _ = view.append(key, rows.into());
        }
        view
    }
}

/// Serialized size of one entry: key bytes plus each value's byte encoding.
fn entry_bytes(key: &ViewKey, rows: &[Row]) -> u64 {
    let key_bytes: u64 = match key {
        ViewKey::Frame(_) => 8,
        ViewKey::FrameBox(..) => 16,
    };
    key_bytes
        + rows
            .iter()
            .flat_map(|row| row.iter())
            .map(|v| v.encoded_len() as u64)
            .sum::<u64>()
}

impl MaterializedView {
    /// New empty view.
    pub fn new(def: ViewDef) -> MaterializedView {
        MaterializedView {
            def,
            data: HashMap::new(),
            by_frame: HashMap::new(),
            total_rows: 0,
            approx_bytes: 0,
        }
    }

    /// View metadata.
    pub fn def(&self) -> &ViewDef {
        &self.def
    }

    /// Number of distinct keys materialized.
    pub fn n_keys(&self) -> u64 {
        self.data.len() as u64
    }

    /// Total stored output rows.
    pub fn n_rows(&self) -> u64 {
        self.total_rows
    }

    /// Is the key materialized? (Zero output rows still counts: the UDF ran
    /// and produced nothing.)
    pub fn contains(&self, key: &ViewKey) -> bool {
        self.data.contains_key(key)
    }

    /// Output rows for a key, if materialized. Cloning the returned `Arc`
    /// shares the rows without copying them.
    pub fn get(&self, key: &ViewKey) -> Option<&Arc<[Row]>> {
        self.data.get(key)
    }

    /// Record the UDF's output rows for a key. Re-appending an existing key
    /// is a no-op (results are deterministic per input), which makes STORE
    /// idempotent under plan retries.
    pub fn append(&mut self, key: ViewKey, rows: Arc<[Row]>) -> Result<()> {
        if key.kind() != self.def.key_kind {
            return Err(EvaError::Storage(format!(
                "key kind mismatch appending to view '{}'",
                self.def.name
            )));
        }
        debug_assert!(
            rows.iter().all(|r| r.len() == self.def.output_schema.len()),
            "row arity mismatch in view '{}'",
            self.def.name
        );
        if let std::collections::hash_map::Entry::Vacant(e) = self.data.entry(key) {
            self.total_rows += rows.len() as u64;
            self.approx_bytes += entry_bytes(&key, &rows);
            if let ViewKey::FrameBox(frame, _) = key {
                let keys = self.by_frame.entry(frame).or_default();
                if let Err(pos) = keys.binary_search(&key) {
                    keys.insert(pos, key);
                }
            }
            e.insert(rows);
        }
        Ok(())
    }

    /// Iterate all entries (order unspecified — the store is a hash index).
    pub fn iter(&self) -> impl Iterator<Item = (&ViewKey, &Arc<[Row]>)> {
        self.data.iter()
    }

    /// Fuzzy lookup for box-level views (§6 future work): find the stored
    /// box on the same frame with the highest IoU against `bbox`, if it
    /// clears `min_iou`. Returns the matched rows and the number of
    /// candidate keys scanned (for IO accounting). Only the boxes indexed
    /// under `frame` are scanned, not the whole view.
    pub fn fuzzy_get(
        &self,
        frame: FrameId,
        bbox: &BBox,
        min_iou: f32,
    ) -> (Option<Arc<[Row]>>, usize) {
        debug_assert_eq!(self.def.key_kind, ViewKeyKind::FrameBox);
        let Some(candidates) = self.by_frame.get(&frame.raw()) else {
            return (None, 0);
        };
        let mut best: Option<(&ViewKey, f32)> = None;
        let mut scanned = 0usize;
        for key in candidates {
            scanned += 1;
            let ViewKey::FrameBox(_, corners) = key else {
                continue;
            };
            let stored = BBox::from_key(*corners);
            let iou = stored.iou(bbox);
            if iou >= min_iou && best.map(|(_, b)| iou > b).unwrap_or(true) {
                best = Some((key, iou));
            }
        }
        let rows =
            best.map(|(key, _)| Arc::clone(self.data.get(key).expect("frame index out of sync")));
        (rows, scanned)
    }

    /// Approximate storage footprint in bytes (the Table "storage overhead"
    /// metric): serialized key + values. O(1) — maintained incrementally by
    /// [`MaterializedView::append`].
    pub fn approx_bytes(&self) -> u64 {
        self.approx_bytes
    }

    /// Remove everything (used when workloads restart from a clean state).
    pub fn clear(&mut self) {
        self.data.clear();
        self.by_frame.clear();
        self.total_rows = 0;
        self.approx_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::{DataType, Field, Value};

    fn demo_view(kind: ViewKeyKind) -> MaterializedView {
        MaterializedView::new(ViewDef {
            id: ViewId(1),
            name: "objectdetector(frame)".into(),
            key_kind: kind,
            output_schema: Arc::new(
                Schema::new(vec![
                    Field::new("label", DataType::Str),
                    Field::new("score", DataType::Float),
                ])
                .unwrap(),
            ),
        })
    }

    #[test]
    fn append_and_get() {
        let mut v = demo_view(ViewKeyKind::Frame);
        let key = ViewKey::frame(FrameId(3));
        v.append(
            key,
            vec![vec![Value::from("car"), Value::Float(0.9)]].into(),
        )
        .unwrap();
        assert!(v.contains(&key));
        assert_eq!(v.get(&key).unwrap().len(), 1);
        assert_eq!(v.n_keys(), 1);
        assert_eq!(v.n_rows(), 1);
        assert!(!v.contains(&ViewKey::frame(FrameId(4))));
    }

    #[test]
    fn get_shares_rows_without_copying() {
        let mut v = demo_view(ViewKeyKind::Frame);
        let key = ViewKey::frame(FrameId(3));
        v.append(
            key,
            vec![vec![Value::from("car"), Value::Float(0.9)]].into(),
        )
        .unwrap();
        let a = Arc::clone(v.get(&key).unwrap());
        let b = Arc::clone(v.get(&key).unwrap());
        assert!(Arc::ptr_eq(&a, &b), "hits must share one allocation");
    }

    #[test]
    fn empty_result_still_marks_processed() {
        let mut v = demo_view(ViewKeyKind::Frame);
        let key = ViewKey::frame(FrameId(9));
        v.append(key, vec![].into()).unwrap();
        assert!(v.contains(&key));
        assert_eq!(v.get(&key).unwrap().len(), 0);
        assert_eq!(v.n_rows(), 0);
    }

    #[test]
    fn reappend_is_idempotent() {
        let mut v = demo_view(ViewKeyKind::Frame);
        let key = ViewKey::frame(FrameId(1));
        v.append(
            key,
            vec![vec![Value::from("car"), Value::Float(0.9)]].into(),
        )
        .unwrap();
        let bytes = v.approx_bytes();
        v.append(
            key,
            vec![vec![Value::from("bus"), Value::Float(0.5)]].into(),
        )
        .unwrap();
        assert_eq!(v.n_rows(), 1);
        assert_eq!(v.approx_bytes(), bytes, "no-op append leaves bytes alone");
        assert_eq!(v.get(&key).unwrap()[0][0], Value::from("car"));
    }

    #[test]
    fn key_kind_enforced() {
        let mut v = demo_view(ViewKeyKind::Frame);
        let bad = ViewKey::frame_box(FrameId(0), &BBox::new(0.0, 0.0, 0.1, 0.1));
        assert!(v.append(bad, vec![].into()).is_err());
    }

    #[test]
    fn frame_box_keys_distinguish_boxes() {
        let mut v = demo_view(ViewKeyKind::FrameBox);
        let b1 = BBox::new(0.0, 0.0, 0.1, 0.1);
        let b2 = BBox::new(0.5, 0.5, 0.9, 0.9);
        v.append(ViewKey::frame_box(FrameId(0), &b1), vec![].into())
            .unwrap();
        assert!(v.contains(&ViewKey::frame_box(FrameId(0), &b1)));
        assert!(!v.contains(&ViewKey::frame_box(FrameId(0), &b2)));
        assert!(!v.contains(&ViewKey::frame_box(FrameId(1), &b1)));
    }

    #[test]
    fn fuzzy_get_scans_only_the_probed_frame() {
        let mut v = demo_view(ViewKeyKind::FrameBox);
        let near = BBox::new(0.10, 0.10, 0.40, 0.40);
        let far = BBox::new(0.60, 0.60, 0.90, 0.90);
        v.append(
            ViewKey::frame_box(FrameId(0), &near),
            vec![vec![Value::from("near"), Value::Float(1.0)]].into(),
        )
        .unwrap();
        v.append(
            ViewKey::frame_box(FrameId(0), &far),
            vec![vec![Value::from("far"), Value::Float(1.0)]].into(),
        )
        .unwrap();
        v.append(
            ViewKey::frame_box(FrameId(5), &near),
            vec![vec![Value::from("other-frame"), Value::Float(1.0)]].into(),
        )
        .unwrap();

        let probe = BBox::new(0.11, 0.11, 0.41, 0.41);
        let (hit, scanned) = v.fuzzy_get(FrameId(0), &probe, 0.5);
        assert_eq!(hit.unwrap()[0][0], Value::from("near"));
        assert_eq!(scanned, 2, "only frame 0's boxes are candidates");

        let (miss, scanned) = v.fuzzy_get(FrameId(7), &probe, 0.5);
        assert!(miss.is_none());
        assert_eq!(scanned, 0, "unindexed frames scan nothing");
    }

    #[test]
    fn approx_bytes_grows_and_matches_encoding() {
        let mut v = demo_view(ViewKeyKind::Frame);
        assert_eq!(v.approx_bytes(), 0);
        let rows = vec![vec![Value::from("car"), Value::Float(0.9)]];
        v.append(ViewKey::frame(FrameId(0)), rows.clone().into())
            .unwrap();
        // Running counter must equal the serialized size: 8 key bytes plus
        // each value's write_bytes encoding.
        let mut expected = 8u64;
        for row in &rows {
            for val in row {
                let mut buf = Vec::new();
                val.write_bytes(&mut buf);
                expected += buf.len() as u64;
            }
        }
        assert_eq!(v.approx_bytes(), expected);
    }

    #[test]
    fn clear_resets() {
        let mut v = demo_view(ViewKeyKind::Frame);
        v.append(ViewKey::frame(FrameId(0)), vec![].into()).unwrap();
        v.clear();
        assert_eq!(v.n_keys(), 0);
        assert_eq!(v.n_rows(), 0);
        assert_eq!(v.approx_bytes(), 0);
    }

    #[test]
    fn key_ordering_by_frame() {
        let k1 = ViewKey::frame(FrameId(1));
        let k2 = ViewKey::frame(FrameId(2));
        assert!(k1 < k2);
        assert_eq!(k1.frame_id(), FrameId(1));
        let kb = ViewKey::frame_box(FrameId(7), &BBox::new(0.0, 0.0, 0.1, 0.1));
        assert_eq!(kb.frame_id(), FrameId(7));
        assert_eq!(kb.kind(), ViewKeyKind::FrameBox);
    }

    #[test]
    fn snapshot_round_trip_preserves_counters() {
        let mut v = demo_view(ViewKeyKind::FrameBox);
        let b1 = BBox::new(0.0, 0.0, 0.1, 0.1);
        v.append(
            ViewKey::frame_box(FrameId(2), &b1),
            vec![vec![Value::from("car"), Value::Float(0.9)]].into(),
        )
        .unwrap();
        let bytes = crate::segment::encode_segment(&v);
        let back = crate::segment::decode_segment(&bytes, Some(ViewId(1))).unwrap();
        assert_eq!(back.n_keys(), v.n_keys());
        assert_eq!(back.n_rows(), v.n_rows());
        assert_eq!(back.approx_bytes(), v.approx_bytes());
        let (hit, _) = back.fuzzy_get(FrameId(2), &b1, 0.9);
        assert!(hit.is_some(), "frame index rebuilt on load");
    }
}
