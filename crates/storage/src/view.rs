//! Materialized views of UDF results.
//!
//! A view is keyed by the identity of the UDF's input tuple:
//! * frame-level UDFs (object detectors) key on the frame id;
//! * box-level UDFs (CarType, ColorDet, License, Area) key on
//!   `(frame id, quantized bbox)` — two different detectors produce
//!   different boxes, so their downstream results do not collide.
//!
//! Each key maps to the *list* of output rows the UDF produced for that
//! input (a detector emits one row per detected object, possibly zero —
//! which still records "this frame was processed").

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

use eva_common::{BBox, EvaError, FrameId, Result, Row, Schema, ViewId};

/// The kind of key a view uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViewKeyKind {
    /// Keyed by frame id (frame-level UDFs).
    Frame,
    /// Keyed by (frame id, quantized bbox) (box-level UDFs).
    FrameBox,
}

/// A concrete view key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ViewKey {
    /// Frame-level key.
    Frame(u64),
    /// Box-level key (frame id + quantized box corners).
    FrameBox(u64, [u16; 4]),
}

impl ViewKey {
    /// Build a frame key.
    pub fn frame(id: FrameId) -> ViewKey {
        ViewKey::Frame(id.raw())
    }

    /// Build a frame+box key (box is quantized via [`BBox::key`]).
    pub fn frame_box(id: FrameId, bbox: &BBox) -> ViewKey {
        ViewKey::FrameBox(id.raw(), bbox.key())
    }

    /// Which kind of key this is.
    pub fn kind(&self) -> ViewKeyKind {
        match self {
            ViewKey::Frame(_) => ViewKeyKind::Frame,
            ViewKey::FrameBox(..) => ViewKeyKind::FrameBox,
        }
    }

    /// The frame id component.
    pub fn frame_id(&self) -> FrameId {
        match self {
            ViewKey::Frame(f) | ViewKey::FrameBox(f, _) => FrameId(*f),
        }
    }
}

/// View metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewDef {
    /// View id assigned by the storage engine.
    pub id: ViewId,
    /// Owner UDF signature rendering (for introspection).
    pub name: String,
    /// Key kind.
    pub key_kind: ViewKeyKind,
    /// Schema of the stored output rows.
    pub output_schema: Arc<Schema>,
}

/// A materialized view: key → output rows.
///
/// Serialized through [`ViewSnapshot`] because JSON object keys must be
/// strings while view keys are structured.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(into = "ViewSnapshot", from = "ViewSnapshot")]
pub struct MaterializedView {
    def: ViewDef,
    data: BTreeMap<ViewKey, Vec<Row>>,
    total_rows: u64,
}

/// Flat, JSON-friendly encoding of a [`MaterializedView`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViewSnapshot {
    def: ViewDef,
    entries: Vec<(ViewKey, Vec<Row>)>,
}

impl From<MaterializedView> for ViewSnapshot {
    fn from(v: MaterializedView) -> ViewSnapshot {
        ViewSnapshot {
            def: v.def,
            entries: v.data.into_iter().collect(),
        }
    }
}

impl From<ViewSnapshot> for MaterializedView {
    fn from(s: ViewSnapshot) -> MaterializedView {
        let total_rows = s.entries.iter().map(|(_, rows)| rows.len() as u64).sum();
        MaterializedView {
            def: s.def,
            data: s.entries.into_iter().collect(),
            total_rows,
        }
    }
}

impl MaterializedView {
    /// New empty view.
    pub fn new(def: ViewDef) -> MaterializedView {
        MaterializedView {
            def,
            data: BTreeMap::new(),
            total_rows: 0,
        }
    }

    /// View metadata.
    pub fn def(&self) -> &ViewDef {
        &self.def
    }

    /// Number of distinct keys materialized.
    pub fn n_keys(&self) -> u64 {
        self.data.len() as u64
    }

    /// Total stored output rows.
    pub fn n_rows(&self) -> u64 {
        self.total_rows
    }

    /// Is the key materialized? (Zero output rows still counts: the UDF ran
    /// and produced nothing.)
    pub fn contains(&self, key: &ViewKey) -> bool {
        self.data.contains_key(key)
    }

    /// Output rows for a key, if materialized.
    pub fn get(&self, key: &ViewKey) -> Option<&[Row]> {
        self.data.get(key).map(|v| v.as_slice())
    }

    /// Record the UDF's output rows for a key. Re-appending an existing key
    /// is a no-op (results are deterministic per input), which makes STORE
    /// idempotent under plan retries.
    pub fn append(&mut self, key: ViewKey, rows: Vec<Row>) -> Result<()> {
        if key.kind() != self.def.key_kind {
            return Err(EvaError::Storage(format!(
                "key kind mismatch appending to view '{}'",
                self.def.name
            )));
        }
        debug_assert!(
            rows.iter().all(|r| r.len() == self.def.output_schema.len()),
            "row arity mismatch in view '{}'",
            self.def.name
        );
        if let std::collections::btree_map::Entry::Vacant(e) = self.data.entry(key) {
            self.total_rows += rows.len() as u64;
            e.insert(rows);
        }
        Ok(())
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&ViewKey, &Vec<Row>)> {
        self.data.iter()
    }

    /// Fuzzy lookup for box-level views (§6 future work): find the stored
    /// box on the same frame with the highest IoU against `bbox`, if it
    /// clears `min_iou`. Returns the matched rows and the number of
    /// candidate keys scanned (for IO accounting).
    pub fn fuzzy_get(&self, frame: FrameId, bbox: &BBox, min_iou: f32) -> (Option<&[Row]>, usize) {
        debug_assert_eq!(self.def.key_kind, ViewKeyKind::FrameBox);
        let lo = ViewKey::FrameBox(frame.raw(), [0; 4]);
        let hi = ViewKey::FrameBox(frame.raw(), [u16::MAX; 4]);
        let mut best: Option<(&Vec<Row>, f32)> = None;
        let mut scanned = 0usize;
        for (key, rows) in self.data.range(lo..=hi) {
            scanned += 1;
            let ViewKey::FrameBox(_, corners) = key else { continue };
            let stored = BBox::new(
                corners[0] as f32 / 10_000.0,
                corners[1] as f32 / 10_000.0,
                corners[2] as f32 / 10_000.0,
                corners[3] as f32 / 10_000.0,
            );
            let iou = stored.iou(bbox);
            if iou >= min_iou && best.map(|(_, b)| iou > b).unwrap_or(true) {
                best = Some((rows, iou));
            }
        }
        (best.map(|(r, _)| r.as_slice()), scanned)
    }

    /// Approximate storage footprint in bytes (the Table "storage overhead"
    /// metric): serialized key + values.
    pub fn approx_bytes(&self) -> u64 {
        let mut total = 0u64;
        for (k, rows) in &self.data {
            total += match k {
                ViewKey::Frame(_) => 8,
                ViewKey::FrameBox(..) => 16,
            };
            for row in rows {
                for v in row {
                    let mut buf = Vec::new();
                    v.write_bytes(&mut buf);
                    total += buf.len() as u64;
                }
            }
        }
        total
    }

    /// Remove everything (used when workloads restart from a clean state).
    pub fn clear(&mut self) {
        self.data.clear();
        self.total_rows = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::{DataType, Field, Value};

    fn demo_view(kind: ViewKeyKind) -> MaterializedView {
        MaterializedView::new(ViewDef {
            id: ViewId(1),
            name: "objectdetector(frame)".into(),
            key_kind: kind,
            output_schema: Arc::new(
                Schema::new(vec![
                    Field::new("label", DataType::Str),
                    Field::new("score", DataType::Float),
                ])
                .unwrap(),
            ),
        })
    }

    #[test]
    fn append_and_get() {
        let mut v = demo_view(ViewKeyKind::Frame);
        let key = ViewKey::frame(FrameId(3));
        v.append(key, vec![vec![Value::from("car"), Value::Float(0.9)]])
            .unwrap();
        assert!(v.contains(&key));
        assert_eq!(v.get(&key).unwrap().len(), 1);
        assert_eq!(v.n_keys(), 1);
        assert_eq!(v.n_rows(), 1);
        assert!(!v.contains(&ViewKey::frame(FrameId(4))));
    }

    #[test]
    fn empty_result_still_marks_processed() {
        let mut v = demo_view(ViewKeyKind::Frame);
        let key = ViewKey::frame(FrameId(9));
        v.append(key, vec![]).unwrap();
        assert!(v.contains(&key));
        assert_eq!(v.get(&key).unwrap().len(), 0);
        assert_eq!(v.n_rows(), 0);
    }

    #[test]
    fn reappend_is_idempotent() {
        let mut v = demo_view(ViewKeyKind::Frame);
        let key = ViewKey::frame(FrameId(1));
        v.append(key, vec![vec![Value::from("car"), Value::Float(0.9)]])
            .unwrap();
        v.append(key, vec![vec![Value::from("bus"), Value::Float(0.5)]])
            .unwrap();
        assert_eq!(v.n_rows(), 1);
        assert_eq!(v.get(&key).unwrap()[0][0], Value::from("car"));
    }

    #[test]
    fn key_kind_enforced() {
        let mut v = demo_view(ViewKeyKind::Frame);
        let bad = ViewKey::frame_box(FrameId(0), &BBox::new(0.0, 0.0, 0.1, 0.1));
        assert!(v.append(bad, vec![]).is_err());
    }

    #[test]
    fn frame_box_keys_distinguish_boxes() {
        let mut v = demo_view(ViewKeyKind::FrameBox);
        let b1 = BBox::new(0.0, 0.0, 0.1, 0.1);
        let b2 = BBox::new(0.5, 0.5, 0.9, 0.9);
        v.append(ViewKey::frame_box(FrameId(0), &b1), vec![]).unwrap();
        assert!(v.contains(&ViewKey::frame_box(FrameId(0), &b1)));
        assert!(!v.contains(&ViewKey::frame_box(FrameId(0), &b2)));
        assert!(!v.contains(&ViewKey::frame_box(FrameId(1), &b1)));
    }

    #[test]
    fn approx_bytes_grows() {
        let mut v = demo_view(ViewKeyKind::Frame);
        let before = v.approx_bytes();
        v.append(
            ViewKey::frame(FrameId(0)),
            vec![vec![Value::from("car"), Value::Float(0.9)]],
        )
        .unwrap();
        assert!(v.approx_bytes() > before);
    }

    #[test]
    fn clear_resets() {
        let mut v = demo_view(ViewKeyKind::Frame);
        v.append(ViewKey::frame(FrameId(0)), vec![]).unwrap();
        v.clear();
        assert_eq!(v.n_keys(), 0);
        assert_eq!(v.n_rows(), 0);
    }

    #[test]
    fn key_ordering_by_frame() {
        let k1 = ViewKey::frame(FrameId(1));
        let k2 = ViewKey::frame(FrameId(2));
        assert!(k1 < k2);
        assert_eq!(k1.frame_id(), FrameId(1));
        let kb = ViewKey::frame_box(FrameId(7), &BBox::new(0.0, 0.0, 0.1, 0.1));
        assert_eq!(kb.frame_id(), FrameId(7));
        assert_eq!(kb.kind(), ViewKeyKind::FrameBox);
    }
}
