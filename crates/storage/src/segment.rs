//! Versioned, checksummed on-disk segment format for materialized views.
//!
//! One view per segment file (`view_<id>.seg`), framed by the common
//! [`eva_common::codec`] envelope:
//!
//! ```text
//! magic "EVAS" | format_version | payload_len | payload | xxhash64
//! ```
//!
//! with a payload of:
//!
//! ```text
//! view_id | name | key_kind | output_schema | n_keys | n_rows | entries…
//! ```
//!
//! Entries are written in key order, so byte output is deterministic for a
//! given view. Decoding cross-checks the header counts against the decoded
//! entries and the view id against the file name — any mismatch is
//! [`EvaError::Corrupt`] and the recovery pass quarantines the file.
//!
//! Writes go through [`write_atomic`]: bytes land in a `.tmp` sibling,
//! are fsynced, and are renamed over the destination; the directory is
//! fsynced after the rename. A crash at any point leaves either the old
//! file or the new one, never a half-written mix — the mix is only
//! reachable through the deliberately-injected failpoints, which is
//! exactly what the chaos suite exercises.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use eva_common::codec::{self, ByteReader, ByteWriter};
use eva_common::hash::xxhash64;
use eva_common::{EvaError, Failpoint, FailpointRegistry, Result, Row, ViewId};

use crate::view::{MaterializedView, ViewDef, ViewKey, ViewKeyKind};

/// Magic for view segment files.
pub const SEGMENT_MAGIC: [u8; 4] = *b"EVAS";
/// Magic for the store manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"EVAM";
/// Current segment/manifest format version.
pub const FORMAT_VERSION: u32 = 1;
/// Manifest file name, written last so its presence implies a complete save.
pub const MANIFEST_FILE: &str = "views.manifest";
/// Suffix given to quarantined segment files.
pub const QUARANTINE_SUFFIX: &str = ".quarantined";
/// Suffix of in-flight temporary files (cleaned up on recovery).
pub const TMP_SUFFIX: &str = ".tmp";

/// File name for a view's segment.
pub fn segment_file_name(id: ViewId) -> String {
    format!("view_{}.seg", id.raw())
}

/// Parse `view_<id>.seg` back to the raw view id.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("view_")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

fn key_kind_tag(kind: ViewKeyKind) -> u8 {
    match kind {
        ViewKeyKind::Frame => 0,
        ViewKeyKind::FrameBox => 1,
    }
}

fn key_kind_from_tag(tag: u8) -> Result<ViewKeyKind> {
    match tag {
        0 => Ok(ViewKeyKind::Frame),
        1 => Ok(ViewKeyKind::FrameBox),
        t => Err(EvaError::Corrupt(format!("unknown key-kind tag {t:#x}"))),
    }
}

fn write_key(w: &mut ByteWriter, key: &ViewKey) {
    match key {
        ViewKey::Frame(f) => {
            w.u8(0);
            w.u64(*f);
        }
        ViewKey::FrameBox(f, corners) => {
            w.u8(1);
            w.u64(*f);
            for c in corners {
                w.u16(*c);
            }
        }
    }
}

fn read_key(r: &mut ByteReader) -> Result<ViewKey> {
    match r.u8()? {
        0 => Ok(ViewKey::Frame(r.u64()?)),
        1 => {
            let f = r.u64()?;
            let mut corners = [0u16; 4];
            for c in &mut corners {
                *c = r.u16()?;
            }
            Ok(ViewKey::FrameBox(f, corners))
        }
        t => Err(EvaError::Corrupt(format!("unknown view-key tag {t:#x}"))),
    }
}

/// Encode a view into a sealed segment (deterministic: entries in key order).
pub fn encode_segment(view: &MaterializedView) -> Vec<u8> {
    let def = view.def();
    let mut entries: Vec<(&ViewKey, &Arc<[Row]>)> = view.iter().collect();
    entries.sort_by_key(|(k, _)| **k);

    let mut w = ByteWriter::with_capacity(view.approx_bytes() as usize + 256);
    w.u64(def.id.raw());
    w.str(&def.name);
    w.u8(key_kind_tag(def.key_kind));
    codec::write_schema(&mut w, &def.output_schema);
    w.u64(view.n_keys());
    w.u64(view.n_rows());
    for (key, rows) in entries {
        write_key(&mut w, key);
        w.count(rows.len());
        for row in rows.iter() {
            codec::write_row(&mut w, row);
        }
    }
    codec::seal(SEGMENT_MAGIC, FORMAT_VERSION, w.as_slice())
}

/// Decode and fully validate a segment. `expect_id` (from the file name)
/// must match the id stored inside the segment; header key/row counts must
/// match what was actually decoded.
pub fn decode_segment(bytes: &[u8], expect_id: Option<ViewId>) -> Result<MaterializedView> {
    let (_, payload) = codec::unseal(bytes, SEGMENT_MAGIC, FORMAT_VERSION)?;
    let mut r = ByteReader::new(payload);
    let id = ViewId(r.u64()?);
    if let Some(expect) = expect_id {
        if id != expect {
            return Err(EvaError::Corrupt(format!(
                "segment holds view {id} but the file name says {expect}"
            )));
        }
    }
    let name = r.str()?;
    let key_kind = key_kind_from_tag(r.u8()?)?;
    let output_schema = Arc::new(codec::read_schema(&mut r)?);
    let n_keys = r.u64()?;
    let n_rows = r.u64()?;
    let mut view = MaterializedView::new(ViewDef {
        id,
        name,
        key_kind,
        output_schema,
    });
    for _ in 0..n_keys {
        let key = read_key(&mut r)?;
        let count = r.count()?;
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            rows.push(codec::read_row(&mut r)?);
        }
        view.append(key, rows.into())
            .map_err(|e| EvaError::Corrupt(format!("inconsistent segment entry: {e}")))?;
    }
    r.expect_end()?;
    if view.n_keys() != n_keys || view.n_rows() != n_rows {
        return Err(EvaError::Corrupt(format!(
            "header claims {n_keys} keys / {n_rows} rows, segment holds {} / {}",
            view.n_keys(),
            view.n_rows()
        )));
    }
    Ok(view)
}

/// Encode the store manifest: the id allocator's high-water mark plus the
/// ids of every segment the save wrote.
pub fn encode_manifest(next_view_id: u64, ids: &[u64]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(16 + ids.len() * 8);
    w.u64(next_view_id);
    w.count(ids.len());
    for id in ids {
        w.u64(*id);
    }
    codec::seal(MANIFEST_MAGIC, FORMAT_VERSION, w.as_slice())
}

/// Decode and validate the manifest: `(next_view_id, segment ids)`.
pub fn decode_manifest(bytes: &[u8]) -> Result<(u64, Vec<u64>)> {
    let (_, payload) = codec::unseal(bytes, MANIFEST_MAGIC, FORMAT_VERSION)?;
    let mut r = ByteReader::new(payload);
    let next = r.u64()?;
    let n = r.count()?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.u64()?);
    }
    r.expect_end()?;
    Ok((next, ids))
}

/// Write `bytes` to `dir/file_name` crash-safely: tmp file → fsync →
/// atomic rename → directory fsync. The [`FailpointRegistry`] sites model
/// the failures this protocol defends against:
///
/// * [`Failpoint::TornWrite`] — "crash" (an `Io` error) after half the
///   bytes reach the tmp file; the destination is untouched.
/// * [`Failpoint::ShortWrite`] — the tail of the file is silently lost but
///   the write is acknowledged; the checksum catches it on load.
/// * [`Failpoint::RenameFail`] — "crash" after the tmp file is durable but
///   before the rename; the destination is untouched.
/// * [`Failpoint::BitFlip`] — one deterministically-chosen bit of the
///   renamed file is flipped (latent media corruption); the checksum
///   catches it on load.
pub fn write_atomic(
    dir: &Path,
    file_name: &str,
    bytes: &[u8],
    failpoints: &FailpointRegistry,
) -> Result<()> {
    let tmp = dir.join(format!("{file_name}{TMP_SUFFIX}"));
    let dst = dir.join(file_name);

    if failpoints.should_fire(Failpoint::TornWrite) {
        let half = bytes.len() / 2;
        std::fs::write(&tmp, &bytes[..half])?;
        return Err(EvaError::Io(format!(
            "failpoint torn_write: simulated crash after {half} of {} bytes of {file_name}",
            bytes.len()
        )));
    }

    let short = failpoints.should_fire(Failpoint::ShortWrite);
    let to_write = if short {
        &bytes[..bytes.len().saturating_sub((bytes.len() / 4).max(1))]
    } else {
        bytes
    };
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(to_write)?;
        f.sync_all()?;
    }

    if failpoints.should_fire(Failpoint::RenameFail) {
        return Err(EvaError::Io(format!(
            "failpoint rename_fail: simulated crash before renaming {file_name} into place"
        )));
    }
    std::fs::rename(&tmp, &dst)?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }

    if failpoints.should_fire(Failpoint::BitFlip) {
        let mut data = std::fs::read(&dst)?;
        if !data.is_empty() {
            let bit = xxhash64(file_name.as_bytes(), failpoints.seed()) % (data.len() as u64 * 8);
            data[(bit / 8) as usize] ^= 1 << (bit % 8);
            std::fs::write(&dst, &data)?;
        }
    }
    Ok(())
}

/// Quarantine a damaged segment: rename it aside so the next save can
/// write a fresh file, keeping the evidence for inspection. Returns the
/// quarantine path (best effort — if even the rename fails, the original
/// path is returned and the file is simply left in place).
pub fn quarantine_file(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(QUARANTINE_SUFFIX);
    let target = path.with_file_name(name);
    match std::fs::rename(path, &target) {
        Ok(()) => target,
        Err(_) => path.to_path_buf(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::{DataType, Field, FireRule, FrameId, Schema, Value};

    fn demo_view(id: u64) -> MaterializedView {
        let mut v = MaterializedView::new(ViewDef {
            id: ViewId(id),
            name: "objectdetector(frame)".into(),
            key_kind: ViewKeyKind::FrameBox,
            output_schema: Arc::new(
                Schema::new(vec![
                    Field::new("label", DataType::Str),
                    Field::new("score", DataType::Float),
                ])
                .unwrap(),
            ),
        });
        for f in 0..5u64 {
            let bbox = eva_common::BBox::new(0.1, 0.1, 0.4, 0.4 + f as f32 * 0.01);
            v.append(
                ViewKey::frame_box(FrameId(f), &bbox),
                vec![vec![Value::from("car"), Value::Float(0.9)]].into(),
            )
            .unwrap();
        }
        v
    }

    #[test]
    fn segment_round_trip() {
        let v = demo_view(3);
        let bytes = encode_segment(&v);
        let back = decode_segment(&bytes, Some(ViewId(3))).unwrap();
        assert_eq!(back.def(), v.def());
        assert_eq!(back.n_keys(), v.n_keys());
        assert_eq!(back.n_rows(), v.n_rows());
        assert_eq!(back.approx_bytes(), v.approx_bytes());
        for (k, rows) in v.iter() {
            assert_eq!(back.get(k).unwrap().as_ref(), rows.as_ref());
        }
    }

    #[test]
    fn segment_encoding_is_deterministic() {
        let v = demo_view(3);
        assert_eq!(encode_segment(&v), encode_segment(&v));
    }

    #[test]
    fn segment_id_mismatch_is_corrupt() {
        let bytes = encode_segment(&demo_view(3));
        let err = decode_segment(&bytes, Some(ViewId(4))).unwrap_err();
        assert_eq!(err.stage(), "corrupt");
        assert!(err.message().contains("file name"), "{err}");
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let bytes = encode_segment(&demo_view(1));
        // Exhaustive over bytes (one bit per byte) keeps the test fast while
        // covering header, schema, entries and checksum regions.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x04;
            assert!(
                decode_segment(&bad, Some(ViewId(1))).is_err(),
                "flip in byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_segment(&demo_view(1));
        for cut in 0..bytes.len() {
            let err = decode_segment(&bytes[..cut], Some(ViewId(1))).unwrap_err();
            assert_eq!(err.stage(), "corrupt", "cut at {cut}");
        }
    }

    #[test]
    fn manifest_round_trip_and_validation() {
        let bytes = encode_manifest(9, &[1, 2, 5]);
        let (next, ids) = decode_manifest(&bytes).unwrap();
        assert_eq!(next, 9);
        assert_eq!(ids, vec![1, 2, 5]);
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(decode_manifest(&bad).is_err());
        // A segment is not a manifest.
        assert!(decode_manifest(&encode_segment(&demo_view(1))).is_err());
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(segment_file_name(ViewId(12)), "view_12.seg");
        assert_eq!(parse_segment_file_name("view_12.seg"), Some(12));
        assert_eq!(parse_segment_file_name("view_x.seg"), None);
        assert_eq!(parse_segment_file_name("views.manifest"), None);
        assert_eq!(parse_segment_file_name("view_12.seg.tmp"), None);
    }

    #[test]
    fn write_atomic_fault_injection_matrix() {
        let dir = eva_common::testutil::unique_temp_dir("segment_fi");
        let bytes = encode_segment(&demo_view(1));
        let fp = FailpointRegistry::new();

        // Clean write round-trips.
        write_atomic(&dir, "view_1.seg", &bytes, &fp).unwrap();
        let read = std::fs::read(dir.join("view_1.seg")).unwrap();
        decode_segment(&read, Some(ViewId(1))).unwrap();

        // Torn write: destination untouched, tmp half-written, Io error.
        fp.arm(Failpoint::TornWrite, FireRule::Always);
        let err = write_atomic(&dir, "view_1.seg", &bytes, &fp).unwrap_err();
        assert_eq!(err.stage(), "io");
        assert!(dir.join("view_1.seg.tmp").exists());
        decode_segment(&std::fs::read(dir.join("view_1.seg")).unwrap(), None)
            .expect("old segment intact after torn write");
        fp.disarm_all();

        // Short write: acknowledged, but the segment fails validation.
        fp.arm(Failpoint::ShortWrite, FireRule::Always);
        write_atomic(&dir, "view_1.seg", &bytes, &fp).unwrap();
        let short = std::fs::read(dir.join("view_1.seg")).unwrap();
        assert!(short.len() < bytes.len());
        assert!(decode_segment(&short, Some(ViewId(1))).is_err());
        fp.disarm_all();

        // Rename failure: tmp durable, destination now the short file still.
        write_atomic(&dir, "view_1.seg", &bytes, &fp).unwrap(); // restore good
        fp.arm(Failpoint::RenameFail, FireRule::Always);
        let err = write_atomic(&dir, "view_1.seg", &bytes, &fp).unwrap_err();
        assert_eq!(err.stage(), "io");
        decode_segment(&std::fs::read(dir.join("view_1.seg")).unwrap(), None)
            .expect("old segment intact after rename failure");
        fp.disarm_all();

        // Bit flip: acknowledged, checksum catches it on load,
        // deterministically for a fixed seed.
        fp.arm(Failpoint::BitFlip, FireRule::Always);
        write_atomic(&dir, "view_1.seg", &bytes, &fp).unwrap();
        let flipped_a = std::fs::read(dir.join("view_1.seg")).unwrap();
        assert!(decode_segment(&flipped_a, Some(ViewId(1))).is_err());
        fp.arm(Failpoint::BitFlip, FireRule::Always);
        write_atomic(&dir, "view_1.seg", &bytes, &fp).unwrap();
        let flipped_b = std::fs::read(dir.join("view_1.seg")).unwrap();
        assert_eq!(flipped_a, flipped_b, "same seed flips the same bit");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_renames_aside() {
        let dir = eva_common::testutil::unique_temp_dir("quarantine");
        let p = dir.join("view_9.seg");
        std::fs::write(&p, b"junk").unwrap();
        let q = quarantine_file(&p);
        assert!(!p.exists());
        assert!(q.exists());
        assert!(q.to_string_lossy().ends_with(".seg.quarantined"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
