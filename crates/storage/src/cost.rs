//! Simulated IO cost constants.

use serde::{Deserialize, Serialize};

/// Per-operation simulated IO costs, in milliseconds.
///
/// Defaults are derived from the paper's profiled numbers: frame reads cost
/// `c_r = 1.8 ms` per tuple (§4.2's FasterRCNN profile discussion); view rows
/// are lightweight structured metadata, far cheaper to read and write than
/// frames; the `3·C_M` hash-join factor of Eq. 3 is applied by the join
/// operator through [`IoCostModel::view_join_factor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoCostModel {
    /// Reading one frame tuple from the video table.
    pub frame_read_ms: f64,
    /// Reading one materialized-view row.
    pub view_row_read_ms: f64,
    /// Appending one row to a materialized view (batched in practice; this
    /// is the amortized per-row cost).
    pub view_row_write_ms: f64,
    /// Hash-join IO amplification on view reads (build + spill + probe ⇒ 3
    /// IOs in the worst case, per Eq. 3).
    pub view_join_factor: f64,
    /// Hashing cost charged by the FunCache baseline, in milliseconds per
    /// megabyte of hashed input. Raw xxHash runs at ~10 GB/s, but the
    /// paper's measured FunCache overhead (a 0.95× *slowdown* on VBENCH-LOW)
    /// implies a few ms per frame-sized argument — the hash plus argument
    /// marshalling through the UDF boundary. 2 ms/MB reproduces that.
    pub hash_ms_per_mb: f64,
    /// Fixed per-call overhead of the FunCache lookup path (argument
    /// marshalling into hashable form), independent of size.
    pub hash_fixed_ms: f64,
}

impl Default for IoCostModel {
    fn default() -> Self {
        IoCostModel {
            frame_read_ms: 1.8,
            view_row_read_ms: 0.05,
            view_row_write_ms: 0.02,
            view_join_factor: 3.0,
            hash_ms_per_mb: 2.0,
            hash_fixed_ms: 3.0,
        }
    }
}

impl IoCostModel {
    /// Cost of hashing `bytes` of UDF input (FunCache): fixed marshalling
    /// plus throughput-proportional hashing.
    pub fn hash_cost_ms(&self, bytes: u64) -> f64 {
        self.hash_fixed_ms + self.hash_ms_per_mb * bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_profile() {
        let m = IoCostModel::default();
        assert_eq!(m.frame_read_ms, 1.8);
        assert_eq!(m.view_join_factor, 3.0);
        assert!(m.view_row_read_ms < m.frame_read_ms);
    }

    #[test]
    fn hash_cost_scales_with_bytes() {
        let m = IoCostModel::default();
        let one_mb = m.hash_cost_ms(1024 * 1024);
        assert!((one_mb - 5.0).abs() < 1e-9, "3ms fixed + 2ms/MB");
        assert!((m.hash_cost_ms(2 * 1024 * 1024) - 7.0).abs() < 1e-9);
        assert_eq!(m.hash_cost_ms(0), 3.0, "fixed marshalling only");
    }
}
