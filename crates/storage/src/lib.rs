//! # eva-storage
//!
//! The storage engine: video tables and materialized UDF-result views.
//!
//! The paper stores video in Parquet via Petastorm and materialized views on
//! disk, estimating the view-join cost as `3·C_M` IO operations (Eq. 3).
//! Here both live in memory with **simulated IO costing**: every scan/read/
//! append charges the session's virtual clock according to an
//! [`IoCostModel`], so the time-breakdown experiments (Fig. 6, Table 4)
//! reproduce the paper's read/materialize components. State persists to
//! disk as checksummed, crash-safe segment files (see [`segment`]) for
//! session restarts; loading is a recovery pass that quarantines damaged
//! segments and reports what it found (see [`recovery`]).

pub mod cost;
pub mod engine;
pub mod recovery;
pub mod segment;
pub mod view;

pub use cost::IoCostModel;
pub use engine::StorageEngine;
pub use recovery::{QuarantinedSegment, RecoveryReport};
pub use view::{MaterializedView, ViewDef, ViewKey, ViewKeyKind};
