//! # eva-baselines
//!
//! The comparison systems of the paper's evaluation (§5.1), reimplemented
//! inside EVA-RS "for a fair comparison":
//!
//! * **HashStash** — operator-subtree reuse from a *recycler graph*
//!   ([`recycler`]): plan operators are matched structurally (ignoring
//!   predicates); matched operators' materialized outputs are recycled and
//!   the query's own predicates re-applied. Only whole-operator outputs
//!   (frame-level UDF applies) recycle; UDFs buried in selection predicates
//!   do not — the limitation Table 2 quantifies.
//! * **FunCache** — tuple-level function caching in the execution engine,
//!   hashing every invocation's input arguments with xxHash.
//! * **No-Reuse**, **Min-Cost** and **Min-Cost-NoReuse** — the Fig. 5 and
//!   Fig. 10 reference points.
//!
//! The strategies execute through the shared planner/executor (selected via
//! [`ReuseStrategy`]); this crate provides the recycler-graph substrate, the
//! session constructors, and the baseline-specific tests.

pub mod recycler;
pub mod sessions;

pub use recycler::{NodeKey, RecyclerGraph};
pub use sessions::{
    eva_session, funcache_session, hashstash_session, min_cost_noreuse_session, min_cost_session,
    no_reuse_session,
};

// Re-export for convenience in benches/tests.
pub use eva_planner::ReuseStrategy;
