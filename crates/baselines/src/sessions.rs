//! Session constructors for every system under test.

use eva_common::Result;
use eva_core::{EvaDb, SessionConfig};
use eva_planner::ReuseStrategy;

/// The full EVA system (semantic reuse + Eq. 4 ranking + Algorithm 2).
pub fn eva_session() -> Result<EvaDb> {
    EvaDb::new(SessionConfig::for_strategy(ReuseStrategy::Eva))
}

/// No reuse at all (the Fig. 5 denominator).
pub fn no_reuse_session() -> Result<EvaDb> {
    EvaDb::new(SessionConfig::for_strategy(ReuseStrategy::NoReuse))
}

/// HashStash: operator-subtree reuse, canonical ranking.
pub fn hashstash_session() -> Result<EvaDb> {
    EvaDb::new(SessionConfig::for_strategy(ReuseStrategy::HashStash))
}

/// FunCache: tuple-level function caching with input hashing.
pub fn funcache_session() -> Result<EvaDb> {
    EvaDb::new(SessionConfig::for_strategy(ReuseStrategy::FunCache))
}

/// Min-Cost (Fig. 10): logical UDFs resolve to the cheapest eligible model;
/// per-model reuse stays on, but Algorithm 2's cross-model view cover is off.
pub fn min_cost_session() -> Result<EvaDb> {
    let mut cfg = SessionConfig::for_strategy(ReuseStrategy::Eva);
    cfg.planner.logical_set_cover = false;
    EvaDb::new(cfg)
}

/// Min-Cost-NoReuse (Fig. 10): cheapest eligible model, reuse disabled.
pub fn min_cost_noreuse_session() -> Result<EvaDb> {
    let mut cfg = SessionConfig::for_strategy(ReuseStrategy::NoReuse);
    cfg.planner.logical_set_cover = false;
    EvaDb::new(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_video::generator::generate;
    use eva_video::VideoConfig;

    fn load(db: &mut EvaDb) {
        db.load_video(
            generate(VideoConfig {
                name: "v".into(),
                n_frames: 100,
                width: 96,
                height: 54,
                fps: 25.0,
                target_density: 5.0,
                person_fraction: 0.0,
                seed: 4,
            }),
            "video",
        )
        .unwrap();
    }

    const Q1: &str = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                      WHERE id < 80 AND label = 'car' AND cartype(frame, bbox) = 'Toyota'";
    const Q2: &str = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                      WHERE id < 80 AND label = 'car' AND cartype(frame, bbox) = 'Honda'";

    #[test]
    fn hashstash_reuses_detector_but_not_box_udfs() {
        let mut db = hashstash_session().unwrap();
        load(&mut db);
        db.execute_sql(Q1).unwrap().rows().unwrap();
        db.execute_sql(Q2).unwrap().rows().unwrap();
        let det = db.invocation_stats().get("fasterrcnn_resnet50");
        let ct = db.invocation_stats().get("cartype");
        assert!(det.reused_invocations > 0, "detector should recycle");
        assert_eq!(ct.reused_invocations, 0, "box UDFs must not recycle");
    }

    #[test]
    fn eva_reuses_both() {
        let mut db = eva_session().unwrap();
        load(&mut db);
        db.execute_sql(Q1).unwrap().rows().unwrap();
        db.execute_sql(Q2).unwrap().rows().unwrap();
        let det = db.invocation_stats().get("fasterrcnn_resnet50");
        let ct = db.invocation_stats().get("cartype");
        assert!(det.reused_invocations > 0);
        assert!(ct.reused_invocations > 0, "EVA reuses predicate UDFs too");
    }

    #[test]
    fn funcache_matches_eva_hit_percentage() {
        let mut eva = eva_session().unwrap();
        load(&mut eva);
        let mut fc = funcache_session().unwrap();
        load(&mut fc);
        for q in [Q1, Q2, Q1] {
            eva.execute_sql(q).unwrap().rows().unwrap();
            fc.execute_sql(q).unwrap().rows().unwrap();
        }
        let he = eva.invocation_stats().hit_percentage();
        let hf = fc.invocation_stats().hit_percentage();
        assert!(
            (he - hf).abs() < 1e-6,
            "Table 2: FunCache and EVA have identical (optimal) hit %: {he} vs {hf}"
        );
        // But FunCache pays hashing cost; EVA does not.
        let hash_ms = fc.cost_snapshot().get(eva_common::CostCategory::HashInput);
        assert!(hash_ms > 0.0);
        assert_eq!(
            eva.cost_snapshot().get(eva_common::CostCategory::HashInput),
            0.0
        );
    }

    #[test]
    fn min_cost_substitutes_cheapest_model() {
        let mut db = min_cost_session().unwrap();
        load(&mut db);
        let q = "SELECT id FROM video CROSS APPLY objectdetector(frame) ACCURACY 'LOW' \
                 WHERE id < 50 AND label = 'car'";
        db.execute_sql(q).unwrap().rows().unwrap();
        let yolo = db.invocation_stats().get("yolo_tiny");
        assert!(yolo.total_invocations > 0, "cheapest model (yolo) runs");
        assert_eq!(
            db.invocation_stats()
                .get("fasterrcnn_resnet50")
                .total_invocations,
            0
        );
    }

    #[test]
    fn eva_set_cover_reuses_high_accuracy_view_for_low_query() {
        let mut db = eva_session().unwrap();
        load(&mut db);
        // A HIGH-accuracy query materializes rcnn101 results…
        db.execute_sql(
            "SELECT id FROM video CROSS APPLY objectdetector(frame) ACCURACY 'HIGH' \
             WHERE id < 50 AND label = 'car'",
        )
        .unwrap()
        .rows()
        .unwrap();
        // …then a LOW-accuracy query over the same frames reads that view
        // instead of running yolo (the paper's Q4 motivating example).
        db.execute_sql(
            "SELECT id FROM video CROSS APPLY objectdetector(frame) ACCURACY 'LOW' \
             WHERE id < 50 AND label = 'car'",
        )
        .unwrap()
        .rows()
        .unwrap();
        let rcnn101 = db.invocation_stats().get("fasterrcnn_resnet101");
        assert!(
            rcnn101.reused_invocations > 0,
            "low-accuracy query must reuse the high-accuracy view"
        );
        assert_eq!(
            db.invocation_stats().get("yolo_tiny").total_invocations,
            0,
            "no fresh yolo runs needed"
        );
    }
}
