//! HashStash's recycler graph (§5.1).
//!
//! HashStash "utilizes a recycler graph to keep track of the plans
//! associated with previously executed queries… It first does a sub-tree
//! matching between the query and the recycler graph *without requiring
//! predicates to be identical*," then recycles the union of matched
//! operators' materialized outputs and re-applies the query's predicates.
//!
//! The key is structural: an operator node matches a stored node when the
//! operator kind, its parameters *minus predicates*, and its child's key all
//! match. For EVA-RS plans that means a detector apply matches across
//! queries with different WHERE clauses (so its output is reusable), while
//! box-level UDFs inside predicates never form their own operator in
//! HashStash's world and are therefore invisible to it.

use std::collections::BTreeMap;

use eva_common::hash::xxhash64;
use eva_planner::PhysPlan;

/// Structural key of one operator subtree (predicates excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeKey(pub u64);

/// Statistics about one recyclable node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeInfo {
    /// How many registered plans contain this subtree.
    pub occurrences: u64,
    /// Human-readable description of the subtree root.
    pub describe: String,
}

/// The recycler graph: structural keys of previously executed operator
/// subtrees.
#[derive(Debug, Clone, Default)]
pub struct RecyclerGraph {
    nodes: BTreeMap<NodeKey, NodeInfo>,
}

impl RecyclerGraph {
    /// Empty graph.
    pub fn new() -> RecyclerGraph {
        RecyclerGraph::default()
    }

    /// Structural key of a plan subtree. Predicates are deliberately
    /// excluded from the hash (HashStash matches across predicate changes);
    /// scan *ranges* are likewise excluded (range differences are predicate
    /// differences).
    pub fn key_of(plan: &PhysPlan) -> NodeKey {
        let mut repr = String::new();
        fn go(p: &PhysPlan, out: &mut String) {
            match p {
                PhysPlan::ScanFrames { table, .. } => {
                    out.push_str("scan(");
                    out.push_str(table);
                    out.push(')');
                }
                PhysPlan::Filter { input, .. } => {
                    // Filters are transparent for matching: recycled outputs
                    // get the query's own predicates re-applied.
                    go(input, out);
                }
                PhysPlan::Apply { input, spec, .. } => {
                    out.push_str("apply[");
                    match spec.fallback_udf() {
                        Some(u) => out.push_str(&u.name),
                        None => out.push_str(&spec.display_name),
                    }
                    out.push_str("](");
                    go(input, out);
                    out.push(')');
                }
                PhysPlan::Project { input, .. }
                | PhysPlan::Sort { input, .. }
                | PhysPlan::Limit { input, .. } => go(input, out),
                PhysPlan::Aggregate {
                    input, group_by, ..
                } => {
                    out.push_str("agg[");
                    out.push_str(&group_by.join(","));
                    out.push_str("](");
                    go(input, out);
                    out.push(')');
                }
            }
        }
        go(plan, &mut repr);
        NodeKey(xxhash64(repr.as_bytes(), 0xCAFE))
    }

    /// Register every apply subtree of an executed plan.
    pub fn register(&mut self, plan: &PhysPlan) {
        fn walk(g: &mut RecyclerGraph, p: &PhysPlan) {
            if let PhysPlan::Apply { spec, .. } = p {
                let key = RecyclerGraph::key_of(p);
                let entry = g.nodes.entry(key).or_default();
                entry.occurrences += 1;
                if entry.describe.is_empty() {
                    entry.describe = spec.display_name.clone();
                }
            }
            if let Some(i) = p.input() {
                walk(g, i);
            }
        }
        walk(self, plan);
    }

    /// Which apply subtrees of `plan` match previously registered ones —
    /// the sub-tree matching step of HashStash's reuse.
    pub fn matches(&self, plan: &PhysPlan) -> Vec<NodeKey> {
        let mut out = Vec::new();
        let mut node = Some(plan);
        while let Some(p) = node {
            if matches!(p, PhysPlan::Apply { .. }) {
                let key = RecyclerGraph::key_of(p);
                if self.nodes.contains_key(&key) {
                    out.push(key);
                }
            }
            node = p.input();
        }
        out
    }

    /// Number of distinct recyclable subtrees.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Info about a node.
    pub fn info(&self, key: NodeKey) -> Option<&NodeInfo> {
        self.nodes.get(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_core::{EvaDb, SessionConfig};
    use eva_parser::{parse, Statement};
    use eva_planner::ReuseStrategy;
    use eva_video::generator::generate;
    use eva_video::VideoConfig;

    fn db() -> EvaDb {
        let mut db = EvaDb::new(SessionConfig::for_strategy(ReuseStrategy::HashStash)).unwrap();
        db.load_video(
            generate(VideoConfig {
                name: "v".into(),
                n_frames: 50,
                width: 96,
                height: 54,
                fps: 25.0,
                target_density: 3.0,
                person_fraction: 0.0,
                seed: 2,
            }),
            "video",
        )
        .unwrap();
        db
    }

    fn plan(db: &EvaDb, sql: &str) -> PhysPlan {
        match parse(sql).unwrap() {
            Statement::Select(s) => db.plan_select(&s).unwrap(),
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn detector_matches_across_predicates() {
        let db = db();
        let p1 = plan(
            &db,
            "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) WHERE id < 10",
        );
        let p2 = plan(
            &db,
            "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
             WHERE id > 20 AND label = 'car'",
        );
        let mut g = RecyclerGraph::new();
        g.register(&p1);
        assert_eq!(g.len(), 1);
        let m = g.matches(&p2);
        assert_eq!(m.len(), 1, "detector apply must match across predicates");
        assert_eq!(g.info(m[0]).unwrap().occurrences, 1);
    }

    #[test]
    fn different_detectors_do_not_match() {
        let db = db();
        let p1 = plan(
            &db,
            "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) WHERE id < 10",
        );
        let p2 = plan(
            &db,
            "SELECT id FROM video CROSS APPLY yolo_tiny(frame) WHERE id < 10",
        );
        let mut g = RecyclerGraph::new();
        g.register(&p1);
        assert!(g.matches(&p2).is_empty());
    }

    #[test]
    fn predicate_udfs_match_only_with_same_upstream() {
        // The cartype apply's subtree includes the detector below it, so it
        // matches only when the whole chain matches — and in HashStash those
        // nodes carry no materialized state anyway (ApplyReuse::None).
        let db = db();
        let q = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                 WHERE cartype(frame, bbox) = 'Nissan'";
        let p1 = plan(&db, q);
        let mut g = RecyclerGraph::new();
        g.register(&p1);
        assert_eq!(g.len(), 2, "detector + cartype subtrees");
        let p2 = plan(
            &db,
            "SELECT id FROM video CROSS APPLY yolo_tiny(frame) \
             WHERE cartype(frame, bbox) = 'Nissan'",
        );
        // cartype-over-yolo does not match cartype-over-rcnn.
        assert!(g.matches(&p2).is_empty());
    }

    #[test]
    fn registration_counts_occurrences() {
        let db = db();
        let q = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) WHERE id < 10";
        let p = plan(&db, q);
        let mut g = RecyclerGraph::new();
        g.register(&p);
        g.register(&p);
        let key = g.matches(&p)[0];
        assert_eq!(g.info(key).unwrap().occurrences, 2);
    }
}
