//! Table and UDF definition records.

use serde::{Deserialize, Serialize};

use eva_common::{Schema, UdfId};

use crate::accuracy::AccuracyLevel;

/// A registered video table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name (lowercase).
    pub name: String,
    /// Row schema exposed to queries.
    pub schema: Schema,
    /// Row count (known at load time for video tables).
    pub n_rows: u64,
    /// Name of the backing dataset in the storage engine.
    pub dataset: String,
}

/// A registered UDF — the catalog's record of a `CREATE UDF` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UdfDef {
    /// Catalog id.
    pub id: UdfId,
    /// UDF name as used in queries (lowercase).
    pub name: String,
    /// Input schema (`INPUT = (...)`).
    pub input: Schema,
    /// Output schema (`OUTPUT = (...)`).
    pub output: Schema,
    /// Implementation identifier (`IMPL = '...'`) — resolved by the UDF
    /// runtime to a simulated model.
    pub impl_id: String,
    /// Logical vision task (`LOGICAL_TYPE = ObjectDetector`), lowercase.
    pub logical_type: Option<String>,
    /// Model accuracy (`PROPERTIES = ('ACCURACY' = '...')`).
    pub accuracy: AccuracyLevel,
    /// Profiled per-tuple evaluation cost in milliseconds. `None` until the
    /// profiler has run; the optimizer treats unprofiled UDFs as expensive.
    pub cost_ms: Option<f64>,
    /// Whether results run on the GPU (reporting only; cost_ms already
    /// reflects the device).
    pub gpu: bool,
}

impl UdfDef {
    /// Is this UDF expensive enough to be a materialization candidate?
    /// The paper's optimizer "filters out inexpensive UDFs like AREA" using
    /// profiled cost (§3.1 step ①).
    pub fn is_materialization_candidate(&self, threshold_ms: f64) -> bool {
        match self.cost_ms {
            Some(c) => c >= threshold_ms,
            None => true, // unprofiled: assume expensive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::{DataType, Field};

    fn def(cost: Option<f64>) -> UdfDef {
        UdfDef {
            id: UdfId(1),
            name: "area".into(),
            input: Schema::new(vec![Field::new("bbox", DataType::BBox)]).unwrap(),
            output: Schema::new(vec![Field::new("area", DataType::Float)]).unwrap(),
            impl_id: "builtin/area".into(),
            logical_type: None,
            accuracy: AccuracyLevel::High,
            cost_ms: cost,
            gpu: false,
        }
    }

    #[test]
    fn materialization_candidate_threshold() {
        assert!(!def(Some(0.01)).is_materialization_candidate(1.0));
        assert!(def(Some(5.0)).is_materialization_candidate(1.0));
        assert!(def(None).is_materialization_candidate(1.0));
    }
}
