//! # eva-catalog
//!
//! The system catalog: registered video tables and UDF definitions.
//!
//! A UDF definition mirrors EVA-QL's `CREATE UDF` statement (Listing 2 of
//! the paper): input/output schemas, an implementation id, an optional
//! *logical type* (e.g. `ObjectDetector`) and properties such as `ACCURACY`.
//! The optimizer's logical-UDF-reuse pass (§4.3) queries the catalog for all
//! physical UDFs implementing a logical type at or above a requested
//! accuracy.

pub mod accuracy;
pub mod catalog;
pub mod udf_def;

pub use accuracy::AccuracyLevel;
pub use catalog::Catalog;
pub use udf_def::{TableDef, UdfDef};
