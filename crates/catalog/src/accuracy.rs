//! Accuracy levels for logical vision tasks.

use eva_common::{EvaError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Accuracy tiers used by `ACCURACY '<level>'` constraints. Ordered:
/// `Low < Medium < High`. A physical UDF *satisfies* a constraint when its
/// own accuracy is at least the requested level (a high-accuracy model is
/// always acceptable where a low-accuracy one suffices — the premise behind
/// reusing FasterRCNN results for YOLO-tier queries).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum AccuracyLevel {
    /// e.g. YOLO-tiny (boxAP 17.6).
    #[default]
    Low,
    /// e.g. FasterRCNN-ResNet50 (boxAP 37.9).
    Medium,
    /// e.g. FasterRCNN-ResNet101 (boxAP 42.0).
    High,
}

impl AccuracyLevel {
    /// Parse from the EVA-QL property string (case-insensitive).
    pub fn parse(s: &str) -> Result<AccuracyLevel> {
        match s.to_ascii_uppercase().as_str() {
            "LOW" => Ok(AccuracyLevel::Low),
            "MEDIUM" => Ok(AccuracyLevel::Medium),
            "HIGH" => Ok(AccuracyLevel::High),
            other => Err(EvaError::Catalog(format!(
                "unknown accuracy level '{other}' (expected LOW/MEDIUM/HIGH)"
            ))),
        }
    }

    /// Does a model of accuracy `self` satisfy a request for `required`?
    pub fn satisfies(&self, required: AccuracyLevel) -> bool {
        *self >= required
    }

    /// Canonical property string.
    pub fn as_str(&self) -> &'static str {
        match self {
            AccuracyLevel::Low => "LOW",
            AccuracyLevel::Medium => "MEDIUM",
            AccuracyLevel::High => "HIGH",
        }
    }
}

impl fmt::Display for AccuracyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(AccuracyLevel::parse("high").unwrap(), AccuracyLevel::High);
        assert_eq!(
            AccuracyLevel::parse("Medium").unwrap(),
            AccuracyLevel::Medium
        );
        assert!(AccuracyLevel::parse("ultra").is_err());
    }

    #[test]
    fn ordering_and_satisfaction() {
        assert!(AccuracyLevel::High.satisfies(AccuracyLevel::Low));
        assert!(AccuracyLevel::High.satisfies(AccuracyLevel::High));
        assert!(!AccuracyLevel::Low.satisfies(AccuracyLevel::Medium));
        assert!(AccuracyLevel::Low < AccuracyLevel::High);
    }

    #[test]
    fn round_trip() {
        for a in [
            AccuracyLevel::Low,
            AccuracyLevel::Medium,
            AccuracyLevel::High,
        ] {
            assert_eq!(AccuracyLevel::parse(a.as_str()).unwrap(), a);
        }
    }
}
