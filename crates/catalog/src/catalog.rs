//! The concurrent catalog registry.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

use eva_common::{EvaError, Result, UdfId};

use crate::accuracy::AccuracyLevel;
use crate::udf_def::{TableDef, UdfDef};

/// Thread-safe registry of tables and UDFs. Cheap to clone (shared state).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    tables: BTreeMap<String, TableDef>,
    udfs: BTreeMap<String, UdfDef>,
    next_udf_id: u64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table; errors on duplicates.
    pub fn create_table(&self, def: TableDef) -> Result<()> {
        let mut inner = self.inner.write();
        let name = def.name.to_ascii_lowercase();
        if inner.tables.contains_key(&name) {
            return Err(EvaError::Catalog(format!("table '{name}' already exists")));
        }
        inner.tables.insert(name.clone(), TableDef { name, ..def });
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<TableDef> {
        self.inner
            .read()
            .tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| EvaError::Catalog(format!("unknown table '{name}'")))
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().tables.keys().cloned().collect()
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.inner
            .write()
            .tables
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| EvaError::Catalog(format!("unknown table '{name}'")))
    }

    /// Register a UDF. `or_replace` mirrors `CREATE OR REPLACE UDF`.
    pub fn create_udf(&self, mut def: UdfDef, or_replace: bool) -> Result<UdfId> {
        let mut inner = self.inner.write();
        let name = def.name.to_ascii_lowercase();
        if inner.udfs.contains_key(&name) && !or_replace {
            return Err(EvaError::Catalog(format!("UDF '{name}' already exists")));
        }
        inner.next_udf_id += 1;
        let id = UdfId(inner.next_udf_id);
        def.id = id;
        def.name = name.clone();
        def.logical_type = def.logical_type.map(|l| l.to_ascii_lowercase());
        inner.udfs.insert(name, def);
        Ok(id)
    }

    /// Look up a UDF by name.
    pub fn udf(&self, name: &str) -> Result<UdfDef> {
        self.inner
            .read()
            .udfs
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| EvaError::Catalog(format!("unknown UDF '{name}'")))
    }

    /// Does a UDF with this name exist?
    pub fn has_udf(&self, name: &str) -> bool {
        self.inner
            .read()
            .udfs
            .contains_key(&name.to_ascii_lowercase())
    }

    /// All registered UDFs.
    pub fn udfs(&self) -> Vec<UdfDef> {
        self.inner.read().udfs.values().cloned().collect()
    }

    /// Drop a UDF.
    pub fn drop_udf(&self, name: &str) -> Result<()> {
        self.inner
            .write()
            .udfs
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| EvaError::Catalog(format!("unknown UDF '{name}'")))
    }

    /// Record a profiled per-tuple cost for a UDF.
    pub fn set_udf_cost(&self, name: &str, cost_ms: f64) -> Result<()> {
        let mut inner = self.inner.write();
        match inner.udfs.get_mut(&name.to_ascii_lowercase()) {
            Some(def) => {
                def.cost_ms = Some(cost_ms);
                Ok(())
            }
            None => Err(EvaError::Catalog(format!("unknown UDF '{name}'"))),
        }
    }

    /// Physical UDFs implementing `logical_type` with accuracy ≥ `required`,
    /// sorted by ascending cost (unprofiled last). This is the `PhysicalUDFs`
    /// lookup of Algorithm 2 (§4.3).
    pub fn physical_udfs(&self, logical_type: &str, required: AccuracyLevel) -> Vec<UdfDef> {
        let lt = logical_type.to_ascii_lowercase();
        let mut out: Vec<UdfDef> = self
            .inner
            .read()
            .udfs
            .values()
            .filter(|d| d.logical_type.as_deref() == Some(lt.as_str()))
            .filter(|d| d.accuracy.satisfies(required))
            .cloned()
            .collect();
        out.sort_by(|a, b| {
            let ca = a.cost_ms.unwrap_or(f64::INFINITY);
            let cb = b.cost_ms.unwrap_or(f64::INFINITY);
            ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// *All* physical UDFs of a logical type regardless of accuracy — the
    /// candidate views Algorithm 2 may read from (a higher-accuracy view can
    /// serve a lower-accuracy request, and reading any view can beat
    /// recomputing).
    pub fn physical_udfs_any_accuracy(&self, logical_type: &str) -> Vec<UdfDef> {
        self.physical_udfs(logical_type, AccuracyLevel::Low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::{DataType, Field, Schema};

    fn table(name: &str) -> TableDef {
        TableDef {
            name: name.into(),
            schema: Schema::new(vec![Field::new("id", DataType::Int)]).unwrap(),
            n_rows: 10,
            dataset: name.into(),
        }
    }

    fn udf(name: &str, lt: Option<&str>, acc: AccuracyLevel, cost: Option<f64>) -> UdfDef {
        UdfDef {
            id: UdfId(0),
            name: name.into(),
            input: Schema::empty(),
            output: Schema::empty(),
            impl_id: format!("sim/{name}"),
            logical_type: lt.map(|s| s.to_string()),
            accuracy: acc,
            cost_ms: cost,
            gpu: true,
        }
    }

    #[test]
    fn table_lifecycle() {
        let c = Catalog::new();
        c.create_table(table("Video")).unwrap();
        assert_eq!(c.table("video").unwrap().name, "video");
        assert_eq!(c.table("VIDEO").unwrap().n_rows, 10);
        assert!(c.create_table(table("video")).is_err());
        c.drop_table("video").unwrap();
        assert!(c.table("video").is_err());
    }

    #[test]
    fn udf_lifecycle_and_replace() {
        let c = Catalog::new();
        let id1 = c
            .create_udf(
                udf("yolo", Some("ObjectDetector"), AccuracyLevel::Low, None),
                false,
            )
            .unwrap();
        assert!(c
            .create_udf(udf("YOLO", None, AccuracyLevel::Low, None), false)
            .is_err());
        let id2 = c
            .create_udf(
                udf(
                    "yolo",
                    Some("ObjectDetector"),
                    AccuracyLevel::Low,
                    Some(9.0),
                ),
                true,
            )
            .unwrap();
        assert_ne!(id1, id2);
        assert_eq!(c.udf("yolo").unwrap().cost_ms, Some(9.0));
        assert!(c.has_udf("Yolo"));
        c.drop_udf("yolo").unwrap();
        assert!(!c.has_udf("yolo"));
    }

    #[test]
    fn physical_udf_selection_by_accuracy() {
        let c = Catalog::new();
        c.create_udf(
            udf(
                "yolo_tiny",
                Some("objectdetector"),
                AccuracyLevel::Low,
                Some(9.0),
            ),
            false,
        )
        .unwrap();
        c.create_udf(
            udf(
                "rcnn50",
                Some("ObjectDetector"),
                AccuracyLevel::Medium,
                Some(99.0),
            ),
            false,
        )
        .unwrap();
        c.create_udf(
            udf(
                "rcnn101",
                Some("ObjectDetector"),
                AccuracyLevel::High,
                Some(120.0),
            ),
            false,
        )
        .unwrap();
        c.create_udf(
            udf("cartype", Some("CarType"), AccuracyLevel::High, Some(6.0)),
            false,
        )
        .unwrap();

        let low = c.physical_udfs("ObjectDetector", AccuracyLevel::Low);
        assert_eq!(low.len(), 3);
        assert_eq!(low[0].name, "yolo_tiny", "sorted by ascending cost");

        let high = c.physical_udfs("ObjectDetector", AccuracyLevel::High);
        assert_eq!(high.len(), 1);
        assert_eq!(high[0].name, "rcnn101");

        let med = c.physical_udfs("objectdetector", AccuracyLevel::Medium);
        assert_eq!(med.len(), 2);
    }

    #[test]
    fn profiling_updates_cost() {
        let c = Catalog::new();
        c.create_udf(udf("f", None, AccuracyLevel::Low, None), false)
            .unwrap();
        c.set_udf_cost("F", 42.0).unwrap();
        assert_eq!(c.udf("f").unwrap().cost_ms, Some(42.0));
        assert!(c.set_udf_cost("missing", 1.0).is_err());
    }
}
