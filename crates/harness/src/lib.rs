//! # eva-harness
//!
//! Hosts the repository-root `examples/` and `tests/` (Cargo targets must
//! belong to a package; this crate points its example and test paths at the
//! repository root). It also provides small fixtures shared by the
//! integration tests.

use eva_core::{EvaDb, SessionConfig};
use eva_planner::ReuseStrategy;
use eva_video::generator::generate;
use eva_video::{VideoConfig, VideoDataset};

// The blessed per-test unique temp-dir helpers (implemented in eva-common so
// in-crate unit tests can use them too; integration tests import from here).
pub use eva_common::testutil::{unique_temp_dir, TempDir};

/// A small deterministic dataset sized for fast integration tests.
pub fn test_dataset(seed: u64, n_frames: u64) -> VideoDataset {
    generate(VideoConfig {
        name: format!("itest_{seed}_{n_frames}"),
        n_frames,
        width: 192,
        height: 108,
        fps: 25.0,
        target_density: 6.0,
        person_fraction: 0.05,
        seed,
    })
}

/// A session with the given strategy and a test dataset loaded as `video`.
pub fn test_session(strategy: ReuseStrategy, seed: u64, n_frames: u64) -> EvaDb {
    let mut db = EvaDb::new(SessionConfig::for_strategy(strategy)).expect("session construction");
    db.load_video(test_dataset(seed, n_frames), "video")
        .expect("dataset load");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = test_dataset(1, 50);
        let b = test_dataset(1, 50);
        assert_eq!(a.frames(), b.frames());
    }

    #[test]
    fn session_fixture_loads_table() {
        let db = test_session(ReuseStrategy::Eva, 1, 30);
        assert!(db.catalog().table("video").is_ok());
    }
}
