//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across all EVA-RS crates.
pub type Result<T, E = EvaError> = std::result::Result<T, E>;

/// Why a query was cancelled. Carried by [`EvaError::Cancelled`] so callers
/// can distinguish governance outcomes (retryable shed, tightening budgets)
/// from genuine runtime failures without parsing message strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The per-query deadline elapsed (SimClock-denominated by default; a
    /// wall-clock overlay may also fire with this reason).
    Deadline,
    /// The per-query memory accountant exceeded its byte budget at a point
    /// where no graceful degradation was possible.
    Budget,
    /// The admission controller refused or timed out the query under load.
    Shed,
    /// An explicit caller-issued cancellation.
    User,
}

impl CancelReason {
    /// Stable lowercase label (used in displays, logs, and counters).
    pub fn label(self) -> &'static str {
        match self {
            CancelReason::Deadline => "deadline",
            CancelReason::Budget => "budget",
            CancelReason::Shed => "shed",
            CancelReason::User => "user",
        }
    }
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The error type shared by every EVA-RS subsystem.
///
/// Variants are grouped by the pipeline stage that raises them so callers can
/// report *where* a query failed (parse vs. plan vs. execute), mirroring the
/// lifecycle in Fig. 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum EvaError {
    /// Lexing or parsing failure, with a position-annotated message.
    Parse(String),
    /// Semantic analysis failure (unknown table/column/UDF, arity mismatch…).
    Binder(String),
    /// Catalog-level failure (duplicate table, missing UDF definition…).
    Catalog(String),
    /// Query optimizer failure (no implementation rule fired, bad memo state…).
    Plan(String),
    /// Runtime failure inside the execution engine.
    Exec(String),
    /// Storage engine failure (missing view, corrupt segment…).
    Storage(String),
    /// Type error when evaluating an expression over a tuple.
    Type(String),
    /// Underlying IO error (persistence paths).
    Io(String),
    /// Persisted data failed validation: checksum mismatch, truncated
    /// segment, unparseable payload, or a format version from the future.
    /// Recovery treats this as "quarantine and continue", never fatal.
    Corrupt(String),
    /// Invalid configuration or API misuse.
    Config(String),
    /// The query was cancelled by the governance layer before completing:
    /// deadline exceeded, memory budget tripped without a degradation path,
    /// shed by the admission controller, or explicitly cancelled. Distinct
    /// from [`EvaError::Exec`]: the engine was healthy, the query was cut
    /// short on purpose, and a retry (or a looser budget) may succeed.
    Cancelled {
        /// Structured cancellation cause.
        reason: CancelReason,
        /// Human-readable context (which budget, how far over, …).
        message: String,
    },
}

impl EvaError {
    /// Stage label used in error displays and logs.
    pub fn stage(&self) -> &'static str {
        match self {
            EvaError::Parse(_) => "parse",
            EvaError::Binder(_) => "bind",
            EvaError::Catalog(_) => "catalog",
            EvaError::Plan(_) => "plan",
            EvaError::Exec(_) => "exec",
            EvaError::Storage(_) => "storage",
            EvaError::Type(_) => "type",
            EvaError::Io(_) => "io",
            EvaError::Corrupt(_) => "corrupt",
            EvaError::Config(_) => "config",
            EvaError::Cancelled { .. } => "cancelled",
        }
    }

    /// The human-readable message without the stage prefix.
    pub fn message(&self) -> &str {
        match self {
            EvaError::Parse(m)
            | EvaError::Binder(m)
            | EvaError::Catalog(m)
            | EvaError::Plan(m)
            | EvaError::Exec(m)
            | EvaError::Storage(m)
            | EvaError::Type(m)
            | EvaError::Io(m)
            | EvaError::Corrupt(m)
            | EvaError::Config(m)
            | EvaError::Cancelled { message: m, .. } => m,
        }
    }

    /// Build a [`EvaError::Cancelled`].
    pub fn cancelled(reason: CancelReason, message: impl Into<String>) -> EvaError {
        EvaError::Cancelled {
            reason,
            message: message.into(),
        }
    }

    /// The structured cancellation reason, when this is a cancellation.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        match self {
            EvaError::Cancelled { reason, .. } => Some(*reason),
            _ => None,
        }
    }
}

impl fmt::Display for EvaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage(), self.message())
    }
}

impl std::error::Error for EvaError {}

impl From<std::io::Error> for EvaError {
    fn from(e: std::io::Error) -> Self {
        EvaError::Io(e.to_string())
    }
}

impl From<serde_json::Error> for EvaError {
    fn from(e: serde_json::Error) -> Self {
        // A serde failure on persisted bytes means the store is not what we
        // wrote: a torn or corrupted file, not an environment problem.
        EvaError::Corrupt(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_message() {
        let e = EvaError::Parse("unexpected token ';'".into());
        assert_eq!(e.to_string(), "[parse] unexpected token ';'");
        assert_eq!(e.stage(), "parse");
        assert_eq!(e.message(), "unexpected token ';'");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: EvaError = io.into();
        assert_eq!(e.stage(), "io");
        assert!(e.message().contains("gone"));
    }

    #[test]
    fn serde_error_converts_to_corrupt() {
        let syntax = serde_json::from_str::<u32>("{not json").unwrap_err();
        let e: EvaError = syntax.into();
        assert_eq!(e.stage(), "corrupt");

        let eof = serde_json::from_str::<u32>("").unwrap_err();
        let e: EvaError = eof.into();
        assert_eq!(e.stage(), "corrupt");
    }

    #[test]
    fn stage_labels_are_distinct() {
        let all = [
            EvaError::Parse(String::new()),
            EvaError::Binder(String::new()),
            EvaError::Catalog(String::new()),
            EvaError::Plan(String::new()),
            EvaError::Exec(String::new()),
            EvaError::Storage(String::new()),
            EvaError::Type(String::new()),
            EvaError::Io(String::new()),
            EvaError::Corrupt(String::new()),
            EvaError::Config(String::new()),
            EvaError::Cancelled {
                reason: CancelReason::User,
                message: String::new(),
            },
        ];
        let mut labels: Vec<_> = all.iter().map(|e| e.stage()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn cancelled_carries_structured_reason() {
        let e = EvaError::cancelled(CancelReason::Deadline, "sim deadline 5ms exceeded");
        assert_eq!(e.stage(), "cancelled");
        assert_eq!(e.cancel_reason(), Some(CancelReason::Deadline));
        assert_eq!(e.to_string(), "[cancelled] sim deadline 5ms exceeded");
        assert_eq!(EvaError::Exec("boom".into()).cancel_reason(), None);
        for (r, label) in [
            (CancelReason::Deadline, "deadline"),
            (CancelReason::Budget, "budget"),
            (CancelReason::Shed, "shed"),
            (CancelReason::User, "user"),
        ] {
            assert_eq!(r.label(), label);
            assert_eq!(r.to_string(), label);
        }
    }
}
