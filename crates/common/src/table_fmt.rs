//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints paper-style tables; this tiny formatter
//! keeps them aligned and consistent without pulling a dependency.

/// A simple aligned-text table builder.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows extend the header with blanks.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        while self.header.len() < cells.len() {
            self.header.push(String::new());
        }
        while cells.len() < self.header.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table with a header separator.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total.max(1)));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Format a float with a fixed number of decimals, trimming `-0.0`.
pub fn fmt_f(v: f64, decimals: usize) -> String {
    let v = if v == 0.0 { 0.0 } else { v };
    format!("{v:.decimals$}")
}

/// Format a ratio as e.g. `4.11x`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "22"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("a"));
        // Columns align: "value" column starts at the same offset in all rows.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 2], "22");
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1", "2", "3"]);
        assert_eq!(t.n_rows(), 1);
        let r = t.render();
        assert!(r.contains('3'));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(-0.0, 1), "0.0");
        assert_eq!(fmt_x(4.114), "4.11x");
    }
}
