//! Deterministic fault injection.
//!
//! The durability story of the view store (DESIGN.md §4d) is only credible
//! if every failure mode it claims to survive is actually exercised. This
//! module provides a small, fully deterministic failpoint facility: named
//! injection *sites* wired through the storage save/load path and the UDF
//! runtime, each armed with a [`FireRule`] deciding *when* the site fires.
//!
//! Determinism is the design constraint throughout:
//!
//! * **Ordinal sites** (the storage IO sites) fire on hit indices
//!   (`nth:3`, `every:2`, `always`). Save/load walk segments in a fixed
//!   order, so "the 3rd write crashes" is perfectly reproducible.
//! * **Keyed sites** (`udf_transient`) decide per *input key* via a seeded
//!   hash, never per hit order — a UDF invocation for frame 17 fails on the
//!   same attempts whether it is evaluated serially or fanned out to the
//!   worker pool. This is what preserves the parallel == serial
//!   `CostBreakdown` identity under injected faults: the *set* of failures
//!   is scheduling-independent, and the executor charges all retry backoff
//!   on the caller thread.
//!
//! Nothing here touches wall-clock time: injected failures are free, and
//! the *response* to them (retry backoff in the executor) is charged to the
//! session's [`SimClock`](crate::SimClock) like any other simulated cost.
//!
//! Registries are armed programmatically ([`FailpointRegistry::arm`]) or
//! from the `EVA_FAILPOINTS` environment variable (see
//! [`FailpointRegistry::apply_spec`] for the grammar), which is how the CI
//! chaos job runs the whole fault-injection suite.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::{EvaError, Result};
use crate::hash::xxhash64;

/// Environment variable consulted by [`FailpointRegistry::from_env`].
pub const FAILPOINTS_ENV: &str = "EVA_FAILPOINTS";

/// A named injection site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Failpoint {
    /// Crash mid-write: a partial payload lands in the temp file and the
    /// save aborts before the atomic rename.
    TornWrite,
    /// A lying disk: fewer bytes than the header claims are persisted, yet
    /// the file is renamed into place as if the write completed.
    ShortWrite,
    /// Crash between the temp-file write and the atomic rename.
    RenameFail,
    /// Silent corruption: one bit of an already-persisted file is flipped
    /// after a successful save.
    BitFlip,
    /// A transient UDF failure (flaky model server); the executor's retry
    /// path owns the response.
    UdfTransient,
}

impl Failpoint {
    /// Every site, in stable order.
    pub const ALL: [Failpoint; 5] = [
        Failpoint::TornWrite,
        Failpoint::ShortWrite,
        Failpoint::RenameFail,
        Failpoint::BitFlip,
        Failpoint::UdfTransient,
    ];

    /// The site's name as used in `EVA_FAILPOINTS` specs.
    pub fn name(&self) -> &'static str {
        match self {
            Failpoint::TornWrite => "torn_write",
            Failpoint::ShortWrite => "short_write",
            Failpoint::RenameFail => "rename_fail",
            Failpoint::BitFlip => "bit_flip",
            Failpoint::UdfTransient => "udf_transient",
        }
    }

    /// Parse a site name.
    pub fn parse(s: &str) -> Option<Failpoint> {
        Failpoint::ALL.into_iter().find(|f| f.name() == s)
    }

    fn index(&self) -> usize {
        match self {
            Failpoint::TornWrite => 0,
            Failpoint::ShortWrite => 1,
            Failpoint::RenameFail => 2,
            Failpoint::BitFlip => 3,
            Failpoint::UdfTransient => 4,
        }
    }

    /// Per-site salt folded into keyed decisions so two sites armed with the
    /// same probability select different key sets.
    fn salt(&self) -> u64 {
        0x5EED_FA11_0000_0000 | self.index() as u64
    }
}

/// When an armed site fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FireRule {
    /// Disarmed (the default for every site).
    Never,
    /// Fire on every hit.
    Always,
    /// Fire exactly once, on the `n`-th hit (1-based).
    Nth(u64),
    /// Fire on every `n`-th hit (`n ≥ 1`).
    Every(u64),
    /// Keyed decision for [`Failpoint::UdfTransient`]: a key is *selected*
    /// with probability `prob_permille / 1000` (seeded hash of the key — the
    /// same key is always selected or never, independent of evaluation
    /// order), and a selected key fails its first `fails` attempts before
    /// succeeding.
    Keyed {
        /// Selection probability in permille (0..=1000).
        prob_permille: u16,
        /// Number of leading attempts that fail for a selected key.
        fails: u32,
    },
}

#[derive(Debug, Default)]
struct Site {
    rule: Mutex<Option<FireRule>>,
    hits: AtomicU64,
    fires: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    sites: [Site; 5],
    seed: AtomicU64,
}

/// A set of armed failpoints. Cheap to clone (shared state), `Sync`, and
/// disarmed by default so production paths pay one relaxed atomic load per
/// site check.
#[derive(Debug, Clone, Default)]
pub struct FailpointRegistry {
    inner: Arc<Inner>,
}

impl FailpointRegistry {
    /// A registry with every site disarmed.
    pub fn new() -> FailpointRegistry {
        FailpointRegistry::default()
    }

    /// A registry armed from the `EVA_FAILPOINTS` environment variable, or
    /// fully disarmed when the variable is unset. Parse errors disarm the
    /// registry rather than failing construction — a bad spec must never
    /// take down a production engine.
    pub fn from_env() -> FailpointRegistry {
        let reg = FailpointRegistry::new();
        if let Ok(spec) = std::env::var(FAILPOINTS_ENV) {
            let _ = reg.apply_spec(&spec);
        }
        reg
    }

    /// The seed folded into keyed decisions (chaos runs record it so every
    /// injected failure is replayable).
    pub fn seed(&self) -> u64 {
        self.inner.seed.load(Ordering::Relaxed)
    }

    /// Set the keyed-decision seed.
    pub fn set_seed(&self, seed: u64) {
        self.inner.seed.store(seed, Ordering::Relaxed);
    }

    /// Arm one site. Resets the site's hit/fire counters.
    pub fn arm(&self, site: Failpoint, rule: FireRule) {
        let s = &self.inner.sites[site.index()];
        *s.rule.lock().expect("failpoint lock") = match rule {
            FireRule::Never => None,
            other => Some(other),
        };
        s.hits.store(0, Ordering::Relaxed);
        s.fires.store(0, Ordering::Relaxed);
    }

    /// Disarm one site.
    pub fn disarm(&self, site: Failpoint) {
        self.arm(site, FireRule::Never);
    }

    /// Disarm every site (chaos scenarios call this between cases).
    pub fn disarm_all(&self) {
        for site in Failpoint::ALL {
            self.disarm(site);
        }
    }

    /// The rule currently arming a site.
    pub fn rule(&self, site: Failpoint) -> FireRule {
        self.inner.sites[site.index()]
            .rule
            .lock()
            .expect("failpoint lock")
            .unwrap_or(FireRule::Never)
    }

    /// Is any site armed?
    pub fn any_armed(&self) -> bool {
        Failpoint::ALL
            .iter()
            .any(|s| self.rule(*s) != FireRule::Never)
    }

    /// How many times a site has fired since it was last armed.
    pub fn fires(&self, site: Failpoint) -> u64 {
        self.inner.sites[site.index()].fires.load(Ordering::Relaxed)
    }

    /// Register one hit on an ordinal site and decide whether it fires.
    /// Keyed rules never fire through this path.
    pub fn should_fire(&self, site: Failpoint) -> bool {
        let s = &self.inner.sites[site.index()];
        let Some(rule) = *s.rule.lock().expect("failpoint lock") else {
            return false;
        };
        let hit = s.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = match rule {
            FireRule::Never | FireRule::Keyed { .. } => false,
            FireRule::Always => true,
            FireRule::Nth(n) => hit == n,
            FireRule::Every(n) => n > 0 && hit % n == 0,
        };
        if fire {
            s.fires.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Keyed decision: should attempt number `attempt` (0-based) for input
    /// `key` fail at this site? Deterministic in `(seed, site, key,
    /// attempt)` and independent of call order, so parallel and serial
    /// executions inject the identical failure set.
    pub fn should_fail_keyed(&self, site: Failpoint, key: u64, attempt: u32) -> bool {
        let s = &self.inner.sites[site.index()];
        let Some(FireRule::Keyed {
            prob_permille,
            fails,
        }) = *s.rule.lock().expect("failpoint lock")
        else {
            return false;
        };
        s.hits.fetch_add(1, Ordering::Relaxed);
        let seed = self.seed() ^ site.salt();
        let selected = xxhash64(&key.to_le_bytes(), seed) % 1000 < prob_permille as u64;
        let fire = selected && attempt < fails;
        if fire {
            s.fires.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Arm sites from a spec string. Grammar (`;`- or `,`-separated items):
    ///
    /// ```text
    /// all                      arm every site with its default rule
    /// seed:<u64>               set the keyed-decision seed
    /// <site>=off               disarm one site
    /// <site>=always            fire on every hit
    /// <site>=nth:<n>           fire once, on the n-th hit
    /// <site>=every:<n>         fire on every n-th hit
    /// udf_transient=p:<f>:fails:<n>   keyed: select keys w.p. f, fail n attempts
    /// ```
    ///
    /// Default rules under `all`: ordinal sites get `nth:1`,
    /// `udf_transient` gets `p:0.25:fails:1`.
    pub fn apply_spec(&self, spec: &str) -> Result<()> {
        for item in spec
            .split([';', ','])
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            if item == "all" {
                for site in Failpoint::ALL {
                    self.arm(site, default_rule(site));
                }
                continue;
            }
            if let Some(seed) = item.strip_prefix("seed:") {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| EvaError::Config(format!("bad failpoint seed '{seed}'")))?;
                self.set_seed(seed);
                continue;
            }
            let (name, rule) = item.split_once('=').ok_or_else(|| {
                EvaError::Config(format!("bad failpoint item '{item}' (want site=rule)"))
            })?;
            let site = Failpoint::parse(name)
                .ok_or_else(|| EvaError::Config(format!("unknown failpoint site '{name}'")))?;
            self.arm(site, parse_rule(rule)?);
        }
        Ok(())
    }
}

/// The rule `all` arms a site with.
fn default_rule(site: Failpoint) -> FireRule {
    match site {
        Failpoint::UdfTransient => FireRule::Keyed {
            prob_permille: 250,
            fails: 1,
        },
        _ => FireRule::Nth(1),
    }
}

fn parse_rule(rule: &str) -> Result<FireRule> {
    let bad = || EvaError::Config(format!("bad failpoint rule '{rule}'"));
    let parts: Vec<&str> = rule.split(':').collect();
    match parts.as_slice() {
        ["off"] | ["never"] => Ok(FireRule::Never),
        ["always"] => Ok(FireRule::Always),
        ["nth", n] => n.parse().map(FireRule::Nth).map_err(|_| bad()),
        ["every", n] => n.parse().map(FireRule::Every).map_err(|_| bad()),
        ["p", p] | ["p", p, "fails", _] => {
            let prob: f64 = p.parse().map_err(|_| bad())?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(bad());
            }
            let fails = match parts.as_slice() {
                [_, _, _, n] => n.parse().map_err(|_| bad())?,
                _ => 1,
            };
            Ok(FireRule::Keyed {
                prob_permille: (prob * 1000.0).round() as u16,
                fails,
            })
        }
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_by_default() {
        let r = FailpointRegistry::new();
        for site in Failpoint::ALL {
            assert!(!r.should_fire(site));
            assert!(!r.should_fail_keyed(site, 7, 0));
            assert_eq!(r.fires(site), 0);
        }
        assert!(!r.any_armed());
    }

    #[test]
    fn nth_fires_exactly_once() {
        let r = FailpointRegistry::new();
        r.arm(Failpoint::TornWrite, FireRule::Nth(3));
        let fired: Vec<bool> = (0..6)
            .map(|_| r.should_fire(Failpoint::TornWrite))
            .collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(r.fires(Failpoint::TornWrite), 1);
    }

    #[test]
    fn every_fires_periodically() {
        let r = FailpointRegistry::new();
        r.arm(Failpoint::RenameFail, FireRule::Every(2));
        let fired: Vec<bool> = (0..6)
            .map(|_| r.should_fire(Failpoint::RenameFail))
            .collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn always_and_disarm() {
        let r = FailpointRegistry::new();
        r.arm(Failpoint::BitFlip, FireRule::Always);
        assert!(r.should_fire(Failpoint::BitFlip));
        r.disarm(Failpoint::BitFlip);
        assert!(!r.should_fire(Failpoint::BitFlip));
    }

    #[test]
    fn keyed_decisions_are_order_independent() {
        let r = FailpointRegistry::new();
        r.set_seed(42);
        r.arm(
            Failpoint::UdfTransient,
            FireRule::Keyed {
                prob_permille: 500,
                fails: 2,
            },
        );
        let forward: Vec<bool> = (0..100)
            .map(|k| r.should_fail_keyed(Failpoint::UdfTransient, k, 0))
            .collect();
        let backward: Vec<bool> = (0..100)
            .rev()
            .map(|k| r.should_fail_keyed(Failpoint::UdfTransient, k, 0))
            .collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
        let n_selected = forward.iter().filter(|b| **b).count();
        assert!((20..80).contains(&n_selected), "p=0.5 of 100: {n_selected}");
        // A selected key fails attempts 0 and 1, then succeeds.
        let k = forward.iter().position(|b| *b).unwrap() as u64;
        assert!(r.should_fail_keyed(Failpoint::UdfTransient, k, 1));
        assert!(!r.should_fail_keyed(Failpoint::UdfTransient, k, 2));
    }

    #[test]
    fn seed_changes_the_selected_set() {
        let select = |seed: u64| -> Vec<bool> {
            let r = FailpointRegistry::new();
            r.set_seed(seed);
            r.arm(
                Failpoint::UdfTransient,
                FireRule::Keyed {
                    prob_permille: 500,
                    fails: 1,
                },
            );
            (0..64)
                .map(|k| r.should_fail_keyed(Failpoint::UdfTransient, k, 0))
                .collect()
        };
        assert_ne!(select(1), select(2));
        assert_eq!(select(3), select(3));
    }

    #[test]
    fn spec_round_trip() {
        let r = FailpointRegistry::new();
        r.apply_spec("torn_write=nth:2; rename_fail=always, seed:99")
            .unwrap();
        assert_eq!(r.rule(Failpoint::TornWrite), FireRule::Nth(2));
        assert_eq!(r.rule(Failpoint::RenameFail), FireRule::Always);
        assert_eq!(r.rule(Failpoint::ShortWrite), FireRule::Never);
        assert_eq!(r.seed(), 99);
        r.apply_spec("torn_write=off").unwrap();
        assert_eq!(r.rule(Failpoint::TornWrite), FireRule::Never);
    }

    #[test]
    fn spec_all_arms_everything() {
        let r = FailpointRegistry::new();
        r.apply_spec("all").unwrap();
        assert!(r.any_armed());
        for site in Failpoint::ALL {
            assert_ne!(r.rule(site), FireRule::Never, "{}", site.name());
        }
        assert_eq!(
            r.rule(Failpoint::UdfTransient),
            FireRule::Keyed {
                prob_permille: 250,
                fails: 1
            }
        );
    }

    #[test]
    fn spec_keyed_grammar() {
        let r = FailpointRegistry::new();
        r.apply_spec("udf_transient=p:0.5:fails:3").unwrap();
        assert_eq!(
            r.rule(Failpoint::UdfTransient),
            FireRule::Keyed {
                prob_permille: 500,
                fails: 3
            }
        );
        r.apply_spec("udf_transient=p:0.1").unwrap();
        assert_eq!(
            r.rule(Failpoint::UdfTransient),
            FireRule::Keyed {
                prob_permille: 100,
                fails: 1
            }
        );
    }

    #[test]
    fn spec_errors_are_reported() {
        let r = FailpointRegistry::new();
        assert!(r.apply_spec("nope=always").is_err());
        assert!(r.apply_spec("torn_write").is_err());
        assert!(r.apply_spec("torn_write=wat").is_err());
        assert!(r.apply_spec("udf_transient=p:1.5").is_err());
        assert!(r.apply_spec("seed:abc").is_err());
    }

    #[test]
    fn arming_resets_counters() {
        let r = FailpointRegistry::new();
        r.arm(Failpoint::TornWrite, FireRule::Always);
        assert!(r.should_fire(Failpoint::TornWrite));
        assert_eq!(r.fires(Failpoint::TornWrite), 1);
        r.arm(Failpoint::TornWrite, FireRule::Nth(1));
        assert_eq!(r.fires(Failpoint::TornWrite), 0);
        assert!(r.should_fire(Failpoint::TornWrite));
    }

    #[test]
    fn clones_share_state() {
        let a = FailpointRegistry::new();
        let b = a.clone();
        b.arm(Failpoint::ShortWrite, FireRule::Always);
        assert!(a.should_fire(Failpoint::ShortWrite));
        assert_eq!(b.fires(Failpoint::ShortWrite), 1);
    }

    #[test]
    fn site_names_round_trip() {
        for site in Failpoint::ALL {
            assert_eq!(Failpoint::parse(site.name()), Some(site));
        }
        assert_eq!(Failpoint::parse("bogus"), None);
    }
}
