//! Shared test support: per-test unique temporary directories.
//!
//! Every test binary in the workspace used to carry its own copy of a
//! `unique_dir(tag)` helper. This is the single blessed implementation;
//! `eva-harness` re-exports it for integration tests.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// Create and return a fresh empty directory under the system temp dir.
///
/// The name embeds the tag, the process id (parallel test binaries are
/// separate processes), and a per-process counter (repeated calls with the
/// same tag never collide), so no two callers can ever race on a shared
/// directory. Any stale directory from a crashed previous run is removed
/// first.
pub fn unique_temp_dir(tag: &str) -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("eva_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create unique temp dir");
    dir
}

/// RAII variant of [`unique_temp_dir`]: the directory is deleted on drop.
///
/// Use this for loops that create many scratch directories (the fuzzer's
/// per-case save/load cycles) so the temp dir does not fill up.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh unique directory that lives until this value drops.
    pub fn new(tag: &str) -> Self {
        TempDir {
            path: unique_temp_dir(tag),
        }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_unique_and_created() {
        let a = unique_temp_dir("testutil");
        let b = unique_temp_dir("testutil");
        assert_ne!(a, b);
        assert!(a.is_dir() && b.is_dir());
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn tempdir_removes_on_drop() {
        let path = {
            let t = TempDir::new("testutil_raii");
            assert!(t.path().is_dir());
            t.path().to_path_buf()
        };
        assert!(!path.exists());
    }
}
