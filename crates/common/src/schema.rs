//! Relation schemas.

use crate::error::{EvaError, Result};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Data types known to the engine. Matches the surface of EVA-QL's
/// `CREATE UDF … INPUT/OUTPUT` declarations plus the column types of video
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Bounding box.
    BBox,
    /// Opaque frame payload (the `frame NDARRAY UINT8(3, ANYDIM, ANYDIM)` of
    /// Listing 2). Carried by reference — the engine never inspects pixels.
    Frame,
}

impl DataType {
    /// Whether a [`Value`] inhabits this type (NULL inhabits every type).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (DataType::Bool, Value::Bool(_))
                | (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_))
                | (DataType::Float, Value::Int(_))
                | (DataType::Str, Value::Str(_))
                | (DataType::BBox, Value::Box(_))
                | (DataType::Frame, Value::Int(_))
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::BBox => "BBOX",
            DataType::Frame => "FRAME",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Column name (lower-cased at construction; EVA-QL is case-insensitive).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Create a field, normalizing the name to lowercase.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into().to_ascii_lowercase(),
            dtype,
        }
    }
}

/// An ordered list of fields describing the rows an operator produces.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields; duplicate names are rejected.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(EvaError::Catalog(format!(
                    "duplicate column name '{}' in schema",
                    f.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// Empty schema.
    pub fn empty() -> Self {
        Schema::default()
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    ///
    /// Field names are stored lowercase and expression column names are
    /// normalized at construction, so the common case is an exact match —
    /// tried first without allocating. The lowercasing fallback only runs
    /// for mixed-case callers (interactive lookups, tests).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.fields.iter().position(|f| f.name == name) {
            return Some(i);
        }
        if name.bytes().all(|b| !b.is_ascii_uppercase()) {
            return None;
        }
        let lname = name.to_ascii_lowercase();
        self.fields.iter().position(|f| f.name == lname)
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Concatenate two schemas (the shape produced by APPLY/JOIN). Columns of
    /// `other` that collide with existing names are suffixed `_r`, mirroring
    /// how planners disambiguate join outputs.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let mut name = f.name.clone();
            if fields.iter().any(|g| g.name == name) {
                name.push_str("_r");
            }
            fields.push(Field {
                name,
                dtype: f.dtype,
            });
        }
        Schema { fields }
    }

    /// Project a subset of columns by name.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            let f = self
                .field(n)
                .ok_or_else(|| EvaError::Binder(format!("unknown column '{n}'")))?;
            fields.push(f.clone());
        }
        Ok(Schema { fields })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fld.name, fld.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("label", DataType::Str),
            Field::new("bbox", DataType::BBox),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("ID", DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err.stage(), "catalog");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = demo();
        assert_eq!(s.index_of("LABEL"), Some(1));
        assert_eq!(s.field("Bbox").unwrap().dtype, DataType::BBox);
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn join_disambiguates_collisions() {
        let s = demo();
        let joined = s.join(&demo());
        assert_eq!(joined.len(), 6);
        assert!(joined.index_of("id_r").is_some());
        assert_eq!(joined.index_of("id"), Some(0));
    }

    #[test]
    fn project_selects_in_order() {
        let s = demo();
        let p = s.project(&["label", "id"]).unwrap();
        assert_eq!(p.fields()[0].name, "label");
        assert_eq!(p.fields()[1].name, "id");
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn admits_matches_types() {
        assert!(DataType::Float.admits(&Value::Int(1)));
        assert!(DataType::Int.admits(&Value::Null));
        assert!(!DataType::Int.admits(&Value::from("x")));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(demo().to_string(), "(id INT, label STRING, bbox BBOX)");
    }
}
