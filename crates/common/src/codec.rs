//! Hand-written binary codec for the persistence layer.
//!
//! Every byte that EVA-RS writes to disk goes through this module: a small
//! little-endian [`ByteWriter`]/[`ByteReader`] pair plus encoders for the
//! vocabulary types ([`Value`], [`Schema`], rows). The format is explicit and
//! versioned so the recovery pass can *validate* persisted bytes instead of
//! trusting them — every read is bounds-checked and returns
//! [`EvaError::Corrupt`] on truncation or malformed data, never panics.
//!
//! [`seal`]/[`unseal`] wrap a payload in the common file envelope used by
//! view segments, the store manifest and the UDF-manager state:
//!
//! ```text
//! magic(4) | format_version(u32) | payload_len(u64) | payload | xxhash64(u64)
//! ```
//!
//! The trailing checksum covers everything before it, so a torn write, a
//! short write or a single flipped bit anywhere in the file is detected on
//! load. A `format_version` greater than the reader's is reported as
//! corruption ("from the future") rather than misparsed.

use crate::batch::Row;
use crate::error::{EvaError, Result};
use crate::hash::xxhash64;
use crate::schema::{DataType, Field, Schema};
use crate::value::{BBox, Value};

/// Seed for envelope checksums — any fixed value works; this one makes EVA
/// envelopes distinguishable from other xxhash64 uses in the codebase.
const ENVELOPE_SEED: u64 = 0xE7A5_EA1E_D000_0001;

/// Bytes of envelope framing around a payload: magic + version + len + checksum.
pub const ENVELOPE_OVERHEAD: usize = 4 + 4 + 8 + 8;

fn corrupt(what: impl Into<String>) -> EvaError {
    EvaError::Corrupt(what.into())
}

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    /// Writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The accumulated bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, yielding the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64` (little-endian two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f32` (little-endian IEEE-754 bits — lossless).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` (little-endian IEEE-754 bits — lossless).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a length-prefixed UTF-8 string (u32 byte length).
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a length-prefixed byte blob (u32 byte length).
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Write an element count (u64).
    pub fn count(&mut self, n: usize) {
        self.u64(n as u64);
    }
}

/// Bounds-checked little-endian byte source. Every accessor returns
/// [`EvaError::Corrupt`] instead of panicking when the buffer runs out.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f32`.
    pub fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a bool byte; anything other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("invalid bool byte {b:#x}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string payload is not valid UTF-8"))
    }

    /// Read a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read an element count, rejecting counts that could not possibly fit
    /// in the remaining bytes (guards `Vec::with_capacity` against absurd
    /// allocations from corrupted length fields).
    pub fn count(&mut self) -> Result<usize> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(corrupt(format!(
                "count {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Assert the buffer is fully consumed (trailing garbage is corruption).
    pub fn expect_end(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(corrupt(format!("{} trailing bytes", self.remaining())))
        }
    }
}

// ---------------------------------------------------------------------------
// File envelope
// ---------------------------------------------------------------------------

/// Wrap `payload` in the checksummed file envelope.
pub fn seal(magic: [u8; 4], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(payload.len() + ENVELOPE_OVERHEAD);
    w.buf.extend_from_slice(&magic);
    w.u32(version);
    w.u64(payload.len() as u64);
    w.buf.extend_from_slice(payload);
    let sum = xxhash64(w.as_slice(), ENVELOPE_SEED);
    w.u64(sum);
    w.into_bytes()
}

/// Validate an envelope and return `(version, payload)`.
///
/// Checks, in order: minimum length, magic, version ≤ `max_version`,
/// payload length vs. actual file size, and the trailing checksum. Every
/// failure is [`EvaError::Corrupt`] with a reason suitable for a
/// quarantine report.
pub fn unseal(bytes: &[u8], magic: [u8; 4], max_version: u32) -> Result<(u32, &[u8])> {
    if bytes.len() < ENVELOPE_OVERHEAD {
        return Err(corrupt(format!(
            "file too small for envelope: {} bytes",
            bytes.len()
        )));
    }
    let mut r = ByteReader::new(bytes);
    let got_magic = r.take(4)?;
    if got_magic != magic {
        return Err(corrupt(format!(
            "bad magic {:02x?} (expected {:02x?})",
            got_magic, magic
        )));
    }
    let version = r.u32()?;
    if version > max_version {
        return Err(corrupt(format!(
            "format version {version} is from the future (reader understands ≤ {max_version})"
        )));
    }
    let payload_len = r.u64()? as usize;
    let body_end = bytes.len() - 8;
    let have = body_end.saturating_sub(4 + 4 + 8);
    if payload_len != have {
        return Err(corrupt(format!(
            "payload length mismatch: header says {payload_len}, file holds {have}"
        )));
    }
    let expect = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    let actual = xxhash64(&bytes[..body_end], ENVELOPE_SEED);
    if expect != actual {
        return Err(corrupt(format!(
            "checksum mismatch: stored {expect:#018x}, computed {actual:#018x}"
        )));
    }
    Ok((version, &bytes[16..body_end]))
}

// ---------------------------------------------------------------------------
// Vocabulary-type encoders
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BOX: u8 = 5;

/// Encode a [`Value`]. Unlike [`Value::write_bytes`] (which quantizes boxes
/// for hashing), this encoding is lossless: boxes keep full f32 precision.
pub fn write_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.u8(TAG_NULL),
        Value::Bool(b) => {
            w.u8(TAG_BOOL);
            w.bool(*b);
        }
        Value::Int(i) => {
            w.u8(TAG_INT);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(TAG_FLOAT);
            w.f64(*f);
        }
        Value::Str(s) => {
            w.u8(TAG_STR);
            w.str(s);
        }
        Value::Box(b) => {
            w.u8(TAG_BOX);
            w.f32(b.x1);
            w.f32(b.y1);
            w.f32(b.x2);
            w.f32(b.y2);
        }
    }
}

/// Decode a [`Value`] written by [`write_value`].
pub fn read_value(r: &mut ByteReader) -> Result<Value> {
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => Ok(Value::Bool(r.bool()?)),
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_FLOAT => Ok(Value::Float(r.f64()?)),
        TAG_STR => Ok(Value::Str(r.str()?)),
        TAG_BOX => Ok(Value::Box(BBox {
            x1: r.f32()?,
            y1: r.f32()?,
            x2: r.f32()?,
            y2: r.f32()?,
        })),
        t => Err(corrupt(format!("unknown value tag {t:#x}"))),
    }
}

/// Encode a row (count-prefixed values).
pub fn write_row(w: &mut ByteWriter, row: &Row) {
    w.count(row.len());
    for v in row {
        write_value(w, v);
    }
}

/// Decode a row written by [`write_row`].
pub fn read_row(r: &mut ByteReader) -> Result<Row> {
    let n = r.count()?;
    let mut row = Row::with_capacity(n);
    for _ in 0..n {
        row.push(read_value(r)?);
    }
    Ok(row)
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::BBox => 4,
        DataType::Frame => 5,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType> {
    match t {
        0 => Ok(DataType::Bool),
        1 => Ok(DataType::Int),
        2 => Ok(DataType::Float),
        3 => Ok(DataType::Str),
        4 => Ok(DataType::BBox),
        5 => Ok(DataType::Frame),
        t => Err(corrupt(format!("unknown dtype tag {t:#x}"))),
    }
}

/// Encode a [`Schema`] (count-prefixed `name, dtype` fields).
pub fn write_schema(w: &mut ByteWriter, schema: &Schema) {
    w.count(schema.len());
    for f in schema.fields() {
        w.str(&f.name);
        w.u8(dtype_tag(f.dtype));
    }
}

/// Decode a [`Schema`] written by [`write_schema`]. Re-runs [`Schema::new`]
/// validation, so a corrupted duplicate-field schema is rejected.
pub fn read_schema(r: &mut ByteReader) -> Result<Schema> {
    let n = r.count()?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let dtype = dtype_from_tag(r.u8()?)?;
        fields.push(Field { name, dtype });
    }
    Schema::new(fields).map_err(|e| corrupt(format!("invalid persisted schema: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(65_000);
        w.u32(4_000_000_000);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f32(1.25);
        w.f64(-0.333);
        w.bool(true);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        w.count(9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 4_000_000_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f32().unwrap(), 1.25);
        assert_eq!(r.f64().unwrap(), -0.333);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        // count() is bounds-checked against remaining bytes, which is 0 here.
        assert!(r.count().is_err());
    }

    #[test]
    fn reader_truncation_is_corrupt_not_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.u64().unwrap_err();
        assert_eq!(err.stage(), "corrupt");
        // The failed read consumed nothing extra; small reads still work.
        assert_eq!(r.u16().unwrap(), u16::from_le_bytes([1, 2]));
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn absurd_count_rejected() {
        let mut w = ByteWriter::new();
        w.count(u64::MAX as usize);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.count().unwrap_err().stage(), "corrupt");
    }

    #[test]
    fn invalid_bool_and_utf8_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert_eq!(r.bool().unwrap_err().stage(), "corrupt");
        let mut w = ByteWriter::new();
        w.u32(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.str().unwrap_err().stage(), "corrupt");
    }

    #[test]
    fn value_round_trip_lossless() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Float(std::f64::consts::PI),
            Value::Str("a car".into()),
            // Coordinates chosen to NOT survive the hashing quantization, so
            // this test proves the codec is lossless where write_bytes isn't.
            Value::Box(BBox {
                x1: 0.123_456_79,
                y1: 0.987_654_3,
                x2: 1.000_000_1,
                y2: 7.5e-7,
            }),
        ];
        let mut w = ByteWriter::new();
        for v in &values {
            write_value(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in &values {
            assert_eq!(&read_value(&mut r).unwrap(), v);
        }
        r.expect_end().unwrap();
    }

    #[test]
    fn row_and_schema_round_trip() {
        let row: Row = vec![Value::Int(3), Value::Str("x".into()), Value::Null];
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("label", DataType::Str),
            Field::new("bbox", DataType::BBox),
            Field::new("frame", DataType::Frame),
            Field::new("score", DataType::Float),
            Field::new("ok", DataType::Bool),
        ])
        .unwrap();
        let mut w = ByteWriter::new();
        write_row(&mut w, &row);
        write_schema(&mut w, &schema);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_row(&mut r).unwrap(), row);
        assert_eq!(read_schema(&mut r).unwrap(), schema);
        r.expect_end().unwrap();
    }

    #[test]
    fn envelope_round_trip() {
        let sealed = seal(*b"TEST", 3, b"payload bytes");
        let (version, payload) = unseal(&sealed, *b"TEST", 3).unwrap();
        assert_eq!(version, 3);
        assert_eq!(payload, b"payload bytes");
    }

    #[test]
    fn envelope_rejects_every_tampering() {
        let sealed = seal(*b"TEST", 1, b"some payload");

        // Wrong magic.
        let err = unseal(&sealed, *b"ELSE", 1).unwrap_err();
        assert!(err.message().contains("bad magic"), "{err}");

        // Future version.
        let future = seal(*b"TEST", 2, b"some payload");
        let err = unseal(&future, *b"TEST", 1).unwrap_err();
        assert!(err.message().contains("future"), "{err}");

        // Truncation at every length below full.
        for cut in 0..sealed.len() {
            let err = unseal(&sealed[..cut], *b"TEST", 1).unwrap_err();
            assert_eq!(err.stage(), "corrupt", "cut={cut}");
        }

        // Trailing garbage.
        let mut long = sealed.clone();
        long.push(0);
        assert_eq!(unseal(&long, *b"TEST", 1).unwrap_err().stage(), "corrupt");

        // A single flipped bit anywhere in the file.
        for byte in 0..sealed.len() {
            let mut flipped = sealed.clone();
            flipped[byte] ^= 0x10;
            assert!(
                unseal(&flipped, *b"TEST", 1).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn empty_payload_seals() {
        let sealed = seal(*b"EMTY", 1, &[]);
        assert_eq!(sealed.len(), ENVELOPE_OVERHEAD);
        let (_, payload) = unseal(&sealed, *b"EMTY", 1).unwrap();
        assert!(payload.is_empty());
    }
}
