//! Row batches — the unit of data flow between physical operators.
//!
//! EVA's execution engine processes video tuples in batches (the paper uses
//! GPU batch size 20 and a 200 MiB materialization batch). A [`Batch`] pairs
//! a shared [`Schema`] with a vector of rows.

use crate::column::{Column, ColumnBuilder};
use crate::error::{EvaError, Result};
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A single tuple.
pub type Row = Vec<Value>;

/// A batch of rows sharing one schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Batch {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl Batch {
    /// Create a batch. In debug builds, every row is validated against the
    /// schema arity.
    pub fn new(schema: Arc<Schema>, rows: Vec<Row>) -> Self {
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row arity mismatch with schema {schema}"
        );
        Batch { schema, rows }
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Batch {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema shared by all rows.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access to rows (used by operators that edit in place).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at `(row, column-name)`.
    pub fn value(&self, row: usize, col: &str) -> Result<&Value> {
        let idx = self
            .schema
            .index_of(col)
            .ok_or_else(|| EvaError::Binder(format!("unknown column '{col}'")))?;
        self.rows
            .get(row)
            .map(|r| &r[idx])
            .ok_or_else(|| EvaError::Exec(format!("row index {row} out of bounds")))
    }

    /// Append all rows from another batch (schemas must match). Schema
    /// equality is checked by `Arc` pointer first — operators pass one
    /// shared schema down the tree, so the structural comparison only runs
    /// on a pointer miss.
    pub fn extend(&mut self, other: Batch) -> Result<()> {
        if !Arc::ptr_eq(&self.schema, &other.schema) && *other.schema != *self.schema {
            return Err(EvaError::Exec(format!(
                "cannot extend batch {} with batch {}",
                self.schema, other.schema
            )));
        }
        self.rows.extend(other.rows);
        Ok(())
    }
}

/// A batch in columnar form: one shared [`Column`] per schema field plus an
/// optional *selection vector* of surviving physical row indices.
///
/// Filters never copy survivors — they narrow the selection. Columns are
/// `Arc`-shared, so projection (column reordering) and selection narrowing
/// are both zero-copy; data is compacted only at boundaries that need rows
/// ([`ColumnarBatch::to_batch`]) or fresh columns (computed projections).
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    schema: Arc<Schema>,
    columns: Vec<Arc<Column>>,
    /// Physical row indices that survive, in order; `None` means all rows.
    selection: Option<Arc<[u32]>>,
    /// Physical row count (columns may be empty when the schema is).
    n_rows: usize,
}

impl ColumnarBatch {
    /// Build from columns (all of length `n_rows`), no selection.
    pub fn new(schema: Arc<Schema>, columns: Vec<Arc<Column>>, n_rows: usize) -> ColumnarBatch {
        debug_assert_eq!(columns.len(), schema.len(), "column arity");
        debug_assert!(
            columns.iter().all(|c| c.len() == n_rows),
            "column length mismatch"
        );
        ColumnarBatch {
            schema,
            columns,
            selection: None,
            n_rows,
        }
    }

    /// Pivot a row batch into columns (see [`ColumnBuilder`] for how the
    /// physical representation is inferred).
    pub fn from_batch(batch: &Batch) -> ColumnarBatch {
        let n = batch.len();
        let width = batch.schema().len();
        let mut builders: Vec<ColumnBuilder> = (0..width).map(|_| ColumnBuilder::new()).collect();
        for row in batch.rows() {
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v);
            }
        }
        ColumnarBatch {
            schema: Arc::clone(batch.schema()),
            columns: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            selection: None,
            n_rows: n,
        }
    }

    /// Pivot back to rows, applying the selection (compaction point).
    pub fn to_batch(&self) -> Batch {
        let mut rows = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            let phys = self.physical_index(i);
            rows.push(
                self.columns
                    .iter()
                    .map(|c| c.value_at(phys))
                    .collect::<Row>(),
            );
        }
        Batch::new(Arc::clone(&self.schema), rows)
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The shared columns (full physical length; index through the
    /// selection).
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Arc<Column> {
        &self.columns[i]
    }

    /// The selection vector, if any.
    pub fn selection(&self) -> Option<&[u32]> {
        self.selection.as_deref()
    }

    /// Number of *visible* rows (selection length, or physical count).
    pub fn len(&self) -> usize {
        match &self.selection {
            Some(s) => s.len(),
            None => self.n_rows,
        }
    }

    /// True when no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical row index of visible row `i`.
    #[inline]
    pub fn physical_index(&self, i: usize) -> usize {
        match &self.selection {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    /// The visible physical indices as an owned vector (what vectorized
    /// kernels iterate).
    pub fn physical_indices(&self) -> Vec<u32> {
        match &self.selection {
            Some(s) => s.to_vec(),
            None => (0..self.n_rows as u32).collect(),
        }
    }

    /// Replace the selection with `sel` (physical indices — callers derive
    /// them from [`ColumnarBatch::physical_indices`], so narrowing
    /// composes). Columns are shared, not copied.
    pub fn with_selection(&self, sel: Vec<u32>) -> ColumnarBatch {
        debug_assert!(
            sel.iter().all(|&i| (i as usize) < self.n_rows),
            "selection index out of bounds"
        );
        ColumnarBatch {
            schema: Arc::clone(&self.schema),
            columns: self.columns.clone(),
            selection: Some(sel.into()),
            n_rows: self.n_rows,
        }
    }

    /// Reorder/slice columns by position under a new schema, keeping the
    /// selection — the zero-copy projection path.
    pub fn project(&self, schema: Arc<Schema>, cols: &[usize]) -> ColumnarBatch {
        debug_assert_eq!(schema.len(), cols.len());
        ColumnarBatch {
            schema,
            columns: cols.iter().map(|&i| Arc::clone(&self.columns[i])).collect(),
            selection: self.selection.clone(),
            n_rows: self.n_rows,
        }
    }
}

/// What flows between physical operators: row batches on the UDF/apply
/// path, columnar batches on the scan/filter/project/aggregate hot path.
/// The two pivot points (`from_batch`/`to_batch`) sit at the apply and
/// output boundaries — see DESIGN.md §4f.
#[derive(Debug, Clone)]
pub enum ExecBatch {
    /// Row form.
    Rows(Batch),
    /// Columnar form.
    Columnar(ColumnarBatch),
}

impl ExecBatch {
    /// Number of visible rows.
    pub fn len(&self) -> usize {
        match self {
            ExecBatch::Rows(b) => b.len(),
            ExecBatch::Columnar(b) => b.len(),
        }
    }

    /// True when no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        match self {
            ExecBatch::Rows(b) => b.schema(),
            ExecBatch::Columnar(b) => b.schema(),
        }
    }

    /// Materialize row form (identity for row batches). Operators that
    /// need metrics around the pivot should count
    /// [`ExecBatch::is_columnar`] rows first.
    pub fn into_batch(self) -> Batch {
        match self {
            ExecBatch::Rows(b) => b,
            ExecBatch::Columnar(b) => b.to_batch(),
        }
    }

    /// True for the columnar form.
    pub fn is_columnar(&self) -> bool {
        matches!(self, ExecBatch::Columnar(_))
    }
}

impl From<Batch> for ExecBatch {
    fn from(b: Batch) -> ExecBatch {
        ExecBatch::Rows(b)
    }
}

impl From<ColumnarBatch> for ExecBatch {
    fn from(b: ColumnarBatch) -> ExecBatch {
        ExecBatch::Columnar(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("label", DataType::Str),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn value_lookup() {
        let b = Batch::new(schema(), vec![vec![Value::Int(1), Value::from("car")]]);
        assert_eq!(b.value(0, "label").unwrap(), &Value::from("car"));
        assert!(b.value(0, "nope").is_err());
        assert!(b.value(5, "id").is_err());
    }

    #[test]
    fn extend_checks_schema() {
        let mut a = Batch::new(schema(), vec![vec![Value::Int(1), Value::from("x")]]);
        let b = Batch::new(schema(), vec![vec![Value::Int(2), Value::from("y")]]);
        a.extend(b).unwrap();
        assert_eq!(a.len(), 2);

        let other = Arc::new(Schema::new(vec![Field::new("z", DataType::Int)]).unwrap());
        let c = Batch::new(other, vec![vec![Value::Int(3)]]);
        assert!(a.extend(c).is_err());
    }

    #[test]
    fn empty_batch() {
        let b = Batch::empty(schema());
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::from("car")],
            vec![Value::Int(2), Value::Null],
            vec![Value::Int(3), Value::from("bus")],
        ]
    }

    #[test]
    fn columnar_round_trip_is_identical() {
        let b = Batch::new(schema(), sample_rows());
        let cb = ColumnarBatch::from_batch(&b);
        assert_eq!(cb.len(), 3);
        let back = cb.to_batch();
        assert_eq!(back.rows(), b.rows());
    }

    #[test]
    fn selection_narrows_without_copying_columns() {
        let b = Batch::new(schema(), sample_rows());
        let cb = ColumnarBatch::from_batch(&b);
        let sel = cb.with_selection(vec![2, 0]);
        assert_eq!(sel.len(), 2);
        assert!(Arc::ptr_eq(sel.column(0), cb.column(0)));
        let rows = sel.to_batch();
        assert_eq!(rows.rows()[0][0], Value::Int(3));
        assert_eq!(rows.rows()[1][0], Value::Int(1));
        // Narrowing composes through physical indices.
        let phys = sel.physical_indices();
        let narrower = sel.with_selection(vec![phys[1]]);
        assert_eq!(narrower.to_batch().rows()[0][0], Value::Int(1));
    }

    #[test]
    fn project_shares_columns_and_selection() {
        let b = Batch::new(schema(), sample_rows());
        let cb = ColumnarBatch::from_batch(&b).with_selection(vec![0, 2]);
        let out_schema = Arc::new(Schema::new(vec![Field::new("label", DataType::Str)]).unwrap());
        let p = cb.project(out_schema, &[1]);
        assert_eq!(p.len(), 2);
        assert!(Arc::ptr_eq(p.column(0), cb.column(1)));
        let rows = p.to_batch();
        assert_eq!(rows.rows()[0][0], Value::from("car"));
        assert_eq!(rows.rows()[1][0], Value::from("bus"));
    }

    #[test]
    fn exec_batch_len_and_pivot() {
        let b = Batch::new(schema(), sample_rows());
        let eb: ExecBatch = ColumnarBatch::from_batch(&b).into();
        assert!(eb.is_columnar());
        assert_eq!(eb.len(), 3);
        assert_eq!(eb.schema().len(), 2);
        assert_eq!(eb.into_batch().rows(), b.rows());
        let eb: ExecBatch = b.clone().into();
        assert!(!eb.is_columnar());
        assert_eq!(eb.into_batch().rows(), b.rows());
    }
}
