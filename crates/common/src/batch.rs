//! Row batches — the unit of data flow between physical operators.
//!
//! EVA's execution engine processes video tuples in batches (the paper uses
//! GPU batch size 20 and a 200 MiB materialization batch). A [`Batch`] pairs
//! a shared [`Schema`] with a vector of rows.

use crate::error::{EvaError, Result};
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A single tuple.
pub type Row = Vec<Value>;

/// A batch of rows sharing one schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Batch {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl Batch {
    /// Create a batch. In debug builds, every row is validated against the
    /// schema arity.
    pub fn new(schema: Arc<Schema>, rows: Vec<Row>) -> Self {
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row arity mismatch with schema {schema}"
        );
        Batch { schema, rows }
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Batch {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema shared by all rows.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access to rows (used by operators that edit in place).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at `(row, column-name)`.
    pub fn value(&self, row: usize, col: &str) -> Result<&Value> {
        let idx = self
            .schema
            .index_of(col)
            .ok_or_else(|| EvaError::Binder(format!("unknown column '{col}'")))?;
        self.rows
            .get(row)
            .map(|r| &r[idx])
            .ok_or_else(|| EvaError::Exec(format!("row index {row} out of bounds")))
    }

    /// Append all rows from another batch (schemas must match).
    pub fn extend(&mut self, other: Batch) -> Result<()> {
        if *other.schema != *self.schema {
            return Err(EvaError::Exec(format!(
                "cannot extend batch {} with batch {}",
                self.schema, other.schema
            )));
        }
        self.rows.extend(other.rows);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("label", DataType::Str),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn value_lookup() {
        let b = Batch::new(schema(), vec![vec![Value::Int(1), Value::from("car")]]);
        assert_eq!(b.value(0, "label").unwrap(), &Value::from("car"));
        assert!(b.value(0, "nope").is_err());
        assert!(b.value(5, "id").is_err());
    }

    #[test]
    fn extend_checks_schema() {
        let mut a = Batch::new(schema(), vec![vec![Value::Int(1), Value::from("x")]]);
        let b = Batch::new(schema(), vec![vec![Value::Int(2), Value::from("y")]]);
        a.extend(b).unwrap();
        assert_eq!(a.len(), 2);

        let other = Arc::new(Schema::new(vec![Field::new("z", DataType::Int)]).unwrap());
        let c = Batch::new(other, vec![vec![Value::Int(3)]]);
        assert!(a.extend(c).is_err());
    }

    #[test]
    fn empty_batch() {
        let b = Batch::empty(schema());
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
