//! Strongly-typed identifiers.
//!
//! Using newtypes instead of bare integers keeps frame ids, UDF ids, view ids
//! and query ids from being mixed up across crate boundaries.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies a frame within a video table. Frame ids are dense and
    /// ordered by time (the paper's queries predicate on `id` directly).
    FrameId,
    "f"
);
id_type!(
    /// Identifies a registered UDF *definition* in the catalog.
    UdfId,
    "udf"
);
id_type!(
    /// Identifies a materialized view owned by the UDF manager.
    ViewId,
    "v"
);
id_type!(
    /// Identifies a query within a session (used for metrics attribution).
    QueryId,
    "q"
);
id_type!(
    /// Identifies one operator node within a physical plan. Assigned in
    /// pre-order by the optimizer, so the same query text always yields the
    /// same ids — the key runtime statistics (`EXPLAIN ANALYZE`) hang off.
    OpId,
    "op"
);

impl OpId {
    /// The placeholder carried by plan nodes before the optimizer's
    /// numbering pass runs.
    pub const UNSET: OpId = OpId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_prefix() {
        assert_eq!(FrameId(7).to_string(), "f7");
        assert_eq!(UdfId(1).to_string(), "udf1");
        assert_eq!(ViewId(2).to_string(), "v2");
        assert_eq!(QueryId(3).to_string(), "q3");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(FrameId(1) < FrameId(2));
        assert_eq!(FrameId::from(9).raw(), 9);
    }

    #[test]
    fn codec_round_trip() {
        let id = ViewId(42);
        let mut w = crate::codec::ByteWriter::new();
        w.u64(id.raw());
        let bytes = w.into_bytes();
        let mut r = crate::codec::ByteReader::new(&bytes);
        assert_eq!(ViewId(r.u64().unwrap()), id);
    }
}
