//! Query-scoped structured tracing.
//!
//! PR 3's counters answer *how much* (UDF calls avoided, probe hits); this
//! module answers *where and how long*: a [`TraceSink`] records a span tree
//! per query — which operator probed which view, which probe waited on a
//! shard lock, how segment IO behaved during save/load — and feeds
//! per-[`SpanKind`] wall-clock [`LatencyHistogram`]s so p50/p95/p99 can be
//! reported per span kind across thousands of probes.
//!
//! ## Sim-cost vs wall-clock rule
//!
//! Every span carries **two** durations, never mixed:
//!
//! * `sim_ms` — the virtual-clock delta attributed to the span, charged by
//!   the existing caller-thread discipline. Tracing only *copies* these
//!   deltas; it never touches the [`SimClock`](crate::SimClock) or the
//!   [`MetricsSink`](crate::MetricsSink), so the parallel == serial
//!   `CostBreakdown` and metrics identities are untouched by construction.
//! * `wall_ns` — measured wall time. Inherently nondeterministic; the
//!   latency histograms are built from it, and
//!   [`QueryTrace::deterministic`] masks it (plus `start_ns`) for golden
//!   comparisons, mirroring `MetricsSnapshot::deterministic`.
//!
//! Spans are recorded on the **caller thread** only — worker-pool closures
//! never open spans, exactly like clock charges — so the tree shape of a
//! query is deterministic. The sink itself is `Sync` (a mutex inside) so
//! shared structures (the storage engine) can own one; concurrent callers
//! outside a query (e.g. the storage hammer benches) interleave safely but
//! attribute their leaf spans on a best-effort basis.
//!
//! The span store is query-scoped: `begin_query` folds the previous query's
//! histograms into the session-cumulative set and clears the tree, so
//! memory stays bounded no matter how long the session runs.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::LatencyHistogram;
use crate::ids::OpId;
use crate::metrics::MetricsSnapshot;

/// Hard cap on spans retained per query — a runaway loop cannot exhaust
/// memory; drops are counted in [`QueryTrace::dropped`].
const MAX_SPANS: usize = 65_536;

/// What a span measures. Each kind owns one latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// One whole query execution (the tree root).
    Query,
    /// One operator's `next()` lifetime within a query (cumulative,
    /// subtree-inclusive, like `EXPLAIN ANALYZE` costs).
    Operator,
    /// A batch of (simulated) UDF evaluations.
    UdfEval,
    /// A batched materialized-view probe (exact or fuzzy pass).
    ViewProbe,
    /// A FunCache lookup batch (hash + probe).
    CacheLookup,
    /// Time spent blocked on a contended shard or view lock.
    ShardWait,
    /// One persisted-segment read or write (save/load/recovery path).
    SegmentIo,
    /// One morsel-parallel pipeline segment: covers dispatch, worker
    /// execution, and the caller-thread accounting replay. Per-worker
    /// `operator` leaf spans hang underneath it.
    Pipeline,
}

impl SpanKind {
    /// All kinds, in reporting order.
    pub const ALL: [SpanKind; 8] = [
        SpanKind::Query,
        SpanKind::Operator,
        SpanKind::UdfEval,
        SpanKind::ViewProbe,
        SpanKind::CacheLookup,
        SpanKind::ShardWait,
        SpanKind::SegmentIo,
        SpanKind::Pipeline,
    ];

    /// Stable snake_case label (histogram keys, Prometheus series,
    /// Chrome-trace categories).
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Operator => "operator",
            SpanKind::UdfEval => "udf_eval",
            SpanKind::ViewProbe => "view_probe",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::ShardWait => "shard_wait",
            SpanKind::SegmentIo => "segment_io",
            SpanKind::Pipeline => "pipeline",
        }
    }

    fn index(&self) -> usize {
        match self {
            SpanKind::Query => 0,
            SpanKind::Operator => 1,
            SpanKind::UdfEval => 2,
            SpanKind::ViewProbe => 3,
            SpanKind::CacheLookup => 4,
            SpanKind::ShardWait => 5,
            SpanKind::SegmentIo => 6,
            SpanKind::Pipeline => 7,
        }
    }
}

/// One latency histogram per [`SpanKind`], recording wall-clock nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SpanHists {
    hists: [LatencyHistogram; 8],
}

impl SpanHists {
    /// The histogram for one span kind.
    pub fn get(&self, kind: SpanKind) -> &LatencyHistogram {
        &self.hists[kind.index()]
    }

    /// Record a wall-clock sample for a span kind.
    pub fn record(&mut self, kind: SpanKind, wall_ns: u64) {
        self.hists[kind.index()].record(wall_ns);
    }

    /// Merge another set in (bucket-wise; associative and commutative).
    pub fn merge(&mut self, other: &SpanHists) {
        for i in 0..self.hists.len() {
            self.hists[i].merge(&other.hists[i]);
        }
    }

    /// `(kind, histogram)` pairs for the kinds that saw at least one sample.
    pub fn non_empty(&self) -> Vec<(SpanKind, &LatencyHistogram)> {
        SpanKind::ALL
            .iter()
            .filter(|k| !self.get(**k).is_empty())
            .map(|k| (*k, self.get(*k)))
            .collect()
    }

    /// Multi-line human rendering (one line per non-empty kind), values in
    /// milliseconds. Empty string when nothing was recorded.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (kind, h) in self.non_empty() {
            out.push_str(&format!(
                "{:<12} {}\n",
                kind.label(),
                h.summary(fmt_ns_as_ms)
            ));
        }
        out
    }
}

fn fmt_ns_as_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

/// One recorded span. Plain serializable data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Span id, unique within its query (1-based; the root query span is 1).
    pub id: u64,
    /// Parent span id (`None` for the root).
    pub parent: Option<u64>,
    /// What this span measures.
    pub kind: SpanKind,
    /// Human label (operator description, UDF name, segment file…).
    pub label: String,
    /// The plan operator this span belongs to, when known.
    pub op: Option<OpId>,
    /// Virtual-clock milliseconds attributed to this span (deterministic;
    /// subtree-cumulative for scope spans).
    pub sim_ms: f64,
    /// Measured wall-clock nanoseconds (nondeterministic; masked by
    /// [`QueryTrace::deterministic`]).
    pub wall_ns: u64,
    /// Wall-clock offset of the span's first entry from the sink's origin,
    /// in nanoseconds (for Chrome trace timelines; masked like `wall_ns`).
    pub start_ns: u64,
    /// Unit count: rows emitted, keys probed, invocations run, bytes
    /// written — whatever the kind's natural unit is.
    pub count: u64,
    /// Times the span was entered (a pull-based operator is entered once
    /// per `next()` call; leaves are entered once).
    pub calls: u64,
}

/// An immutable snapshot of one query's span tree plus the per-kind
/// latency histograms collected while it ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// The label `begin_query` was given (usually the SQL text).
    pub label: String,
    /// All spans, root first, in creation (pre-)order.
    pub spans: Vec<Span>,
    /// Per-kind wall-clock histograms for this query.
    pub hists: SpanHists,
    /// Spans discarded because the per-query cap was hit.
    pub dropped: u64,
}

impl QueryTrace {
    /// Copy with every wall-clock field zeroed (span `wall_ns`/`start_ns`
    /// and the histograms), safe to compare or golden across runs — the
    /// tree shape, labels, counts and sim costs are deterministic.
    pub fn deterministic(&self) -> QueryTrace {
        QueryTrace {
            label: self.label.clone(),
            spans: self
                .spans
                .iter()
                .map(|s| Span {
                    wall_ns: 0,
                    start_ns: 0,
                    ..s.clone()
                })
                .collect(),
            hists: SpanHists::default(),
            dropped: self.dropped,
        }
    }

    /// The root span, if any spans were recorded.
    pub fn root(&self) -> Option<&Span> {
        self.spans.first()
    }

    /// Indented tree rendering (the repl's `\trace`).
    pub fn render(&self) -> String {
        let mut out = format!("trace: {}\n", self.label);
        // Children in creation order, grouped under their parents.
        let mut children: std::collections::BTreeMap<u64, Vec<&Span>> = Default::default();
        let mut roots: Vec<&Span> = Vec::new();
        for s in &self.spans {
            match s.parent {
                Some(p) => children.entry(p).or_default().push(s),
                None => roots.push(s),
            }
        }
        fn go(
            s: &Span,
            depth: usize,
            children: &std::collections::BTreeMap<u64, Vec<&Span>>,
            out: &mut String,
        ) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{} {} [sim={:.3}ms wall={:.3}ms calls={} count={}]\n",
                s.kind.label(),
                s.label,
                s.sim_ms,
                s.wall_ns as f64 / 1e6,
                s.calls,
                s.count
            ));
            for c in children.get(&s.id).into_iter().flatten() {
                go(c, depth + 1, children, out);
            }
        }
        for r in roots {
            go(r, 1, &children, &mut out);
        }
        if self.dropped > 0 {
            out.push_str(&format!("  … {} span(s) dropped (cap)\n", self.dropped));
        }
        out
    }

    /// Chrome trace-event JSON (the "JSON Array Format") — load the string
    /// written to a file via `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<serde_json::Value> = self
            .spans
            .iter()
            .map(|s| {
                serde_json::json!({
                    "name": s.label,
                    "cat": s.kind.label(),
                    "ph": "X",
                    "ts": s.start_ns as f64 / 1e3,
                    "dur": (s.wall_ns as f64 / 1e3).max(0.001),
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "span": s.id,
                        "parent": s.parent,
                        "op": s.op.map(|o| o.to_string()),
                        "sim_ms": s.sim_ms,
                        "count": s.count,
                        "calls": s.calls,
                    },
                })
            })
            .collect();
        serde_json::to_string_pretty(&events).expect("chrome trace serializes")
    }
}

/// Token returned by [`TraceSink::enter`]; pass it back to
/// [`TraceSink::exit`] when the scope closes.
#[derive(Debug)]
pub struct ScopeToken {
    /// Index into the span store (`usize::MAX` ⇒ dropped/disabled).
    idx: usize,
    /// Whether the span was pushed onto the parent stack.
    pushed: bool,
    /// Kind, re-recorded at exit into the histograms.
    kind: SpanKind,
    started: Option<Instant>,
}

/// A stable reference to a scope span, letting an operator re-enter the
/// same span across repeated `next()` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRef {
    epoch: u64,
    idx: usize,
}

#[derive(Debug, Default)]
struct TraceState {
    spans: Vec<Span>,
    stack: Vec<usize>,
    query_hists: SpanHists,
    session_hists: SpanHists,
    label: String,
    dropped: u64,
    /// Bumped by `begin_query`; invalidates outstanding [`SpanRef`]s.
    epoch: u64,
}

/// The per-session trace sink. Cheap to clone (`Arc` inside); owned by the
/// storage engine (like the metrics sink) so the executor, the shard
/// guards and the persistence path all record into one tree.
#[derive(Debug, Clone)]
pub struct TraceSink {
    inner: Arc<TraceInner>,
}

#[derive(Debug)]
struct TraceInner {
    state: Mutex<TraceState>,
    enabled: AtomicBool,
    origin: Instant,
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink {
            inner: Arc::new(TraceInner {
                state: Mutex::new(TraceState::default()),
                enabled: AtomicBool::new(true),
                origin: Instant::now(),
            }),
        }
    }
}

impl TraceSink {
    /// Fresh sink, enabled.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Turn recording on/off (histograms and spans both). Off costs one
    /// atomic load per call site.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording enabled?
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    fn now_ns(&self) -> u64 {
        self.inner.origin.elapsed().as_nanos() as u64
    }

    /// Start a new query tree: the previous query's histograms fold into
    /// the session-cumulative set, the span store resets, and a root
    /// [`SpanKind::Query`] span opens. Close it with [`TraceSink::end_query`].
    pub fn begin_query(&self, label: impl Into<String>) {
        if !self.is_enabled() {
            return;
        }
        let start_ns = self.now_ns();
        let mut st = self.inner.state.lock().expect("trace lock");
        let prev = st.query_hists;
        st.session_hists.merge(&prev);
        st.query_hists = SpanHists::default();
        st.spans.clear();
        st.stack.clear();
        st.dropped = 0;
        st.epoch += 1;
        st.label = label.into();
        let label = st.label.clone();
        let span = Span {
            id: 1,
            parent: None,
            kind: SpanKind::Query,
            label,
            op: None,
            sim_ms: 0.0,
            wall_ns: 0,
            start_ns,
            count: 0,
            calls: 1,
        };
        st.spans.push(span);
        st.stack.push(0);
    }

    /// Close the root query span, attributing the query's total simulated
    /// cost and result-row count. The wall duration is measured from
    /// `begin_query`.
    pub fn end_query(&self, sim_ms: f64, rows: u64) {
        if !self.is_enabled() {
            return;
        }
        let now = self.now_ns();
        let mut st = self.inner.state.lock().expect("trace lock");
        if let Some(root) = st.spans.first_mut() {
            root.sim_ms += sim_ms;
            root.wall_ns = now.saturating_sub(root.start_ns);
            root.count = rows;
            let wall = root.wall_ns;
            st.query_hists.record(SpanKind::Query, wall);
        }
        // Pop the root if it is still the innermost scope.
        if st.stack.last() == Some(&0) {
            st.stack.pop();
        }
    }

    /// Enter a scope span. When `existing` refers to a span created earlier
    /// in the *same* query (an operator re-entered on its next `next()`
    /// call), the span accumulates; otherwise a fresh span is created under
    /// the current innermost scope. Returns the token for
    /// [`TraceSink::exit`] plus the (possibly new) [`SpanRef`] to cache.
    pub fn enter(
        &self,
        existing: Option<SpanRef>,
        kind: SpanKind,
        label: &str,
        op: Option<OpId>,
    ) -> (ScopeToken, Option<SpanRef>) {
        if !self.is_enabled() {
            return (
                ScopeToken {
                    idx: usize::MAX,
                    pushed: false,
                    kind,
                    started: None,
                },
                None,
            );
        }
        let start_ns = self.now_ns();
        let mut st = self.inner.state.lock().expect("trace lock");
        let epoch = st.epoch;
        let idx = match existing.filter(|r| r.epoch == epoch && r.idx < st.spans.len()) {
            Some(r) => r.idx,
            None => {
                if st.spans.len() >= MAX_SPANS {
                    st.dropped += 1;
                    return (
                        ScopeToken {
                            idx: usize::MAX,
                            pushed: false,
                            kind,
                            started: Some(Instant::now()),
                        },
                        None,
                    );
                }
                let parent = st.stack.last().map(|&i| st.spans[i].id);
                let id = st.spans.len() as u64 + 1;
                st.spans.push(Span {
                    id,
                    parent,
                    kind,
                    label: label.to_string(),
                    op,
                    sim_ms: 0.0,
                    wall_ns: 0,
                    start_ns,
                    count: 0,
                    calls: 0,
                });
                st.spans.len() - 1
            }
        };
        st.stack.push(idx);
        (
            ScopeToken {
                idx,
                pushed: true,
                kind,
                started: Some(Instant::now()),
            },
            Some(SpanRef { epoch, idx }),
        )
    }

    /// Close a scope opened by [`TraceSink::enter`], attributing the
    /// simulated-cost delta and unit count for this entry. The wall time of
    /// the entry is measured here and recorded into the kind's histogram.
    pub fn exit(&self, token: ScopeToken, sim_ms: f64, count: u64) {
        let Some(started) = token.started else {
            return; // disabled at enter
        };
        let wall_ns = started.elapsed().as_nanos() as u64;
        let mut st = self.inner.state.lock().expect("trace lock");
        st.query_hists.record(token.kind, wall_ns);
        if token.pushed {
            // Tolerant pop: only remove if we are still the innermost scope
            // (concurrent callers outside a query may interleave).
            if st.stack.last() == Some(&token.idx) {
                st.stack.pop();
            } else if let Some(pos) = st.stack.iter().rposition(|&i| i == token.idx) {
                st.stack.remove(pos);
            }
        }
        if token.idx < st.spans.len() {
            let s = &mut st.spans[token.idx];
            s.sim_ms += sim_ms;
            s.wall_ns += wall_ns;
            s.count += count;
            s.calls += 1;
        }
    }

    /// Record a completed leaf span under the current innermost scope, with
    /// an explicitly measured wall duration (the caller timed the work).
    pub fn leaf(&self, kind: SpanKind, label: &str, sim_ms: f64, wall_ns: u64, count: u64) {
        if !self.is_enabled() {
            return;
        }
        let now = self.now_ns();
        let mut st = self.inner.state.lock().expect("trace lock");
        st.query_hists.record(kind, wall_ns);
        if st.spans.len() >= MAX_SPANS {
            st.dropped += 1;
            return;
        }
        let parent = st.stack.last().map(|&i| st.spans[i].id);
        let id = st.spans.len() as u64 + 1;
        st.spans.push(Span {
            id,
            parent,
            kind,
            label: label.to_string(),
            op: None,
            sim_ms,
            wall_ns,
            start_ns: now.saturating_sub(wall_ns),
            count,
            calls: 1,
        });
    }

    /// Snapshot of the current (most recent) query's trace.
    pub fn last_query(&self) -> QueryTrace {
        let st = self.inner.state.lock().expect("trace lock");
        QueryTrace {
            label: st.label.clone(),
            spans: st.spans.clone(),
            hists: st.query_hists,
            dropped: st.dropped,
        }
    }

    /// Session-cumulative per-kind histograms (all finished queries merged
    /// with the current one).
    pub fn session_histograms(&self) -> SpanHists {
        let st = self.inner.state.lock().expect("trace lock");
        let mut out = st.session_hists;
        out.merge(&st.query_hists);
        out
    }

    /// Drop everything — span tree and both histogram sets.
    pub fn reset(&self) {
        let mut st = self.inner.state.lock().expect("trace lock");
        *st = TraceState {
            epoch: st.epoch + 1,
            ..TraceState::default()
        };
    }
}

/// Render a metrics snapshot plus span-kind histograms in the Prometheus
/// text exposition format (counters as `counter`, latency distributions as
/// `histogram` with le-bucket bounds in seconds).
pub fn prometheus_text(metrics: &MetricsSnapshot, hists: &SpanHists) -> String {
    let mut out = String::new();
    for (name, value) in metrics.named_counters() {
        out.push_str(&format!("# TYPE eva_{name} counter\neva_{name} {value}\n"));
    }
    out.push_str("# TYPE eva_span_latency_seconds histogram\n");
    for kind in SpanKind::ALL {
        let h = hists.get(kind);
        if h.is_empty() {
            continue;
        }
        let label = kind.label();
        for (ub, cum) in h.cumulative_buckets() {
            out.push_str(&format!(
                "eva_span_latency_seconds_bucket{{kind=\"{label}\",le=\"{}\"}} {cum}\n",
                ub as f64 / 1e9
            ));
        }
        out.push_str(&format!(
            "eva_span_latency_seconds_bucket{{kind=\"{label}\",le=\"+Inf\"}} {}\n",
            h.count()
        ));
        out.push_str(&format!(
            "eva_span_latency_seconds_sum{{kind=\"{label}\"}} {}\n",
            h.sum() as f64 / 1e9
        ));
        out.push_str(&format!(
            "eva_span_latency_seconds_count{{kind=\"{label}\"}} {}\n",
            h.count()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_tree_nests_scopes_and_leaves() {
        let t = TraceSink::new();
        t.begin_query("SELECT 1");
        let (op_tok, op_ref) = t.enter(None, SpanKind::Operator, "Scan", Some(OpId(2)));
        t.leaf(SpanKind::ViewProbe, "v1", 0.5, 1_000, 10);
        t.exit(op_tok, 1.5, 100);
        // Re-entering with the cached ref accumulates into the same span.
        let (tok2, _) = t.enter(op_ref, SpanKind::Operator, "Scan", Some(OpId(2)));
        t.exit(tok2, 0.5, 50);
        t.end_query(2.0, 150);

        let q = t.last_query();
        assert_eq!(q.label, "SELECT 1");
        assert_eq!(q.spans.len(), 3, "{q:?}");
        let root = q.root().unwrap();
        assert_eq!(root.kind, SpanKind::Query);
        assert_eq!(root.count, 150);
        assert!((root.sim_ms - 2.0).abs() < 1e-9);
        let op = &q.spans[1];
        assert_eq!(op.parent, Some(root.id));
        assert_eq!(op.calls, 2);
        assert_eq!(op.count, 150);
        assert!((op.sim_ms - 2.0).abs() < 1e-9);
        let probe = &q.spans[2];
        assert_eq!(probe.kind, SpanKind::ViewProbe);
        assert_eq!(probe.parent, Some(op.id));
        assert_eq!(probe.count, 10);
        // Histograms saw one sample per scope entry / leaf.
        assert_eq!(q.hists.get(SpanKind::Operator).count(), 2);
        assert_eq!(q.hists.get(SpanKind::ViewProbe).count(), 1);
        assert_eq!(q.hists.get(SpanKind::Query).count(), 1);
    }

    #[test]
    fn begin_query_resets_spans_but_accumulates_histograms() {
        let t = TraceSink::new();
        t.begin_query("q1");
        t.leaf(SpanKind::UdfEval, "det", 99.0, 5_000, 1);
        t.end_query(99.0, 1);
        t.begin_query("q2");
        t.leaf(SpanKind::UdfEval, "det", 99.0, 7_000, 1);
        t.end_query(99.0, 1);

        let q = t.last_query();
        assert_eq!(q.label, "q2");
        assert_eq!(q.spans.len(), 2, "old spans cleared");
        assert_eq!(q.hists.get(SpanKind::UdfEval).count(), 1);
        let session = t.session_histograms();
        assert_eq!(session.get(SpanKind::UdfEval).count(), 2);
        assert_eq!(session.get(SpanKind::Query).count(), 2);
    }

    #[test]
    fn deterministic_masks_wall_fields_only() {
        let t = TraceSink::new();
        t.begin_query("q");
        t.leaf(SpanKind::SegmentIo, "v1.seg", 0.0, 123_456, 64);
        t.end_query(0.0, 0);
        let q = t.last_query();
        let d = q.deterministic();
        assert!(d.spans.iter().all(|s| s.wall_ns == 0 && s.start_ns == 0));
        assert_eq!(d.spans[1].count, 64, "counts survive masking");
        assert_eq!(d.spans[1].label, "v1.seg");
        assert_eq!(d.hists, SpanHists::default());
        // Two identical runs of deterministic() compare equal.
        assert_eq!(d, q.deterministic());
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let t = TraceSink::new();
        t.set_enabled(false);
        t.begin_query("q");
        let (tok, r) = t.enter(None, SpanKind::Operator, "x", None);
        assert!(r.is_none());
        t.exit(tok, 1.0, 1);
        t.leaf(SpanKind::UdfEval, "det", 1.0, 1, 1);
        t.end_query(1.0, 1);
        assert!(t.last_query().spans.is_empty());
        t.set_enabled(true);
        t.begin_query("q2");
        assert_eq!(t.last_query().spans.len(), 1);
    }

    #[test]
    fn render_shows_tree_and_chrome_json_parses() {
        let t = TraceSink::new();
        t.begin_query("SELECT x");
        let (tok, _) = t.enter(None, SpanKind::Operator, "Apply det", Some(OpId(3)));
        t.leaf(SpanKind::UdfEval, "det", 99.0, 2_000_000, 20);
        t.exit(tok, 100.0, 20);
        t.end_query(100.0, 20);
        let q = t.last_query();
        let text = q.render();
        assert!(text.contains("query SELECT x"), "{text}");
        assert!(text.contains("  operator Apply det"), "{text}");
        assert!(text.contains("    udf_eval det"), "{text}");
        let parsed: Vec<serde_json::Value> =
            serde_json::from_str(&q.to_chrome_json()).expect("chrome JSON is valid");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0]["ph"], "X");
    }

    #[test]
    fn prometheus_text_exports_counters_and_histograms() {
        let sink = crate::metrics::MetricsSink::new();
        sink.record_udf_calls(3, 7, 693.0);
        let mut hists = SpanHists::default();
        hists.record(SpanKind::ViewProbe, 1_000);
        hists.record(SpanKind::ViewProbe, 2_000);
        let text = prometheus_text(&sink.snapshot(), &hists);
        assert!(text.contains("eva_udf_calls_avoided 7"), "{text}");
        assert!(
            text.contains("eva_span_latency_seconds_count{kind=\"view_probe\"} 2"),
            "{text}"
        );
        assert!(text.contains("le=\"+Inf\"} 2"), "{text}");
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let t = TraceSink::new();
        t.begin_query("q");
        for i in 0..(MAX_SPANS + 10) {
            t.leaf(SpanKind::ViewProbe, "k", 0.0, i as u64, 1);
        }
        let q = t.last_query();
        assert_eq!(q.spans.len(), MAX_SPANS);
        assert_eq!(q.dropped, 11);
        // Histograms still saw every sample.
        assert_eq!(
            q.hists.get(SpanKind::ViewProbe).count(),
            (MAX_SPANS + 10) as u64
        );
    }
}
