//! Typed column arrays — the columnar half of the execution engine.
//!
//! The non-UDF hot path (scan → filter → project → aggregate) runs over
//! [`Column`]s instead of `Vec<Row>`: one contiguous typed vector per
//! column plus a validity [`Bitmap`], in the DataChunk/ArrayImpl style of
//! vectorized engines. Predicates produce *selection vectors* instead of
//! copying rows; see [`crate::batch::ColumnarBatch`].
//!
//! ## Round-trip fidelity
//!
//! The row engine is dynamically typed: a `FLOAT` column legally carries
//! `Value::Int` (see [`crate::DataType::admits`]), and group-by keys hash
//! the *value tag* (`Int(1)` ≠ `Float(1.0)`). A typed `Vec<f64>` would
//! silently widen and change those semantics, so the builder infers the
//! physical representation from the values themselves and falls back to
//! [`ColumnData::Mixed`] whenever a column mixes numeric tags. Pivoting
//! rows → columns → rows is therefore **bit-identical** (property-tested
//! in `tests/property_columnar.rs`).

use std::cmp::Ordering;

use serde::{Deserialize, Serialize};

use crate::value::{BBox, Value};

/// A packed validity bitmap: bit `i` set ⇔ slot `i` holds a (non-NULL)
/// value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap {
            bits: Vec::new(),
            len: 0,
        }
    }

    /// A bitmap of `len` slots, all valid.
    pub fn all_valid(len: usize) -> Bitmap {
        Bitmap {
            bits: vec![u64::MAX; len.div_ceil(64)],
            len,
        }
    }

    /// Append one slot.
    pub fn push(&mut self, valid: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if valid {
            self.bits[word] |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// Whether slot `i` is valid.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bitmap index {i} out of bounds {}", self.len);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid slots.
    pub fn count_valid(&self) -> usize {
        let mut n: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        // Mask bits past `len` (they are never set by `push`, but `all_valid`
        // saturates the last word).
        if self.len % 64 != 0 {
            if let Some(last) = self.bits.last() {
                let dead = last >> (self.len % 64);
                n -= dead.count_ones();
            }
        }
        n as usize
    }

    /// True when every slot is valid.
    pub fn is_all_valid(&self) -> bool {
        self.count_valid() == self.len
    }
}

impl Default for Bitmap {
    fn default() -> Self {
        Bitmap::new()
    }
}

/// The physical array behind one column. Typed variants hold a default in
/// invalid slots; [`ColumnData::Mixed`] preserves exact [`Value`]s for
/// columns that mix numeric tags (e.g. a `FLOAT` column carrying `Int`s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// UTF-8 strings.
    Str(Vec<String>),
    /// Bounding boxes.
    BBox(Vec<BBox>),
    /// Tag-preserving fallback for heterogeneous columns.
    Mixed(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::BBox(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }
}

/// A borrowed view of one cell — what vectorized kernels compare without
/// materializing a [`Value`].
#[derive(Debug, Clone, Copy)]
pub enum CellRef<'a> {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String slice.
    Str(&'a str),
    /// Bounding box.
    BBox(BBox),
}

impl<'a> CellRef<'a> {
    /// Borrowing view of a [`Value`].
    pub fn from_value(v: &'a Value) -> CellRef<'a> {
        match v {
            Value::Null => CellRef::Null,
            Value::Bool(b) => CellRef::Bool(*b),
            Value::Int(i) => CellRef::Int(*i),
            Value::Float(f) => CellRef::Float(*f),
            Value::Str(s) => CellRef::Str(s),
            Value::Box(b) => CellRef::BBox(*b),
        }
    }

    /// Materialize an owned [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            CellRef::Null => Value::Null,
            CellRef::Bool(b) => Value::Bool(b),
            CellRef::Int(i) => Value::Int(i),
            CellRef::Float(f) => Value::Float(f),
            CellRef::Str(s) => Value::Str(s.to_string()),
            CellRef::BBox(b) => Value::Box(b),
        }
    }

    /// True iff NULL.
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, CellRef::Null)
    }

    /// Numeric view (`Int` widens to `f64`, like [`Value::as_float`]).
    #[inline]
    pub fn as_number(self) -> Option<f64> {
        match self {
            CellRef::Int(i) => Some(i as f64),
            CellRef::Float(f) => Some(f),
            _ => None,
        }
    }

    /// SQL three-valued comparison, mirroring [`Value::sql_cmp`] exactly
    /// (numeric cross-type comparison goes through `f64`, like the row
    /// path).
    pub fn sql_cmp(self, other: CellRef<'_>) -> Option<Ordering> {
        match (self, other) {
            (CellRef::Null, _) | (_, CellRef::Null) => None,
            (CellRef::Bool(a), CellRef::Bool(b)) => Some(a.cmp(&b)),
            (CellRef::Str(a), CellRef::Str(b)) => Some(a.cmp(b)),
            (CellRef::BBox(a), CellRef::BBox(b)) => {
                if a == b {
                    Some(Ordering::Equal)
                } else {
                    a.key().partial_cmp(&b.key())
                }
            }
            _ => {
                let (a, b) = (self.as_number()?, other.as_number()?);
                a.partial_cmp(&b)
            }
        }
    }
}

/// One column: a typed array plus validity. Immutable once built — batches
/// share columns by `Arc`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    data: ColumnData,
    validity: Bitmap,
}

impl Column {
    /// Build from parts. Lengths must agree.
    pub fn new(data: ColumnData, validity: Bitmap) -> Column {
        debug_assert_eq!(data.len(), validity.len(), "column/validity length");
        Column { data, validity }
    }

    /// An all-valid integer column (the scan's id/timestamp/frame shape).
    pub fn from_ints(vals: Vec<i64>) -> Column {
        let validity = Bitmap::all_valid(vals.len());
        Column {
            data: ColumnData::Int(vals),
            validity,
        }
    }

    /// Build from values, inferring the tightest physical representation.
    pub fn from_values<'a>(vals: impl IntoIterator<Item = &'a Value>) -> Column {
        let mut b = ColumnBuilder::new();
        for v in vals {
            b.push(v);
        }
        b.finish()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// The physical array.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Whether slot `i` holds a value.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.get(i)
    }

    /// Borrowed view of slot `i`.
    #[inline]
    pub fn cell(&self, i: usize) -> CellRef<'_> {
        if !self.validity.get(i) {
            return CellRef::Null;
        }
        match &self.data {
            ColumnData::Int(v) => CellRef::Int(v[i]),
            ColumnData::Float(v) => CellRef::Float(v[i]),
            ColumnData::Bool(v) => CellRef::Bool(v[i]),
            ColumnData::Str(v) => CellRef::Str(&v[i]),
            ColumnData::BBox(v) => CellRef::BBox(v[i]),
            ColumnData::Mixed(v) => CellRef::from_value(&v[i]),
        }
    }

    /// Owned [`Value`] of slot `i`.
    pub fn value_at(&self, i: usize) -> Value {
        self.cell(i).to_value()
    }

    /// Append slot `i`'s [`Value::write_bytes`] encoding to `out` — the
    /// stable byte form group-by keys hash, without materializing a value.
    pub fn write_value_bytes(&self, i: usize, out: &mut Vec<u8>) {
        if !self.validity.get(i) {
            out.push(0);
            return;
        }
        match &self.data {
            ColumnData::Int(v) => {
                out.push(2);
                out.extend_from_slice(&v[i].to_le_bytes());
            }
            ColumnData::Float(v) => {
                out.push(3);
                out.extend_from_slice(&v[i].to_le_bytes());
            }
            ColumnData::Bool(v) => {
                out.push(1);
                out.push(v[i] as u8);
            }
            ColumnData::Str(v) => {
                let s = &v[i];
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            ColumnData::BBox(v) => {
                out.push(5);
                for k in v[i].key() {
                    out.extend_from_slice(&k.to_le_bytes());
                }
            }
            ColumnData::Mixed(v) => v[i].write_bytes(out),
        }
    }

    /// Compact the slots at `idx` (physical indices) into a fresh column.
    pub fn gather(&self, idx: &[u32]) -> Column {
        let mut validity = Bitmap::new();
        for &i in idx {
            validity.push(self.validity.get(i as usize));
        }
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::BBox(v) => ColumnData::BBox(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Mixed(v) => {
                ColumnData::Mixed(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Column { data, validity }
    }
}

/// Incremental [`Column`] builder: starts optimistically typed on the
/// first non-null value and demotes to [`ColumnData::Mixed`] on the first
/// tag mismatch (preserving everything pushed so far).
#[derive(Debug)]
pub struct ColumnBuilder {
    data: Option<ColumnData>,
    validity: Bitmap,
}

impl ColumnBuilder {
    /// Fresh, empty builder.
    pub fn new() -> ColumnBuilder {
        ColumnBuilder {
            data: None,
            validity: Bitmap::new(),
        }
    }

    /// Append one value.
    pub fn push(&mut self, v: &Value) {
        let n = self.validity.len();
        self.validity.push(!v.is_null());
        if v.is_null() {
            // Placeholder in whatever representation exists (or stays
            // pending until the first non-null value decides one).
            match &mut self.data {
                None => {}
                Some(ColumnData::Int(vec)) => vec.push(0),
                Some(ColumnData::Float(vec)) => vec.push(0.0),
                Some(ColumnData::Bool(vec)) => vec.push(false),
                Some(ColumnData::Str(vec)) => vec.push(String::new()),
                Some(ColumnData::BBox(vec)) => vec.push(BBox::new(0.0, 0.0, 0.0, 0.0)),
                Some(ColumnData::Mixed(vec)) => vec.push(Value::Null),
            }
            return;
        }
        // Late initialization: backfill placeholders for the nulls seen
        // before the first non-null value.
        if self.data.is_none() {
            self.data = Some(match v {
                Value::Int(_) => ColumnData::Int(vec![0; n]),
                Value::Float(_) => ColumnData::Float(vec![0.0; n]),
                Value::Bool(_) => ColumnData::Bool(vec![false; n]),
                Value::Str(_) => ColumnData::Str(vec![String::new(); n]),
                Value::Box(_) => ColumnData::BBox(vec![BBox::new(0.0, 0.0, 0.0, 0.0); n]),
                Value::Null => unreachable!(),
            });
        }
        match (self.data.as_mut().unwrap(), v) {
            (ColumnData::Int(vec), Value::Int(i)) => vec.push(*i),
            (ColumnData::Float(vec), Value::Float(f)) => vec.push(*f),
            (ColumnData::Bool(vec), Value::Bool(b)) => vec.push(*b),
            (ColumnData::Str(vec), Value::Str(s)) => vec.push(s.clone()),
            (ColumnData::BBox(vec), Value::Box(b)) => vec.push(*b),
            (ColumnData::Mixed(vec), v) => vec.push(v.clone()),
            (_, v) => {
                self.demote();
                if let Some(ColumnData::Mixed(vec)) = &mut self.data {
                    vec.push(v.clone());
                }
            }
        }
    }

    /// Rebuild the accumulated slots as `Mixed`, restoring NULLs from the
    /// validity bitmap.
    fn demote(&mut self) {
        let typed = self.data.take().unwrap();
        let n = typed.len();
        let mut vals = Vec::with_capacity(n + 1);
        for i in 0..n {
            if !self.validity.get(i) {
                vals.push(Value::Null);
                continue;
            }
            vals.push(match &typed {
                ColumnData::Int(v) => Value::Int(v[i]),
                ColumnData::Float(v) => Value::Float(v[i]),
                ColumnData::Bool(v) => Value::Bool(v[i]),
                ColumnData::Str(v) => Value::Str(v[i].clone()),
                ColumnData::BBox(v) => Value::Box(v[i]),
                ColumnData::Mixed(_) => unreachable!("demoting a mixed column"),
            });
        }
        self.data = Some(ColumnData::Mixed(vals));
    }

    /// Finish the column. All-null columns get an `Int` carcass with every
    /// slot invalid (the representation is unobservable through NULLs).
    pub fn finish(self) -> Column {
        let n = self.validity.len();
        Column {
            data: self.data.unwrap_or_else(|| ColumnData::Int(vec![0; n])),
            validity: self.validity,
        }
    }
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        ColumnBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_push_get_count() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 != 0);
        }
        assert_eq!(b.len(), 130);
        assert!(!b.get(0));
        assert!(b.get(1));
        assert!(!b.get(129));
        assert_eq!(b.count_valid(), (0..130).filter(|i| i % 3 != 0).count());
        assert!(!b.is_all_valid());
        assert!(Bitmap::all_valid(70).is_all_valid());
        assert_eq!(Bitmap::all_valid(70).count_valid(), 70);
    }

    #[test]
    fn builder_infers_typed_arrays() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        let c = Column::from_values(&vals);
        assert!(matches!(c.data(), ColumnData::Int(_)));
        assert_eq!(c.value_at(0), Value::Int(1));
        assert!(c.value_at(1).is_null());
        assert_eq!(c.value_at(2), Value::Int(3));
    }

    #[test]
    fn builder_demotes_on_mixed_tags() {
        let vals = vec![Value::Int(1), Value::Float(2.5), Value::Null];
        let c = Column::from_values(&vals);
        assert!(matches!(c.data(), ColumnData::Mixed(_)));
        // Tags survive bit-exactly.
        assert!(matches!(c.value_at(0), Value::Int(1)));
        assert!(matches!(c.value_at(1), Value::Float(f) if f == 2.5));
        assert!(c.value_at(2).is_null());
    }

    #[test]
    fn all_null_column_round_trips() {
        let vals = vec![Value::Null, Value::Null];
        let c = Column::from_values(&vals);
        assert!(c.value_at(0).is_null());
        assert!(c.value_at(1).is_null());
        assert_eq!(c.validity().count_valid(), 0);
    }

    #[test]
    fn write_value_bytes_matches_value_encoding() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(1.25),
            Value::from("car"),
            Value::Box(BBox::new(0.1, 0.2, 0.3, 0.4)),
        ];
        // Mixed representation (tags differ).
        let c = Column::from_values(&vals);
        for (i, v) in vals.iter().enumerate() {
            let mut a = Vec::new();
            let mut b = Vec::new();
            c.write_value_bytes(i, &mut a);
            v.write_bytes(&mut b);
            assert_eq!(a, b, "slot {i}");
        }
        // Typed representations too.
        for vals in [
            vec![Value::Int(5), Value::Null],
            vec![Value::from("x"), Value::from("y")],
            vec![Value::Bool(false)],
            vec![Value::Float(0.5)],
        ] {
            let c = Column::from_values(&vals);
            for (i, v) in vals.iter().enumerate() {
                let mut a = Vec::new();
                let mut b = Vec::new();
                c.write_value_bytes(i, &mut a);
                v.write_bytes(&mut b);
                assert_eq!(a, b, "slot {i} of {vals:?}");
            }
        }
    }

    #[test]
    fn cell_cmp_mirrors_value_cmp() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(2),
            Value::Float(2.0),
            Value::from("car"),
            Value::Box(BBox::new(0.1, 0.1, 0.4, 0.4)),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    CellRef::from_value(a).sql_cmp(CellRef::from_value(b)),
                    a.sql_cmp(b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn gather_compacts_with_validity() {
        let vals = vec![Value::Int(10), Value::Null, Value::Int(30), Value::Int(40)];
        let c = Column::from_values(&vals);
        let g = c.gather(&[3, 1, 0]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.value_at(0), Value::Int(40));
        assert!(g.value_at(1).is_null());
        assert_eq!(g.value_at(2), Value::Int(10));
    }
}
