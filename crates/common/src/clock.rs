//! The virtual clock.
//!
//! The paper's evaluation is dominated by GPU inference time (e.g. 99 ms per
//! tuple for FasterRCNN-ResNet50, Table 3). We have no GPU and no CNNs, so
//! the execution engine charges each simulated UDF invocation / IO operation
//! its profiled cost on a [`SimClock`]. Experiments report simulated time,
//! which reproduces the paper's *ratios* exactly and deterministically while
//! running orders of magnitude faster than real inference.
//!
//! Costs are tracked per [`CostCategory`] so the time-breakdown experiments
//! (Fig. 6, Table 4) can be regenerated.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;

/// Categories used by the paper's time-breakdown figures (Fig. 6b, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostCategory {
    /// Running a (simulated) deep-learning UDF.
    Udf,
    /// Reading video frames from the storage engine.
    ReadVideo,
    /// Reading a materialized view (includes the `3·C_M` join IO of Eq. 3).
    ReadView,
    /// Appending UDF results to a materialized view (the STORE operator).
    Materialize,
    /// Query optimization (symbolic analysis, rewrite, ranking).
    Optimize,
    /// The APPLY / conditional-APPLY operator machinery itself.
    Apply,
    /// Hashing input arguments (FunCache baseline overhead).
    HashInput,
    /// Everything else (parser, joins, crops, aggregation…).
    Other,
}

impl CostCategory {
    /// All categories, in breakdown-report order.
    pub const ALL: [CostCategory; 8] = [
        CostCategory::Udf,
        CostCategory::ReadVideo,
        CostCategory::ReadView,
        CostCategory::Materialize,
        CostCategory::Optimize,
        CostCategory::Apply,
        CostCategory::HashInput,
        CostCategory::Other,
    ];

    /// Human label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            CostCategory::Udf => "udf",
            CostCategory::ReadVideo => "read_video",
            CostCategory::ReadView => "read_view",
            CostCategory::Materialize => "materialize",
            CostCategory::Optimize => "optimize",
            CostCategory::Apply => "apply",
            CostCategory::HashInput => "hash_input",
            CostCategory::Other => "other",
        }
    }

    fn index(&self) -> usize {
        match self {
            CostCategory::Udf => 0,
            CostCategory::ReadVideo => 1,
            CostCategory::ReadView => 2,
            CostCategory::Materialize => 3,
            CostCategory::Optimize => 4,
            CostCategory::Apply => 5,
            CostCategory::HashInput => 6,
            CostCategory::Other => 7,
        }
    }
}

/// Immutable snapshot of accumulated simulated cost, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    ms: [f64; 8],
}

impl CostBreakdown {
    /// Milliseconds charged to one category.
    pub fn get(&self, cat: CostCategory) -> f64 {
        self.ms[cat.index()]
    }

    /// Total simulated milliseconds across all categories.
    pub fn total_ms(&self) -> f64 {
        self.ms.iter().sum()
    }

    /// Total simulated seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ms() / 1000.0
    }

    /// Component-wise difference (`self - earlier`); used to attribute cost
    /// to a single query by snapshotting before and after.
    pub fn since(&self, earlier: &CostBreakdown) -> CostBreakdown {
        let mut ms = [0.0; 8];
        for i in 0..8 {
            ms[i] = (self.ms[i] - earlier.ms[i]).max(0.0);
        }
        CostBreakdown { ms }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &CostBreakdown) -> CostBreakdown {
        let mut ms = [0.0; 8];
        for i in 0..8 {
            ms[i] = self.ms[i] + other.ms[i];
        }
        CostBreakdown { ms }
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for cat in CostCategory::ALL {
            let v = self.get(cat);
            if v > 0.0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{}={:.1}ms", cat.label(), v)?;
                first = false;
            }
        }
        if first {
            write!(f, "0ms")?;
        }
        Ok(())
    }
}

/// A virtual clock accumulating simulated milliseconds by category.
///
/// Interior-mutable (`RefCell`) because it is threaded through pull-based
/// operator trees that hold shared references. Not `Sync` — each session owns
/// its clock; cross-thread aggregation merges snapshots.
#[derive(Debug, Default)]
pub struct SimClock {
    inner: RefCell<CostBreakdown>,
}

impl SimClock {
    /// Fresh clock at zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Charge `ms` simulated milliseconds to `cat`.
    pub fn charge(&self, cat: CostCategory, ms: f64) {
        debug_assert!(ms >= 0.0, "negative cost charge");
        self.inner.borrow_mut().ms[cat.index()] += ms.max(0.0);
    }

    /// Current snapshot.
    pub fn snapshot(&self) -> CostBreakdown {
        *self.inner.borrow()
    }

    /// Total simulated milliseconds so far.
    pub fn total_ms(&self) -> f64 {
        self.inner.borrow().total_ms()
    }

    /// Reset to zero (used between workloads).
    pub fn reset(&self) {
        *self.inner.borrow_mut() = CostBreakdown::default();
    }

    /// Merge another snapshot into this clock (cross-thread aggregation).
    pub fn absorb(&self, other: &CostBreakdown) {
        let mut inner = self.inner.borrow_mut();
        *inner = inner.plus(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_category() {
        let c = SimClock::new();
        c.charge(CostCategory::Udf, 99.0);
        c.charge(CostCategory::Udf, 1.0);
        c.charge(CostCategory::ReadView, 5.0);
        let s = c.snapshot();
        assert_eq!(s.get(CostCategory::Udf), 100.0);
        assert_eq!(s.get(CostCategory::ReadView), 5.0);
        assert_eq!(s.total_ms(), 105.0);
    }

    #[test]
    fn since_attributes_deltas() {
        let c = SimClock::new();
        c.charge(CostCategory::Udf, 10.0);
        let before = c.snapshot();
        c.charge(CostCategory::Udf, 7.0);
        c.charge(CostCategory::Other, 3.0);
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.get(CostCategory::Udf), 7.0);
        assert_eq!(delta.get(CostCategory::Other), 3.0);
        assert_eq!(delta.total_ms(), 10.0);
    }

    #[test]
    fn reset_zeroes() {
        let c = SimClock::new();
        c.charge(CostCategory::Apply, 4.0);
        c.reset();
        assert_eq!(c.total_ms(), 0.0);
    }

    #[test]
    fn absorb_merges() {
        let a = SimClock::new();
        a.charge(CostCategory::Udf, 1.0);
        let b = SimClock::new();
        b.charge(CostCategory::Udf, 2.0);
        b.charge(CostCategory::Optimize, 3.0);
        a.absorb(&b.snapshot());
        assert_eq!(a.snapshot().get(CostCategory::Udf), 3.0);
        assert_eq!(a.snapshot().get(CostCategory::Optimize), 3.0);
    }

    #[test]
    fn display_skips_zero_categories() {
        let c = SimClock::new();
        c.charge(CostCategory::Udf, 2.5);
        let s = format!("{}", c.snapshot());
        assert!(s.contains("udf=2.5ms"));
        assert!(!s.contains("read_view"));
    }

    #[test]
    fn seconds_conversion() {
        let c = SimClock::new();
        c.charge(CostCategory::Udf, 1500.0);
        assert!((c.snapshot().total_secs() - 1.5).abs() < 1e-9);
    }
}
