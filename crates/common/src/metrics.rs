//! Runtime observability counters.
//!
//! The paper's argument is entirely about *where time goes* — UDF cost
//! avoided through materialized-view reuse — so the engine keeps a set of
//! always-on counters next to the [`SimClock`](crate::SimClock): UDF
//! invocations executed vs. avoided, view probe hits/misses/fuzzy hits, rows
//! served zero-copy, and storage-level traffic. `EXPLAIN ANALYZE` and the
//! benchmark JSON exporters both read from here.
//!
//! ## Caller-thread charging rule
//!
//! Counters follow the same discipline as the virtual clock: **worker threads
//! never record metrics**. Uncharged helpers (e.g.
//! `StorageEngine::view_probe_uncharged`) return the counts they observed and
//! the *caller* records them exactly once. This makes parallel and serial
//! executions of the same workload report bit-identical counter totals, which
//! is what the identity tests pin down. The only exception is
//! [`shard_lock_contention`](MetricsSnapshot::shard_lock_contention), which is
//! inherently scheduling-dependent; [`MetricsSnapshot::deterministic`] masks
//! it for comparisons.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::CostBreakdown;

/// Immutable, serializable snapshot of the engine-wide counters.
///
/// This is the `metrics` section embedded in every `BENCH_*.json` and the
/// totals footer of `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// UDF invocations the plan asked for: executed + avoided.
    pub udf_calls_requested: u64,
    /// Invocations that actually ran the (simulated) model.
    pub udf_calls_executed: u64,
    /// Invocations satisfied from a materialized view or cache.
    pub udf_calls_avoided: u64,
    /// Simulated milliseconds the avoided invocations would have cost.
    pub udf_ms_avoided: f64,
    /// View probe keys looked up (exact + fuzzy passes).
    pub probes: u64,
    /// Probe keys resolved from materialized state.
    pub probe_hits: u64,
    /// Probe keys that missed and fell through to evaluation.
    pub probe_misses: u64,
    /// Subset of `probe_hits` resolved by the fuzzy (IoU) fallback.
    pub fuzzy_hits: u64,
    /// Rows handed to the caller as `Arc` clones of stored rows (no copy).
    pub rows_served_zero_copy: u64,
    /// FunCache baseline lookups that hit.
    pub funcache_hits: u64,
    /// FunCache baseline lookups that missed.
    pub funcache_misses: u64,
    /// Rows read out of materialized views.
    pub view_rows_read: u64,
    /// Rows appended to materialized views (STORE).
    pub view_rows_written: u64,
    /// Video frames decoded by scans.
    pub frames_scanned: u64,
    /// Batches emitted in columnar form by executor operators. Deterministic:
    /// depends only on the plan, the data, and the configured batch size.
    #[serde(default)]
    pub columnar_batches: u64,
    /// Rows carried by those columnar batches (post-selection counts).
    #[serde(default)]
    pub columnar_rows: u64,
    /// Rows materialized from columnar to row form at a pivot boundary
    /// (the apply/sort/output edges of the columnar hot path).
    #[serde(default)]
    pub rows_pivoted: u64,
    /// View segments loaded and checksum-verified by a recovery pass.
    #[serde(default)]
    pub views_recovered: u64,
    /// View segments quarantined (corrupt, torn, or unreadable) by a
    /// recovery pass. Quarantined views are simply cold: the conditional
    /// APPLY path recomputes and re-stores them.
    #[serde(default)]
    pub views_quarantined: u64,
    /// Transient UDF failures that were retried.
    #[serde(default)]
    pub udf_retries: u64,
    /// UDF invocations abandoned after exhausting the retry budget.
    #[serde(default)]
    pub udf_gave_up: u64,
    /// Morsels dispatched by parallel pipelines. Deterministic: the morsel
    /// count depends only on the scan range and the configured morsel size,
    /// never on worker scheduling.
    #[serde(default)]
    pub morsels_dispatched: u64,
    /// Morsels executed by a lane other than the one they were assigned to
    /// (work stealing). **Nondeterministic** — depends on thread scheduling;
    /// masked by [`deterministic`](MetricsSnapshot::deterministic).
    #[serde(default)]
    pub morsels_stolen: u64,
    /// Pipeline segments that ran morsel-parallel (one per engaged
    /// `ParallelPipelineOp` execution). Deterministic: engagement depends
    /// only on the plan shape, the config thresholds, and the row count.
    #[serde(default)]
    pub parallel_pipelines: u64,
    /// Queries that entered graceful degradation instead of failing when
    /// their memory budget tripped (streaming aggregation, materialization
    /// skipped). Deterministic: the budget verdict is a pure function of
    /// the workload and the configured budget.
    #[serde(default)]
    pub degraded_queries: u64,
    /// View-materialization commits dropped because the owning query
    /// degraded (or was cancelled) — the coverage predicate was never
    /// claimed, so later plans recompute instead of trusting partial state.
    #[serde(default)]
    pub materialization_skipped: u64,
    /// UDF circuit-breaker transitions to *open* (fail-fast) after K
    /// consecutive retry-budget exhaustions. Deterministic: driven by the
    /// seeded failpoint schedule and the SimClock cooldown timer.
    #[serde(default)]
    pub udf_breaker_open: u64,
    /// UDF circuit-breaker transitions to *half-open* (one probe allowed)
    /// once the SimClock cooldown elapses.
    #[serde(default)]
    pub udf_breaker_halfopen: u64,
    /// Queries granted an admission slot (recorded outside the per-query
    /// metrics window, so per-query deltas are unaffected).
    #[serde(default)]
    pub queries_admitted: u64,
    /// Queries refused by the admission controller: queue overflow past the
    /// high-water mark, or a queue-deadline timeout.
    #[serde(default)]
    pub queries_shed: u64,
    /// Worker-pool size the session ran with — a gauge, not a counter, so
    /// experiments record the core count behind their wall numbers.
    /// **Machine-dependent**; masked by
    /// [`deterministic`](MetricsSnapshot::deterministic) and excluded from
    /// [`named_counters`](MetricsSnapshot::named_counters).
    #[serde(default)]
    pub n_workers: u64,
    /// Times a shard lock was observed contended (`try_read`/`try_write`
    /// failed and the caller had to block). **Nondeterministic** — depends on
    /// thread scheduling; excluded from identity comparisons via
    /// [`deterministic`](MetricsSnapshot::deterministic).
    pub shard_lock_contention: u64,
}

impl MetricsSnapshot {
    /// Counter-wise difference (`self - earlier`); attributes activity to a
    /// single query by snapshotting before and after, like
    /// [`CostBreakdown::since`].
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            udf_calls_requested: self.udf_calls_requested - earlier.udf_calls_requested,
            udf_calls_executed: self.udf_calls_executed - earlier.udf_calls_executed,
            udf_calls_avoided: self.udf_calls_avoided - earlier.udf_calls_avoided,
            udf_ms_avoided: (self.udf_ms_avoided - earlier.udf_ms_avoided).max(0.0),
            probes: self.probes - earlier.probes,
            probe_hits: self.probe_hits - earlier.probe_hits,
            probe_misses: self.probe_misses - earlier.probe_misses,
            fuzzy_hits: self.fuzzy_hits - earlier.fuzzy_hits,
            rows_served_zero_copy: self.rows_served_zero_copy - earlier.rows_served_zero_copy,
            funcache_hits: self.funcache_hits - earlier.funcache_hits,
            funcache_misses: self.funcache_misses - earlier.funcache_misses,
            view_rows_read: self.view_rows_read - earlier.view_rows_read,
            view_rows_written: self.view_rows_written - earlier.view_rows_written,
            frames_scanned: self.frames_scanned - earlier.frames_scanned,
            columnar_batches: self.columnar_batches - earlier.columnar_batches,
            columnar_rows: self.columnar_rows - earlier.columnar_rows,
            rows_pivoted: self.rows_pivoted - earlier.rows_pivoted,
            views_recovered: self.views_recovered - earlier.views_recovered,
            views_quarantined: self.views_quarantined - earlier.views_quarantined,
            udf_retries: self.udf_retries - earlier.udf_retries,
            udf_gave_up: self.udf_gave_up - earlier.udf_gave_up,
            morsels_dispatched: self.morsels_dispatched - earlier.morsels_dispatched,
            morsels_stolen: self.morsels_stolen.saturating_sub(earlier.morsels_stolen),
            parallel_pipelines: self.parallel_pipelines - earlier.parallel_pipelines,
            degraded_queries: self.degraded_queries - earlier.degraded_queries,
            materialization_skipped: self.materialization_skipped - earlier.materialization_skipped,
            udf_breaker_open: self.udf_breaker_open - earlier.udf_breaker_open,
            udf_breaker_halfopen: self.udf_breaker_halfopen - earlier.udf_breaker_halfopen,
            queries_admitted: self.queries_admitted - earlier.queries_admitted,
            queries_shed: self.queries_shed - earlier.queries_shed,
            n_workers: self.n_workers.saturating_sub(earlier.n_workers),
            shard_lock_contention: self
                .shard_lock_contention
                .saturating_sub(earlier.shard_lock_contention),
        }
    }

    /// Counter-wise sum.
    pub fn plus(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            udf_calls_requested: self.udf_calls_requested + other.udf_calls_requested,
            udf_calls_executed: self.udf_calls_executed + other.udf_calls_executed,
            udf_calls_avoided: self.udf_calls_avoided + other.udf_calls_avoided,
            udf_ms_avoided: self.udf_ms_avoided + other.udf_ms_avoided,
            probes: self.probes + other.probes,
            probe_hits: self.probe_hits + other.probe_hits,
            probe_misses: self.probe_misses + other.probe_misses,
            fuzzy_hits: self.fuzzy_hits + other.fuzzy_hits,
            rows_served_zero_copy: self.rows_served_zero_copy + other.rows_served_zero_copy,
            funcache_hits: self.funcache_hits + other.funcache_hits,
            funcache_misses: self.funcache_misses + other.funcache_misses,
            view_rows_read: self.view_rows_read + other.view_rows_read,
            view_rows_written: self.view_rows_written + other.view_rows_written,
            frames_scanned: self.frames_scanned + other.frames_scanned,
            columnar_batches: self.columnar_batches + other.columnar_batches,
            columnar_rows: self.columnar_rows + other.columnar_rows,
            rows_pivoted: self.rows_pivoted + other.rows_pivoted,
            views_recovered: self.views_recovered + other.views_recovered,
            views_quarantined: self.views_quarantined + other.views_quarantined,
            udf_retries: self.udf_retries + other.udf_retries,
            udf_gave_up: self.udf_gave_up + other.udf_gave_up,
            morsels_dispatched: self.morsels_dispatched + other.morsels_dispatched,
            morsels_stolen: self.morsels_stolen + other.morsels_stolen,
            parallel_pipelines: self.parallel_pipelines + other.parallel_pipelines,
            degraded_queries: self.degraded_queries + other.degraded_queries,
            materialization_skipped: self.materialization_skipped + other.materialization_skipped,
            udf_breaker_open: self.udf_breaker_open + other.udf_breaker_open,
            udf_breaker_halfopen: self.udf_breaker_halfopen + other.udf_breaker_halfopen,
            queries_admitted: self.queries_admitted + other.queries_admitted,
            queries_shed: self.queries_shed + other.queries_shed,
            n_workers: self.n_workers + other.n_workers,
            shard_lock_contention: self.shard_lock_contention + other.shard_lock_contention,
        }
    }

    /// Fraction of probes that hit, in `[0, 1]`; 0 when nothing was probed.
    pub fn probe_hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.probe_hits as f64 / self.probes as f64
        }
    }

    /// Fraction of requested UDF calls that were avoided, in `[0, 1]`.
    pub fn reuse_rate(&self) -> f64 {
        if self.udf_calls_requested == 0 {
            0.0
        } else {
            self.udf_calls_avoided as f64 / self.udf_calls_requested as f64
        }
    }

    /// Copy with the scheduling-dependent counters zeroed, safe to compare
    /// bit-for-bit between parallel and serial runs.
    pub fn deterministic(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            shard_lock_contention: 0,
            morsels_stolen: 0,
            n_workers: 0,
            ..*self
        }
    }

    /// Every counter as a `(stable_name, value)` pair, in declaration
    /// order — the single source of truth for the Prometheus exporter and
    /// the perf-gate baseline diff, so adding a counter automatically
    /// surfaces it everywhere.
    pub fn named_counters(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("udf_calls_requested", self.udf_calls_requested as f64),
            ("udf_calls_executed", self.udf_calls_executed as f64),
            ("udf_calls_avoided", self.udf_calls_avoided as f64),
            ("udf_ms_avoided", self.udf_ms_avoided),
            ("probes", self.probes as f64),
            ("probe_hits", self.probe_hits as f64),
            ("probe_misses", self.probe_misses as f64),
            ("fuzzy_hits", self.fuzzy_hits as f64),
            ("rows_served_zero_copy", self.rows_served_zero_copy as f64),
            ("funcache_hits", self.funcache_hits as f64),
            ("funcache_misses", self.funcache_misses as f64),
            ("view_rows_read", self.view_rows_read as f64),
            ("view_rows_written", self.view_rows_written as f64),
            ("frames_scanned", self.frames_scanned as f64),
            ("columnar_batches", self.columnar_batches as f64),
            ("columnar_rows", self.columnar_rows as f64),
            ("rows_pivoted", self.rows_pivoted as f64),
            ("views_recovered", self.views_recovered as f64),
            ("views_quarantined", self.views_quarantined as f64),
            ("udf_retries", self.udf_retries as f64),
            ("udf_gave_up", self.udf_gave_up as f64),
            ("morsels_dispatched", self.morsels_dispatched as f64),
            ("morsels_stolen", self.morsels_stolen as f64),
            ("parallel_pipelines", self.parallel_pipelines as f64),
            // `n_workers` is deliberately absent: it is a machine-dependent
            // gauge, and this list feeds the cross-machine perf-gate diff.
            ("degraded_queries", self.degraded_queries as f64),
            (
                "materialization_skipped",
                self.materialization_skipped as f64,
            ),
            ("udf_breaker_open", self.udf_breaker_open as f64),
            ("udf_breaker_halfopen", self.udf_breaker_halfopen as f64),
            ("queries_admitted", self.queries_admitted as f64),
            ("queries_shed", self.queries_shed as f64),
            ("shard_lock_contention", self.shard_lock_contention as f64),
        ]
    }
}

#[derive(Debug, Default)]
struct Inner {
    udf_calls_requested: AtomicU64,
    udf_calls_executed: AtomicU64,
    udf_calls_avoided: AtomicU64,
    /// f64 bit pattern; updated by CAS (eva-common has no mutex dependency).
    udf_ms_avoided_bits: AtomicU64,
    probes: AtomicU64,
    probe_hits: AtomicU64,
    probe_misses: AtomicU64,
    fuzzy_hits: AtomicU64,
    rows_served_zero_copy: AtomicU64,
    funcache_hits: AtomicU64,
    funcache_misses: AtomicU64,
    view_rows_read: AtomicU64,
    view_rows_written: AtomicU64,
    frames_scanned: AtomicU64,
    columnar_batches: AtomicU64,
    columnar_rows: AtomicU64,
    rows_pivoted: AtomicU64,
    views_recovered: AtomicU64,
    views_quarantined: AtomicU64,
    udf_retries: AtomicU64,
    udf_gave_up: AtomicU64,
    morsels_dispatched: AtomicU64,
    morsels_stolen: AtomicU64,
    parallel_pipelines: AtomicU64,
    degraded_queries: AtomicU64,
    materialization_skipped: AtomicU64,
    udf_breaker_open: AtomicU64,
    udf_breaker_halfopen: AtomicU64,
    queries_admitted: AtomicU64,
    queries_shed: AtomicU64,
    n_workers: AtomicU64,
    shard_lock_contention: AtomicU64,
}

/// Engine-wide metrics sink: atomic counters shared by the session, the
/// executor and the storage engine. Cheap to clone (`Arc` inside), `Sync`.
///
/// Despite being thread-safe, the charging discipline is single-threaded by
/// convention — see the module docs. Thread safety exists so one sink can be
/// *owned* by shared structures (the storage engine), not so workers can race
/// on it.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    inner: Arc<Inner>,
}

impl MetricsSink {
    /// Fresh sink at zero.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// Record the outcome of one batched probe pass: `probes` keys looked
    /// up, `hits` of them resolved (of which `fuzzy_hits` via the IoU
    /// fallback). Misses are derived (`probes - hits`).
    pub fn record_probe_batch(&self, probes: u64, hits: u64, fuzzy_hits: u64) {
        debug_assert!(hits <= probes, "more hits than probes");
        debug_assert!(fuzzy_hits <= hits, "fuzzy hits exceed hits");
        self.inner.probes.fetch_add(probes, Ordering::Relaxed);
        self.inner.probe_hits.fetch_add(hits, Ordering::Relaxed);
        self.inner
            .probe_misses
            .fetch_add(probes - hits, Ordering::Relaxed);
        self.inner
            .fuzzy_hits
            .fetch_add(fuzzy_hits, Ordering::Relaxed);
    }

    /// Record UDF invocations: `executed` ran the model, `avoided` were
    /// served from materialized state, `ms_avoided` is the simulated cost
    /// the avoided calls would have paid. Requested = executed + avoided.
    pub fn record_udf_calls(&self, executed: u64, avoided: u64, ms_avoided: f64) {
        self.inner
            .udf_calls_requested
            .fetch_add(executed + avoided, Ordering::Relaxed);
        self.inner
            .udf_calls_executed
            .fetch_add(executed, Ordering::Relaxed);
        self.inner
            .udf_calls_avoided
            .fetch_add(avoided, Ordering::Relaxed);
        if ms_avoided > 0.0 {
            self.add_ms_avoided(ms_avoided);
        }
    }

    /// Record rows handed out as `Arc` clones of stored rows (no copy).
    pub fn record_zero_copy_rows(&self, rows: u64) {
        self.inner
            .rows_served_zero_copy
            .fetch_add(rows, Ordering::Relaxed);
    }

    /// Record FunCache lookup outcomes.
    pub fn record_funcache(&self, hits: u64, misses: u64) {
        self.inner.funcache_hits.fetch_add(hits, Ordering::Relaxed);
        self.inner
            .funcache_misses
            .fetch_add(misses, Ordering::Relaxed);
    }

    /// Record rows read from a materialized view.
    pub fn record_view_rows_read(&self, rows: u64) {
        self.inner.view_rows_read.fetch_add(rows, Ordering::Relaxed);
    }

    /// Record rows appended to a materialized view.
    pub fn record_view_rows_written(&self, rows: u64) {
        self.inner
            .view_rows_written
            .fetch_add(rows, Ordering::Relaxed);
    }

    /// Record decoded video frames.
    pub fn record_frames_scanned(&self, frames: u64) {
        self.inner
            .frames_scanned
            .fetch_add(frames, Ordering::Relaxed);
    }

    /// Record one batch emitted in columnar form by an executor operator
    /// (`rows` = its post-selection row count). Charged on the caller
    /// thread like every other counter.
    pub fn record_columnar_batch(&self, rows: u64) {
        self.inner.columnar_batches.fetch_add(1, Ordering::Relaxed);
        self.inner.columnar_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Record rows materialized from columnar to row form at a pivot
    /// boundary (apply input, blocking sort, final output collection).
    pub fn record_rows_pivoted(&self, rows: u64) {
        self.inner.rows_pivoted.fetch_add(rows, Ordering::Relaxed);
    }

    /// Record a recovery pass over a persisted store: `recovered` segments
    /// loaded and verified, `quarantined` segments set aside as corrupt.
    pub fn record_recovery(&self, recovered: u64, quarantined: u64) {
        self.inner
            .views_recovered
            .fetch_add(recovered, Ordering::Relaxed);
        self.inner
            .views_quarantined
            .fetch_add(quarantined, Ordering::Relaxed);
    }

    /// Record transient-UDF retry outcomes: `retries` attempts repeated,
    /// `gave_up` invocations abandoned after the budget ran out.
    pub fn record_udf_retries(&self, retries: u64, gave_up: u64) {
        self.inner.udf_retries.fetch_add(retries, Ordering::Relaxed);
        self.inner.udf_gave_up.fetch_add(gave_up, Ordering::Relaxed);
    }

    /// Record one engaged parallel pipeline segment and the morsels it
    /// dispatched. Charged once, on the caller thread, after the workers
    /// have returned — both values are deterministic.
    pub fn record_parallel_pipeline(&self, morsels: u64) {
        self.inner
            .parallel_pipelines
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .morsels_dispatched
            .fetch_add(morsels, Ordering::Relaxed);
    }

    /// Record morsels that were stolen across lanes. Nondeterministic by
    /// nature (pure scheduling); see [`MetricsSnapshot::deterministic`].
    pub fn record_morsels_stolen(&self, stolen: u64) {
        self.inner
            .morsels_stolen
            .fetch_add(stolen, Ordering::Relaxed);
    }

    /// Record the worker-pool size the session is running with (a gauge:
    /// the latest value wins).
    pub fn set_n_workers(&self, n: u64) {
        self.inner.n_workers.store(n, Ordering::Relaxed);
    }

    /// Note one contended shard-lock acquisition. Nondeterministic by nature;
    /// see [`MetricsSnapshot::deterministic`].
    pub fn note_shard_contention(&self) {
        self.inner
            .shard_lock_contention
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record one query entering graceful degradation (budget tripped; the
    /// engine switched to streaming aggregation / skipped materialization
    /// instead of failing).
    pub fn record_degraded_query(&self) {
        self.inner.degraded_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` view-materialization commits dropped because the owning
    /// query degraded or was cancelled.
    pub fn record_materialization_skipped(&self, n: u64) {
        self.inner
            .materialization_skipped
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Record the UDF circuit breaker tripping open.
    pub fn record_udf_breaker_open(&self) {
        self.inner.udf_breaker_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the UDF circuit breaker transitioning to half-open.
    pub fn record_udf_breaker_halfopen(&self) {
        self.inner
            .udf_breaker_halfopen
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record one query admitted by the admission controller.
    pub fn record_query_admitted(&self) {
        self.inner.queries_admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one query shed by the admission controller.
    pub fn record_query_shed(&self) {
        self.inner.queries_shed.fetch_add(1, Ordering::Relaxed);
    }

    fn add_ms_avoided(&self, ms: f64) {
        let cell = &self.inner.udf_ms_avoided_bits;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + ms).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let i = &self.inner;
        MetricsSnapshot {
            udf_calls_requested: i.udf_calls_requested.load(Ordering::Relaxed),
            udf_calls_executed: i.udf_calls_executed.load(Ordering::Relaxed),
            udf_calls_avoided: i.udf_calls_avoided.load(Ordering::Relaxed),
            udf_ms_avoided: f64::from_bits(i.udf_ms_avoided_bits.load(Ordering::Relaxed)),
            probes: i.probes.load(Ordering::Relaxed),
            probe_hits: i.probe_hits.load(Ordering::Relaxed),
            probe_misses: i.probe_misses.load(Ordering::Relaxed),
            fuzzy_hits: i.fuzzy_hits.load(Ordering::Relaxed),
            rows_served_zero_copy: i.rows_served_zero_copy.load(Ordering::Relaxed),
            funcache_hits: i.funcache_hits.load(Ordering::Relaxed),
            funcache_misses: i.funcache_misses.load(Ordering::Relaxed),
            view_rows_read: i.view_rows_read.load(Ordering::Relaxed),
            view_rows_written: i.view_rows_written.load(Ordering::Relaxed),
            frames_scanned: i.frames_scanned.load(Ordering::Relaxed),
            columnar_batches: i.columnar_batches.load(Ordering::Relaxed),
            columnar_rows: i.columnar_rows.load(Ordering::Relaxed),
            rows_pivoted: i.rows_pivoted.load(Ordering::Relaxed),
            views_recovered: i.views_recovered.load(Ordering::Relaxed),
            views_quarantined: i.views_quarantined.load(Ordering::Relaxed),
            udf_retries: i.udf_retries.load(Ordering::Relaxed),
            udf_gave_up: i.udf_gave_up.load(Ordering::Relaxed),
            morsels_dispatched: i.morsels_dispatched.load(Ordering::Relaxed),
            morsels_stolen: i.morsels_stolen.load(Ordering::Relaxed),
            parallel_pipelines: i.parallel_pipelines.load(Ordering::Relaxed),
            degraded_queries: i.degraded_queries.load(Ordering::Relaxed),
            materialization_skipped: i.materialization_skipped.load(Ordering::Relaxed),
            udf_breaker_open: i.udf_breaker_open.load(Ordering::Relaxed),
            udf_breaker_halfopen: i.udf_breaker_halfopen.load(Ordering::Relaxed),
            queries_admitted: i.queries_admitted.load(Ordering::Relaxed),
            queries_shed: i.queries_shed.load(Ordering::Relaxed),
            n_workers: i.n_workers.load(Ordering::Relaxed),
            shard_lock_contention: i.shard_lock_contention.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero (clean workload state).
    pub fn reset(&self) {
        let i = &self.inner;
        i.udf_calls_requested.store(0, Ordering::Relaxed);
        i.udf_calls_executed.store(0, Ordering::Relaxed);
        i.udf_calls_avoided.store(0, Ordering::Relaxed);
        i.udf_ms_avoided_bits.store(0, Ordering::Relaxed);
        i.probes.store(0, Ordering::Relaxed);
        i.probe_hits.store(0, Ordering::Relaxed);
        i.probe_misses.store(0, Ordering::Relaxed);
        i.fuzzy_hits.store(0, Ordering::Relaxed);
        i.rows_served_zero_copy.store(0, Ordering::Relaxed);
        i.funcache_hits.store(0, Ordering::Relaxed);
        i.funcache_misses.store(0, Ordering::Relaxed);
        i.view_rows_read.store(0, Ordering::Relaxed);
        i.view_rows_written.store(0, Ordering::Relaxed);
        i.frames_scanned.store(0, Ordering::Relaxed);
        i.columnar_batches.store(0, Ordering::Relaxed);
        i.columnar_rows.store(0, Ordering::Relaxed);
        i.rows_pivoted.store(0, Ordering::Relaxed);
        i.views_recovered.store(0, Ordering::Relaxed);
        i.views_quarantined.store(0, Ordering::Relaxed);
        i.udf_retries.store(0, Ordering::Relaxed);
        i.udf_gave_up.store(0, Ordering::Relaxed);
        i.morsels_dispatched.store(0, Ordering::Relaxed);
        i.morsels_stolen.store(0, Ordering::Relaxed);
        i.parallel_pipelines.store(0, Ordering::Relaxed);
        i.degraded_queries.store(0, Ordering::Relaxed);
        i.materialization_skipped.store(0, Ordering::Relaxed);
        i.udf_breaker_open.store(0, Ordering::Relaxed);
        i.udf_breaker_halfopen.store(0, Ordering::Relaxed);
        i.queries_admitted.store(0, Ordering::Relaxed);
        i.queries_shed.store(0, Ordering::Relaxed);
        i.n_workers.store(0, Ordering::Relaxed);
        i.shard_lock_contention.store(0, Ordering::Relaxed);
    }
}

/// Per-operator runtime statistics collected during one query execution,
/// keyed by the plan node's [`OpId`](crate::ids::OpId). Rendered by
/// `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OpStats {
    /// Rows emitted by this operator.
    pub rows_out: u64,
    /// Batches emitted by this operator.
    pub batches: u64,
    /// Cumulative simulated cost of this operator's *subtree* (self cost is
    /// derived at render time: `cum - Σ children.cum`).
    pub cum: CostBreakdown,
    /// Probe keys this operator looked up (APPLY only).
    pub probes: u64,
    /// Probe keys resolved from materialized state (APPLY only).
    pub probe_hits: u64,
    /// Hits resolved via the fuzzy (IoU) fallback (APPLY only).
    pub fuzzy_hits: u64,
    /// UDF invocations this operator executed (APPLY only).
    pub udf_executed: u64,
    /// UDF invocations this operator avoided (APPLY only).
    pub udf_avoided: u64,
}

impl OpStats {
    /// Fold `other` into `self` (used when one operator reports in several
    /// increments over its lifetime).
    pub fn absorb(&mut self, other: &OpStats) {
        self.rows_out += other.rows_out;
        self.batches += other.batches;
        self.cum = self.cum.plus(&other.cum);
        self.probes += other.probes;
        self.probe_hits += other.probe_hits;
        self.fuzzy_hits += other.fuzzy_hits;
        self.udf_executed += other.udf_executed;
        self.udf_avoided += other.udf_avoided;
    }

    /// Fraction of probes that hit, in `[0, 1]`; 0 when nothing was probed.
    pub fn probe_hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.probe_hits as f64 / self.probes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{CostCategory, SimClock};

    #[test]
    fn probe_batches_keep_the_invariant() {
        let m = MetricsSink::new();
        m.record_probe_batch(10, 7, 2);
        m.record_probe_batch(5, 0, 0);
        let s = m.snapshot();
        assert_eq!(s.probes, 15);
        assert_eq!(s.probe_hits, 7);
        assert_eq!(s.probe_misses, 8);
        assert_eq!(s.fuzzy_hits, 2);
        assert_eq!(s.probe_hits + s.probe_misses, s.probes);
        assert!((s.probe_hit_rate() - 7.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn udf_calls_sum_to_requested() {
        let m = MetricsSink::new();
        m.record_udf_calls(3, 0, 0.0);
        m.record_udf_calls(0, 4, 4.0 * 99.0);
        let s = m.snapshot();
        assert_eq!(s.udf_calls_requested, 7);
        assert_eq!(s.udf_calls_executed, 3);
        assert_eq!(s.udf_calls_avoided, 4);
        assert_eq!(
            s.udf_calls_executed + s.udf_calls_avoided,
            s.udf_calls_requested
        );
        assert!((s.udf_ms_avoided - 396.0).abs() < 1e-9);
        assert!((s.reuse_rate() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn since_attributes_deltas() {
        let m = MetricsSink::new();
        m.record_udf_calls(2, 1, 99.0);
        let before = m.snapshot();
        m.record_udf_calls(0, 5, 495.0);
        m.record_zero_copy_rows(12);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.udf_calls_avoided, 5);
        assert_eq!(delta.udf_calls_executed, 0);
        assert_eq!(delta.rows_served_zero_copy, 12);
        assert!((delta.udf_ms_avoided - 495.0).abs() < 1e-9);
    }

    #[test]
    fn plus_merges_counterwise() {
        let a = MetricsSink::new();
        a.record_funcache(1, 2);
        let b = MetricsSink::new();
        b.record_funcache(10, 20);
        b.record_frames_scanned(7);
        let sum = a.snapshot().plus(&b.snapshot());
        assert_eq!(sum.funcache_hits, 11);
        assert_eq!(sum.funcache_misses, 22);
        assert_eq!(sum.frames_scanned, 7);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = MetricsSink::new();
        m.record_probe_batch(4, 4, 1);
        m.record_udf_calls(1, 1, 2.0);
        m.record_view_rows_read(3);
        m.record_view_rows_written(3);
        m.note_shard_contention();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn deterministic_masks_scheduling_dependent_counters_only() {
        let m = MetricsSink::new();
        m.record_probe_batch(2, 1, 0);
        m.note_shard_contention();
        m.note_shard_contention();
        m.record_parallel_pipeline(8);
        m.record_morsels_stolen(3);
        m.set_n_workers(4);
        let s = m.snapshot();
        assert_eq!(s.shard_lock_contention, 2);
        assert_eq!(s.morsels_stolen, 3);
        assert_eq!(s.n_workers, 4);
        let d = s.deterministic();
        assert_eq!(d.shard_lock_contention, 0);
        assert_eq!(d.morsels_stolen, 0);
        assert_eq!(d.n_workers, 0);
        // The deterministic parallel counters survive the mask.
        assert_eq!(d.morsels_dispatched, 8);
        assert_eq!(d.parallel_pipelines, 1);
        assert_eq!(d.probes, 2);
        assert_eq!(d.probe_hits, 1);
    }

    #[test]
    fn parallel_counters_round_trip() {
        let m = MetricsSink::new();
        m.record_parallel_pipeline(10);
        m.record_parallel_pipeline(3);
        m.record_morsels_stolen(2);
        m.set_n_workers(8);
        let s = m.snapshot();
        assert_eq!(s.parallel_pipelines, 2);
        assert_eq!(s.morsels_dispatched, 13);
        assert_eq!(s.morsels_stolen, 2);
        assert_eq!(s.n_workers, 8);
        // set_n_workers is a gauge: the latest value wins.
        m.set_n_workers(2);
        assert_eq!(m.snapshot().n_workers, 2);
        let before = s;
        m.record_parallel_pipeline(5);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.parallel_pipelines, 1);
        assert_eq!(delta.morsels_dispatched, 5);
        // n_workers went down (8 → 2): since() saturates instead of wrapping.
        assert_eq!(delta.n_workers, 0);
        // The gauge stays out of the exported counter list.
        let names: Vec<&str> = s.named_counters().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"morsels_dispatched"));
        assert!(names.contains(&"morsels_stolen"));
        assert!(names.contains(&"parallel_pipelines"));
        assert!(!names.contains(&"n_workers"));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn recovery_and_retry_counters_round_trip() {
        let m = MetricsSink::new();
        m.record_recovery(3, 1);
        m.record_udf_retries(5, 2);
        let s = m.snapshot();
        assert_eq!(s.views_recovered, 3);
        assert_eq!(s.views_quarantined, 1);
        assert_eq!(s.udf_retries, 5);
        assert_eq!(s.udf_gave_up, 2);
        let before = s;
        m.record_recovery(0, 4);
        m.record_udf_retries(1, 0);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.views_quarantined, 4);
        assert_eq!(delta.udf_retries, 1);
        assert_eq!(delta.views_recovered, 0);
        let sum = before.plus(&delta);
        assert_eq!(sum, m.snapshot());
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn columnar_counters_round_trip() {
        let m = MetricsSink::new();
        m.record_columnar_batch(1024);
        m.record_columnar_batch(512);
        m.record_rows_pivoted(512);
        let s = m.snapshot();
        assert_eq!(s.columnar_batches, 2);
        assert_eq!(s.columnar_rows, 1536);
        assert_eq!(s.rows_pivoted, 512);
        let before = s;
        m.record_columnar_batch(8);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.columnar_batches, 1);
        assert_eq!(delta.columnar_rows, 8);
        assert_eq!(delta.rows_pivoted, 0);
        assert_eq!(before.plus(&delta), m.snapshot());
        // Columnar counters are deterministic — they survive the mask.
        assert_eq!(m.snapshot().deterministic().columnar_rows, 1544);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn governance_counters_round_trip() {
        let m = MetricsSink::new();
        m.record_degraded_query();
        m.record_materialization_skipped(2);
        m.record_udf_breaker_open();
        m.record_udf_breaker_halfopen();
        m.record_query_admitted();
        m.record_query_admitted();
        m.record_query_shed();
        let s = m.snapshot();
        assert_eq!(s.degraded_queries, 1);
        assert_eq!(s.materialization_skipped, 2);
        assert_eq!(s.udf_breaker_open, 1);
        assert_eq!(s.udf_breaker_halfopen, 1);
        assert_eq!(s.queries_admitted, 2);
        assert_eq!(s.queries_shed, 1);
        let before = s;
        m.record_query_shed();
        m.record_degraded_query();
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.queries_shed, 1);
        assert_eq!(delta.degraded_queries, 1);
        assert_eq!(delta.queries_admitted, 0);
        assert_eq!(before.plus(&delta), m.snapshot());
        // Governance counters are deterministic — they survive the mask.
        let d = m.snapshot().deterministic();
        assert_eq!(d.degraded_queries, 2);
        assert_eq!(d.queries_shed, 2);
        // And they are exported for the perf gate.
        let names: Vec<&str> = s.named_counters().iter().map(|(n, _)| *n).collect();
        for name in [
            "degraded_queries",
            "materialization_skipped",
            "udf_breaker_open",
            "udf_breaker_halfopen",
            "queries_admitted",
            "queries_shed",
        ] {
            assert!(names.contains(&name), "missing counter {name}");
        }
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn clones_share_the_sink() {
        let a = MetricsSink::new();
        let b = a.clone();
        b.record_zero_copy_rows(9);
        assert_eq!(a.snapshot().rows_served_zero_copy, 9);
    }

    #[test]
    fn snapshot_is_plain_data() {
        let m = MetricsSink::new();
        m.record_probe_batch(3, 2, 0);
        let s = m.snapshot();
        assert_eq!(s.probes, 3);
        assert_eq!(s.probe_hits, 2);
        // Snapshots are plain Copy data: copying detaches from the sink.
        let frozen = s;
        m.record_probe_batch(1, 0, 0);
        assert_eq!(frozen.probes, 3);
        assert_eq!(m.snapshot().probes, 4);
    }

    #[test]
    fn op_stats_absorb_and_rate() {
        let clock = SimClock::new();
        clock.charge(CostCategory::Apply, 5.0);
        let mut a = OpStats {
            rows_out: 10,
            batches: 1,
            cum: clock.snapshot(),
            probes: 8,
            probe_hits: 6,
            ..OpStats::default()
        };
        let b = OpStats {
            rows_out: 5,
            batches: 1,
            probes: 2,
            probe_hits: 0,
            udf_executed: 2,
            ..OpStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.rows_out, 15);
        assert_eq!(a.batches, 2);
        assert_eq!(a.probes, 10);
        assert!((a.probe_hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(a.cum.get(CostCategory::Apply), 5.0);
    }
}
