//! xxHash64 implementation.
//!
//! The paper's FunCache baseline uses xxHash to hash UDF input arguments
//! (video frames) at every invocation. We implement the xxHash64 algorithm
//! in-repo (~60 lines) rather than pulling an extra dependency; the reference
//! vectors below pin the implementation to the upstream spec.

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn read_u64(data: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(data[i..i + 8].try_into().unwrap())
}

#[inline]
fn read_u32(data: &[u8], i: usize) -> u64 {
    u32::from_le_bytes(data[i..i + 4].try_into().unwrap()) as u64
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

/// Compute the xxHash64 of `data` with the given `seed`.
pub fn xxhash64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut i = 0;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while i + 32 <= len {
            v1 = round(v1, read_u64(data, i));
            v2 = round(v2, read_u64(data, i + 8));
            v3 = round(v3, read_u64(data, i + 16));
            v4 = round(v4, read_u64(data, i + 24));
            i += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while i + 8 <= len {
        h = (h ^ round(0, read_u64(data, i)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        i += 8;
    }
    if i + 4 <= len {
        h = (h ^ read_u32(data, i).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        i += 4;
    }
    while i < len {
        h = (h ^ (data[i] as u64).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
        i += 1;
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// A 128-bit key built from two seeded xxHash64 passes — the shape the paper
/// cites for FunCache ("128-bit hash values of the input arguments").
pub fn xxhash128(data: &[u8]) -> (u64, u64) {
    (xxhash64(data, 0), xxhash64(data, 0x9E3779B97F4A7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the canonical xxHash repository test suite.
    #[test]
    fn reference_empty() {
        assert_eq!(xxhash64(b"", 0), 0xEF46DB3751D8E999);
    }

    #[test]
    fn reference_single_byte() {
        // XXH64 of one byte 0x9e with seed 0 per upstream sanity checks uses
        // a generated buffer; instead pin well-known ASCII vectors.
        assert_eq!(xxhash64(b"a", 0), 0xD24EC4F1A98C6E5B);
    }

    #[test]
    fn reference_abc() {
        assert_eq!(xxhash64(b"abc", 0), 0x44BC2CF5AD770999);
    }

    #[test]
    fn reference_long_with_seed() {
        // "xxhash" hashed with seed 20141025 — vector used by several
        // independent implementations.
        assert_eq!(xxhash64(b"xxhash", 20141025), 0xB559B98D844E0635);
    }

    #[test]
    fn covers_all_length_branches() {
        // Lengths crossing the 32-byte stripe, 8-byte, 4-byte and tail paths.
        for len in [0usize, 1, 3, 4, 7, 8, 15, 31, 32, 33, 63, 64, 100] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 37 + 11) as u8).collect();
            let h1 = xxhash64(&data, 7);
            let h2 = xxhash64(&data, 7);
            assert_eq!(h1, h2, "deterministic at len {len}");
            if len > 0 {
                let mut tweaked = data.clone();
                tweaked[len / 2] ^= 0xFF;
                assert_ne!(xxhash64(&tweaked, 7), h1, "sensitive at len {len}");
            }
        }
    }

    #[test]
    fn xxhash128_halves_differ() {
        let (lo, hi) = xxhash128(b"frame-bytes");
        assert_ne!(lo, hi);
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(xxhash64(b"frame", 0), xxhash64(b"frame", 1));
    }
}
