//! Per-query resource governance: cooperative cancellation, deadlines, and
//! a byte-budget memory accountant.
//!
//! A [`QueryGovernor`] is created per query and carried through the
//! execution context. It is the one piece of query state that crosses
//! thread boundaries by design — worker lanes observe the cancellation
//! token between morsels — so unlike [`SimClock`] it is built from atomics
//! and a cheap `Arc` handle. The *accounting side effects* (what gets
//! charged, what error is raised) still happen only on the caller thread,
//! preserving the repo-wide parallel ≡ serial determinism discipline:
//!
//! * **Deadlines are SimClock-denominated.** The deadline compares the
//!   query's simulated-cost delta against a millisecond budget, so whether
//!   a query exceeds its deadline is a pure function of the workload — a
//!   governed replay cancels at the same batch boundary every run, on every
//!   machine, at every worker-pool width. Wall-clock enforcement exists
//!   only as an explicitly non-deterministic overlay (`wall:<ms>` form).
//! * **The token is checked cooperatively at batch boundaries.** Operators
//!   never kill threads; they observe [`QueryGovernor::check`] between
//!   batches (caller thread) or [`QueryGovernor::morsel_gate`] between
//!   morsels (worker lanes) and unwind with [`EvaError::Cancelled`].
//! * **The memory accountant tracks retained state.** Result-buffer and
//!   aggregation-state growth is charged in deterministic estimates;
//!   transient per-batch buffers are not, so the accountant's verdict is
//!   schedule-independent.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::clock::SimClock;
use crate::error::{CancelReason, EvaError, Result};

/// Per-query governance knobs. `Copy` so session/arm configs stay `Copy`;
/// serializable so fuzz corpus files can pin a governed session.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Simulated-time deadline per query, in SimClock milliseconds.
    /// Deterministic: the same workload cancels at the same batch boundary.
    #[serde(default)]
    pub deadline_ms: Option<f64>,
    /// Wall-clock deadline overlay, in real milliseconds. Explicitly
    /// non-deterministic; off unless configured.
    #[serde(default)]
    pub wall_deadline_ms: Option<u64>,
    /// Byte budget for retained per-query memory (result buffers,
    /// aggregation state). Tripping it degrades when possible, else cancels.
    #[serde(default)]
    pub budget_bytes: Option<u64>,
    /// Deterministic cancellation trip point: morsel ordinals `>= k` are
    /// refused, simulating a user cancellation that lands exactly between
    /// morsel `k-1` and morsel `k` at any worker-pool width. Used by the
    /// chaos sweep and the fuzz harness.
    #[serde(default)]
    pub cancel_at_morsel: Option<u64>,
}

impl GovernorConfig {
    /// True when any knob is set (an ungoverned query skips all checks).
    pub fn is_governed(&self) -> bool {
        self.deadline_ms.is_some()
            || self.wall_deadline_ms.is_some()
            || self.budget_bytes.is_some()
            || self.cancel_at_morsel.is_some()
    }

    /// Overlay the `EVA_QUERY_DEADLINE` / `EVA_QUERY_BUDGET_BYTES` env
    /// knobs on top of `self`. `EVA_QUERY_DEADLINE` accepts a float (sim
    /// ms, deterministic) or `wall:<ms>` (wall-clock overlay). Unparseable
    /// values are ignored — governance must never break an ungoverned run.
    pub fn with_env_overrides(mut self) -> GovernorConfig {
        if let Ok(v) = std::env::var("EVA_QUERY_DEADLINE") {
            if let Some(ms) = v.strip_prefix("wall:") {
                if let Ok(ms) = ms.trim().parse::<u64>() {
                    self.wall_deadline_ms = Some(ms);
                }
            } else if let Ok(ms) = v.trim().parse::<f64>() {
                if ms.is_finite() && ms >= 0.0 {
                    self.deadline_ms = Some(ms);
                }
            }
        }
        if let Ok(v) = std::env::var("EVA_QUERY_BUDGET_BYTES") {
            if let Ok(bytes) = v.trim().parse::<u64>() {
                self.budget_bytes = Some(bytes);
            }
        }
        self
    }
}

const REASON_NONE: u64 = 0;

fn reason_code(r: CancelReason) -> u64 {
    match r {
        CancelReason::Deadline => 1,
        CancelReason::Budget => 2,
        CancelReason::Shed => 3,
        CancelReason::User => 4,
    }
}

fn code_reason(c: u64) -> Option<CancelReason> {
    match c {
        1 => Some(CancelReason::Deadline),
        2 => Some(CancelReason::Budget),
        3 => Some(CancelReason::Shed),
        4 => Some(CancelReason::User),
        _ => None,
    }
}

#[derive(Debug)]
struct Inner {
    cfg: GovernorConfig,
    /// SimClock total at query start; the deadline compares against the
    /// delta, so session-cumulative charges from earlier queries don't count.
    start_sim_ms: f64,
    /// Wall-clock cutoff, precomputed from `wall_deadline_ms`.
    wall_deadline: Option<Instant>,
    /// First-wins cancellation reason; `REASON_NONE` until cancelled.
    reason: AtomicU64,
    /// Bytes currently charged to the memory accountant.
    bytes: AtomicU64,
    /// Set once the query entered graceful degradation.
    degraded: AtomicBool,
    /// Optional external cancellation flag shared with the session (set by
    /// `EvaDb::cancel_current` from any thread → reason `User`).
    external_cancel: Option<Arc<AtomicBool>>,
}

/// Cheap-clone per-query governance handle (see module docs).
#[derive(Debug, Clone)]
pub struct QueryGovernor {
    inner: Arc<Inner>,
}

impl Default for QueryGovernor {
    fn default() -> Self {
        QueryGovernor::ungoverned()
    }
}

impl QueryGovernor {
    /// A governor for one query. `start_sim_ms` anchors the simulated
    /// deadline (pass `clock.total_ms()` at query start).
    pub fn new(cfg: GovernorConfig, start_sim_ms: f64) -> QueryGovernor {
        QueryGovernor {
            inner: Arc::new(Inner {
                wall_deadline: cfg
                    .wall_deadline_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms)),
                cfg,
                start_sim_ms,
                reason: AtomicU64::new(REASON_NONE),
                bytes: AtomicU64::new(0),
                degraded: AtomicBool::new(false),
                external_cancel: None,
            }),
        }
    }

    /// A governor with every knob off — all checks are near-free no-ops.
    pub fn ungoverned() -> QueryGovernor {
        QueryGovernor::new(GovernorConfig::default(), 0.0)
    }

    /// Attach a session-shared cancellation flag (observed with reason
    /// [`CancelReason::User`]). Builder-style, used at query start.
    pub fn with_external_cancel(self, flag: Arc<AtomicBool>) -> QueryGovernor {
        let inner = &self.inner;
        QueryGovernor {
            inner: Arc::new(Inner {
                cfg: inner.cfg,
                start_sim_ms: inner.start_sim_ms,
                wall_deadline: inner.wall_deadline,
                reason: AtomicU64::new(inner.reason.load(Ordering::SeqCst)),
                bytes: AtomicU64::new(inner.bytes.load(Ordering::SeqCst)),
                degraded: AtomicBool::new(inner.degraded.load(Ordering::SeqCst)),
                external_cancel: Some(flag),
            }),
        }
    }

    /// The configuration this governor enforces.
    pub fn config(&self) -> &GovernorConfig {
        &self.inner.cfg
    }

    /// Cancel the query. First reason wins; later calls are no-ops.
    pub fn cancel(&self, reason: CancelReason) {
        let _ = self.inner.reason.compare_exchange(
            REASON_NONE,
            reason_code(reason),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Has the token tripped? (Also folds in the external user flag.)
    pub fn is_cancelled(&self) -> bool {
        self.poll_external();
        self.inner.reason.load(Ordering::SeqCst) != REASON_NONE
    }

    /// The first cancellation reason, if any.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        self.poll_external();
        code_reason(self.inner.reason.load(Ordering::SeqCst))
    }

    fn poll_external(&self) {
        if let Some(flag) = &self.inner.external_cancel {
            if flag.load(Ordering::SeqCst) {
                self.cancel(CancelReason::User);
            }
        }
    }

    /// Build the `Cancelled` error for the recorded reason.
    pub fn cancel_error(&self) -> EvaError {
        let reason = self.cancel_reason().unwrap_or(CancelReason::User);
        let detail = match reason {
            CancelReason::Deadline => match self.inner.cfg.deadline_ms {
                Some(ms) => format!("query exceeded its {ms}ms simulated deadline"),
                None => "query exceeded its wall-clock deadline".to_string(),
            },
            CancelReason::Budget => format!(
                "query exceeded its {}-byte memory budget ({} bytes charged)",
                self.inner.cfg.budget_bytes.unwrap_or(0),
                self.bytes_charged()
            ),
            CancelReason::Shed => "query shed by the admission controller".to_string(),
            CancelReason::User => "query cancelled".to_string(),
        };
        EvaError::cancelled(reason, detail)
    }

    /// Token-only check for sites without a clock (storage, dispatch).
    pub fn check_token(&self) -> Result<()> {
        if self.is_cancelled() {
            return Err(self.cancel_error());
        }
        Ok(())
    }

    /// The cooperative batch-boundary check, caller thread only: token,
    /// then the deterministic simulated deadline, then the wall overlay.
    pub fn check(&self, clock: &SimClock) -> Result<()> {
        if self.is_cancelled() {
            return Err(self.cancel_error());
        }
        if let Some(deadline) = self.inner.cfg.deadline_ms {
            if clock.total_ms() - self.inner.start_sim_ms > deadline {
                self.cancel(CancelReason::Deadline);
                return Err(self.cancel_error());
            }
        }
        if let Some(cutoff) = self.inner.wall_deadline {
            if Instant::now() >= cutoff {
                self.cancel(CancelReason::Deadline);
                return Err(self.cancel_error());
            }
        }
        Ok(())
    }

    /// Worker-lane gate, checked between morsels: `true` ⇒ run the morsel.
    ///
    /// With `cancel_at_morsel = Some(k)` the verdict is a *pure function of
    /// the ordinal*: morsels below `k` always run, later ones always refuse
    /// (tripping the token with reason `User`, as a user cancellation
    /// landing exactly between morsel `k-1` and `k` would). Scheduling
    /// cannot change which morsels complete, so the cancelled run's
    /// completed set is exactly `0..k` at any worker-pool width. Without
    /// the knob, the gate simply mirrors the token.
    pub fn morsel_gate(&self, ordinal: u64) -> bool {
        if let Some(k) = self.inner.cfg.cancel_at_morsel {
            if ordinal >= k {
                self.cancel(CancelReason::User);
                return false;
            }
            return true;
        }
        !self.is_cancelled()
    }

    /// Should worker lanes stop dequeuing work? True only for
    /// *asynchronous* cancellation sources — the session's external cancel
    /// flag and the wall-clock deadline overlay. The deterministic knobs
    /// (`cancel_at_morsel`, the simulated deadline) stop work at exact
    /// morsel/batch boundaries through [`morsel_gate`](Self::morsel_gate)
    /// and [`check`](Self::check) instead, so lanes keep draining and the
    /// completed-morsel set stays schedule-independent.
    pub fn lane_break(&self) -> bool {
        if let Some(flag) = &self.inner.external_cancel {
            if flag.load(Ordering::SeqCst) {
                return true;
            }
        }
        if let Some(cutoff) = self.inner.wall_deadline {
            if Instant::now() >= cutoff {
                return true;
            }
        }
        false
    }

    /// Charge `n` bytes of retained memory. Returns `true` while within
    /// budget (or unbudgeted). Does *not* cancel — the caller decides
    /// between graceful degradation and `Cancelled { Budget }`.
    pub fn charge_bytes(&self, n: u64) -> bool {
        let total = self.inner.bytes.fetch_add(n, Ordering::SeqCst) + n;
        match self.inner.cfg.budget_bytes {
            Some(budget) => total <= budget,
            None => true,
        }
    }

    /// Release previously charged bytes (e.g. aggregation state flushed
    /// into a merged spill).
    pub fn release_bytes(&self, n: u64) {
        let _ = self
            .inner
            .bytes
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                Some(cur.saturating_sub(n))
            });
    }

    /// Bytes currently charged to the accountant.
    pub fn bytes_charged(&self) -> u64 {
        self.inner.bytes.load(Ordering::SeqCst)
    }

    /// Cancel with reason `Budget` and return the error (for sites with no
    /// degradation path).
    pub fn budget_exceeded(&self) -> EvaError {
        self.cancel(CancelReason::Budget);
        self.cancel_error()
    }

    /// Mark the query degraded. Returns `true` on the first call so the
    /// caller can bump `degraded_queries` exactly once per query.
    pub fn enter_degraded(&self) -> bool {
        !self.inner.degraded.swap(true, Ordering::SeqCst)
    }

    /// Did this query enter graceful degradation?
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungoverned_checks_are_noops() {
        let g = QueryGovernor::ungoverned();
        let clock = SimClock::new();
        assert!(g.check(&clock).is_ok());
        assert!(g.check_token().is_ok());
        assert!(g.morsel_gate(u64::MAX - 1));
        assert!(g.charge_bytes(u64::MAX / 2));
        assert!(!g.is_degraded());
    }

    #[test]
    fn first_cancel_reason_wins() {
        let g = QueryGovernor::ungoverned();
        g.cancel(CancelReason::Budget);
        g.cancel(CancelReason::User);
        assert_eq!(g.cancel_reason(), Some(CancelReason::Budget));
        let err = g.check_token().unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::Budget));
    }

    #[test]
    fn sim_deadline_trips_on_the_clock_delta() {
        let clock = SimClock::new();
        clock.charge(crate::clock::CostCategory::Other, 100.0);
        // Anchored at 100ms with a 5ms budget: ok until the delta passes 5.
        let g = QueryGovernor::new(
            GovernorConfig {
                deadline_ms: Some(5.0),
                ..GovernorConfig::default()
            },
            clock.total_ms(),
        );
        assert!(g.check(&clock).is_ok());
        clock.charge(crate::clock::CostCategory::Other, 4.0);
        assert!(g.check(&clock).is_ok(), "4ms elapsed of a 5ms budget");
        clock.charge(crate::clock::CostCategory::Other, 2.0);
        let err = g.check(&clock).unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::Deadline));
        // Sticky: later checks keep failing with the same reason.
        assert!(g.check(&clock).is_err());
    }

    #[test]
    fn byte_budget_accounting_charges_and_releases() {
        let g = QueryGovernor::new(
            GovernorConfig {
                budget_bytes: Some(100),
                ..GovernorConfig::default()
            },
            0.0,
        );
        assert!(g.charge_bytes(60));
        assert!(!g.charge_bytes(60), "120 > 100 is over budget");
        g.release_bytes(60);
        assert_eq!(g.bytes_charged(), 60);
        assert!(g.charge_bytes(40), "back within budget after release");
        let err = g.budget_exceeded();
        assert_eq!(err.cancel_reason(), Some(CancelReason::Budget));
    }

    #[test]
    fn morsel_gate_trips_deterministically_at_the_ordinal() {
        let g = QueryGovernor::new(
            GovernorConfig {
                cancel_at_morsel: Some(2),
                ..GovernorConfig::default()
            },
            0.0,
        );
        assert!(g.morsel_gate(0));
        assert!(g.morsel_gate(1));
        assert!(!g.morsel_gate(2));
        // The gate tripped the token — but its verdict stays a pure
        // function of the ordinal, so a racing lane that asks about an
        // earlier morsel still gets the go-ahead (the completed set must be
        // exactly 0..k at any pool width).
        assert!(g.morsel_gate(0));
        assert_eq!(g.cancel_reason(), Some(CancelReason::User));
        // Lanes don't break early for the deterministic knob.
        assert!(!g.lane_break());
    }

    #[test]
    fn external_flag_reads_as_user_cancellation() {
        let flag = Arc::new(AtomicBool::new(false));
        let g = QueryGovernor::ungoverned().with_external_cancel(Arc::clone(&flag));
        assert!(g.check_token().is_ok());
        flag.store(true, Ordering::SeqCst);
        let err = g.check_token().unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::User));
    }

    #[test]
    fn degraded_entry_reports_first_call_only() {
        let g = QueryGovernor::ungoverned();
        assert!(g.enter_degraded());
        assert!(!g.enter_degraded());
        assert!(g.is_degraded());
    }
}
