//! # eva-common
//!
//! Shared kernel for the EVA-RS video database management system — a Rust
//! reproduction of *"EVA: A Symbolic Approach to Accelerating Exploratory
//! Video Analytics with Materialized Views"* (SIGMOD 2022).
//!
//! This crate holds the vocabulary types every other subsystem speaks:
//!
//! * [`Value`] — the dynamically-typed datum flowing through the engine,
//! * [`Schema`]/[`Field`]/[`DataType`] — relation schemas,
//! * [`BBox`] — bounding boxes produced by object detectors,
//! * [`SimClock`] — the virtual clock that charges simulated UDF/IO cost so
//!   experiments reproduce the paper's cost ratios deterministically,
//! * [`EvaError`] — the error type of the whole workspace,
//! * [`hash::xxhash64`] — the fast hash used by the FunCache baseline.

pub mod batch;
pub mod clock;
pub mod codec;
pub mod column;
pub mod error;
pub mod failpoint;
pub mod governor;
pub mod hash;
pub mod hist;
pub mod ids;
pub mod metrics;
pub mod schema;
pub mod table_fmt;
pub mod testutil;
pub mod trace;
pub mod value;

pub use batch::{Batch, ColumnarBatch, ExecBatch, Row};
pub use clock::{CostBreakdown, CostCategory, SimClock};
pub use codec::{ByteReader, ByteWriter};
pub use column::{Bitmap, CellRef, Column, ColumnBuilder, ColumnData};
pub use error::{CancelReason, EvaError, Result};
pub use failpoint::{Failpoint, FailpointRegistry, FireRule};
pub use governor::{GovernorConfig, QueryGovernor};
pub use hist::LatencyHistogram;
pub use ids::{FrameId, OpId, QueryId, UdfId, ViewId};
pub use metrics::{MetricsSink, MetricsSnapshot, OpStats};
pub use schema::{DataType, Field, Schema};
pub use trace::{prometheus_text, QueryTrace, Span, SpanHists, SpanKind, SpanRef, TraceSink};
pub use value::{BBox, Value};
