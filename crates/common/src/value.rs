//! The dynamically-typed datum and bounding-box types.

use crate::error::{EvaError, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An axis-aligned bounding box in *relative* coordinates (fractions of the
/// frame, each in `[0, 1]`), matching how the paper's `AREA(bbox)` predicate
/// compares against constants like `0.3`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge (relative).
    pub x1: f32,
    /// Top edge (relative).
    pub y1: f32,
    /// Right edge (relative).
    pub x2: f32,
    /// Bottom edge (relative).
    pub y2: f32,
}

impl BBox {
    /// Create a box, normalizing so `x1 <= x2` and `y1 <= y2`.
    pub fn new(x1: f32, y1: f32, x2: f32, y2: f32) -> Self {
        BBox {
            x1: x1.min(x2),
            y1: y1.min(y2),
            x2: x1.max(x2),
            y2: y1.max(y2),
        }
    }

    /// Relative area of the box — the quantity the `Area` UDF computes.
    pub fn area(&self) -> f32 {
        (self.x2 - self.x1).max(0.0) * (self.y2 - self.y1).max(0.0)
    }

    /// Intersection-over-union with another box; used by fuzzy matching and
    /// by tests validating detector noise.
    pub fn iou(&self, other: &BBox) -> f32 {
        let ix1 = self.x1.max(other.x1);
        let iy1 = self.y1.max(other.y1);
        let ix2 = self.x2.min(other.x2);
        let iy2 = self.y2.min(other.y2);
        let inter = (ix2 - ix1).max(0.0) * (iy2 - iy1).max(0.0);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Quantization factor shared by [`BBox::key`] and [`BBox::from_key`]:
    /// coordinates are stored at 1/10000-of-frame resolution.
    pub const QUANT: f32 = 10_000.0;

    /// A stable quantized key for this box, so views keyed by
    /// `(frame, bbox)` match boxes byte-exactly after storage round trips.
    /// Quantizes each coordinate to [`BBox::QUANT`]ths of the frame.
    pub fn key(&self) -> [u16; 4] {
        let q = |v: f32| (v.clamp(0.0, 1.0) * Self::QUANT).round() as u16;
        [q(self.x1), q(self.y1), q(self.x2), q(self.y2)]
    }

    /// Reconstruct the (quantized) box a [`BBox::key`] encodes — the inverse
    /// used by fuzzy view probes comparing stored keys against query boxes.
    pub fn from_key(key: [u16; 4]) -> BBox {
        BBox {
            x1: key[0] as f32 / Self::QUANT,
            y1: key[1] as f32 / Self::QUANT,
            x2: key[2] as f32 / Self::QUANT,
            y2: key[3] as f32 / Self::QUANT,
        }
    }

    /// Clamp all coordinates into the unit square.
    pub fn clamped(&self) -> BBox {
        BBox {
            x1: self.x1.clamp(0.0, 1.0),
            y1: self.y1.clamp(0.0, 1.0),
            x2: self.x2.clamp(0.0, 1.0),
            y2: self.y2.clamp(0.0, 1.0),
        }
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3},{:.3},{:.3},{:.3}]",
            self.x1, self.y1, self.x2, self.y2
        )
    }
}

/// A dynamically-typed value flowing through the execution engine.
///
/// The engine is row-oriented over small schemas (video analytics tuples are
/// frames and detections, not wide OLAP rows), so a compact enum is the right
/// representation.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub enum Value {
    /// SQL NULL. Produced by the left-outer join in the
    /// materialization-aware transformation rule to mark missing view rows.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (frame ids, timestamps, counts).
    Int(i64),
    /// 64-bit float (areas, scores).
    Float(f64),
    /// UTF-8 string (labels, colors, vehicle types, license plates).
    Str(String),
    /// A bounding box.
    Box(BBox),
}

impl Value {
    /// True iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract a bool, erroring on other types.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvaError::Type(format!("expected BOOL, got {other}"))),
        }
    }

    /// Extract an integer, erroring on other types.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(EvaError::Type(format!("expected INT, got {other}"))),
        }
    }

    /// Extract a float; integers widen losslessly.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(EvaError::Type(format!("expected FLOAT, got {other}"))),
        }
    }

    /// Extract a string slice, erroring on other types.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(EvaError::Type(format!("expected STRING, got {other}"))),
        }
    }

    /// Extract a bounding box, erroring on other types.
    pub fn as_bbox(&self) -> Result<BBox> {
        match self {
            Value::Box(b) => Ok(*b),
            other => Err(EvaError::Type(format!("expected BBOX, got {other}"))),
        }
    }

    /// Numeric view used by comparison operators: Int and Float compare as
    /// numbers (SQL-style), everything else is non-numeric.
    fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// SQL three-valued comparison. Returns `None` when either side is NULL
    /// or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Box(a), Value::Box(b)) => {
                if a == b {
                    Some(Ordering::Equal)
                } else {
                    a.key().partial_cmp(&b.key())
                }
            }
            _ => {
                let (a, b) = (self.as_number()?, other.as_number()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Equality with SQL NULL semantics folded to plain bool for hashing
    /// contexts (NULL == NULL here, unlike `sql_cmp`).
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }

    /// Byte encoding used for hashing values (FunCache keys, group-by keys).
    /// Stable across runs.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(3);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Box(b) => {
                out.push(5);
                for k in b.key() {
                    out.extend_from_slice(&k.to_le_bytes());
                }
            }
        }
    }

    /// Length of the [`Value::write_bytes`] encoding, without allocating.
    /// Lets storage keep running byte counters in O(1) per value.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 1 + 4 + s.len(),
            Value::Box(_) => 1 + 8,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.strict_eq(other)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<BBox> for Value {
    fn from(v: BBox) -> Self {
        Value::Box(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            // Keep a decimal point on integral floats so the literal
            // re-lexes as a Float, not an Int (AST round-trip invariant).
            Value::Float(v) if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 => {
                write!(f, "{v:.1}")
            }
            Value::Float(v) => write!(f, "{v}"),
            // The lexer unescapes '' to ', so Display must re-escape.
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Box(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbox_area_and_normalization() {
        let b = BBox::new(0.5, 0.6, 0.1, 0.2);
        assert_eq!(b.x1, 0.1);
        assert_eq!(b.y1, 0.2);
        assert!((b.area() - 0.16).abs() < 1e-6);
    }

    #[test]
    fn bbox_iou_identical_is_one() {
        let b = BBox::new(0.1, 0.1, 0.4, 0.4);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_iou_disjoint_is_zero() {
        let a = BBox::new(0.0, 0.0, 0.1, 0.1);
        let b = BBox::new(0.5, 0.5, 0.9, 0.9);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn bbox_key_is_quantized_and_stable() {
        let a = BBox::new(0.12341, 0.2, 0.3, 0.4);
        let b = BBox::new(0.12344, 0.2, 0.3, 0.4);
        // Both quantize to 1234 at 1/10000 resolution.
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert!(Value::Null.strict_eq(&Value::Null));
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn string_comparison_lexicographic() {
        assert_eq!(
            Value::from("car").sql_cmp(&Value::from("truck")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(Value::from("x").sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn accessors_enforce_types() {
        assert!(Value::Int(1).as_bool().is_err());
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert_eq!(Value::from("a").as_str().unwrap(), "a");
        assert!(Value::from("a").as_bbox().is_err());
    }

    #[test]
    fn byte_encoding_distinguishes_types_and_values() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::Int(1).write_bytes(&mut a);
        Value::Float(1.0).write_bytes(&mut b);
        assert_ne!(a, b, "Int(1) and Float(1.0) must hash differently");

        let mut c = Vec::new();
        let mut d = Vec::new();
        Value::from("ab").write_bytes(&mut c);
        Value::from("ab").write_bytes(&mut d);
        assert_eq!(c, d);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from("red").to_string(), "'red'");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }

    #[test]
    fn display_round_trips_through_lexical_form() {
        // Integral floats keep a decimal point so they re-lex as floats.
        assert_eq!(Value::Float(1.0).to_string(), "1.0");
        assert_eq!(Value::Float(-2.0).to_string(), "-2.0");
        assert_eq!(Value::Float(0.25).to_string(), "0.25");
        // Embedded quotes are re-escaped the way the lexer unescapes them.
        assert_eq!(Value::from("it's").to_string(), "'it''s'");
    }
}
