//! Mergeable log-bucketed latency histograms.
//!
//! The serving-layer north star needs latency *distributions* — p50/p99
//! under load — not just counter totals. [`LatencyHistogram`] records `u64`
//! samples (the tracing layer feeds it wall-clock nanoseconds) into
//! power-of-two buckets, so recording is O(1), memory is constant, and two
//! histograms merge by bucket-wise addition. Merging is associative and
//! commutative (bucket counts are plain sums; `min`/`max` combine with
//! `min`/`max`), which is what lets per-shard or per-session histograms be
//! folded into one engine-wide distribution in any order — the property
//! tests in `tests/property_hist.rs` pin this down.
//!
//! Quantiles are estimated by rank-walking the buckets and interpolating
//! linearly inside the winning bucket, then clamping to the observed
//! `[min, max]`. A log-bucketed estimate is within a factor of two of the
//! true sample (the bucket bounds bracket it), which is plenty for latency
//! reporting and keeps the structure mergeable.

use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets. Bucket 0 holds the value 0; bucket
/// `i ≥ 1` holds values in `[2^(i−1), 2^i − 1]`; the last bucket absorbs
/// everything from `2^62` up.
pub const N_BUCKETS: usize = 64;

/// A constant-size, mergeable latency histogram over `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts (see [`N_BUCKETS`] for the bucket bounds).
    #[serde(with = "serde_buckets")]
    buckets: [u64; N_BUCKETS],
    /// Total samples recorded.
    count: u64,
    /// Sum of all samples (for averages).
    sum: u64,
    /// Smallest sample seen (`u64::MAX` when empty).
    min: u64,
    /// Largest sample seen (0 when empty).
    max: u64,
}

/// Serde helper: serialize the fixed bucket array as a plain sequence so
/// the JSON artifacts stay readable and forward-compatible.
mod serde_buckets {
    use super::N_BUCKETS;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(b: &[u64; N_BUCKETS], s: S) -> Result<S::Ok, S::Error> {
        b.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[u64; N_BUCKETS], D::Error> {
        let v: Vec<u64> = Vec::deserialize(d)?;
        let mut out = [0u64; N_BUCKETS];
        for (i, x) in v.into_iter().take(N_BUCKETS).enumerate() {
            out[i] = x;
        }
        Ok(out)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket a value lands in.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(N_BUCKETS - 1)
    }
}

/// Inclusive `[lo, hi]` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i == N_BUCKETS - 1 {
        (1u64 << (N_BUCKETS - 2), u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Is the histogram empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), or 0 when empty. The
    /// estimate lies within the log bucket holding the sample of that rank
    /// and inside the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample we are estimating.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(i);
                // Linear interpolation by rank position inside the bucket.
                let into = (rank - seen - 1) as f64 / n as f64;
                let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * into;
                return (est as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile shorthand.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one. Associative and commutative:
    /// folding any permutation of histograms yields the same result.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for i in 0..N_BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `self ∪ other` without mutating either (the operator form of
    /// [`merge`](LatencyHistogram::merge)).
    pub fn merged(&self, other: &LatencyHistogram) -> LatencyHistogram {
        let mut out = *self;
        out.merge(other);
        out
    }

    /// Cumulative `(upper_bound, count ≤ upper_bound)` pairs for the
    /// non-empty buckets, plus the implicit `+Inf` total — the shape the
    /// Prometheus text exposition format wants.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            out.push((bucket_bounds(i).1, cum));
        }
        out
    }

    /// One-line human rendering: `n=… p50=… p95=… p99=… max=…` with values
    /// formatted by `fmt` (e.g. nanoseconds → milliseconds).
    pub fn summary(&self, fmt: impl Fn(u64) -> String) -> String {
        format!(
            "n={} p50={} p95={} p99={} max={}",
            self.count,
            fmt(self.p50()),
            fmt(self.p95()),
            fmt(self.p99()),
            fmt(self.max())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn buckets_bracket_their_values() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for v in [5u64, 10, 100, 1000, 10_000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 100_000);
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(h.min() <= p50 && p50 <= p95 && p95 <= p99 && p99 <= h.max());
    }

    #[test]
    fn single_sample_quantiles_hit_the_sample() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p99(), 42);
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.quantile(1.0), 42);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = LatencyHistogram::new();
        a.record(10);
        a.record(100);
        let mut b = LatencyHistogram::new();
        b.record(1000);
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        assert_eq!(ab, ba, "merge must commute");
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.min(), 10);
        assert_eq!(ab.max(), 1000);
    }

    #[test]
    fn cumulative_buckets_end_at_total() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 4, 8, 16] {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, 5);
        // Cumulative counts are non-decreasing.
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1));
        // Upper bounds are strictly increasing.
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn serde_round_trip() {
        let mut h = LatencyHistogram::new();
        h.record(7);
        h.record(9000);
        let json = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn summary_formats_quantiles() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        let s = h.summary(|ns| format!("{:.1}ms", ns as f64 / 1e6));
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("p50=1.0ms"), "{s}");
    }
}
