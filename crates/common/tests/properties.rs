//! Property-based tests for the common kernel: hashing, values, boxes.

use proptest::prelude::*;

use eva_common::hash::{xxhash128, xxhash64};
use eva_common::{BBox, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn xxhash_is_deterministic(data in prop::collection::vec(any::<u8>(), 0..200), seed in any::<u64>()) {
        prop_assert_eq!(xxhash64(&data, seed), xxhash64(&data, seed));
    }

    #[test]
    fn xxhash_single_bit_flip_changes_hash(
        mut data in prop::collection::vec(any::<u8>(), 1..200),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let h1 = xxhash64(&data, 0);
        let i = idx.index(data.len());
        data[i] ^= 1 << bit;
        let h2 = xxhash64(&data, 0);
        prop_assert_ne!(h1, h2);
    }

    #[test]
    fn xxhash128_halves_are_independent_streams(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let (lo, hi) = xxhash128(&data);
        prop_assert_eq!(lo, xxhash64(&data, 0));
        prop_assert_ne!(lo, hi);
    }

    #[test]
    fn value_byte_encoding_is_injective_on_samples(
        a in -1000i64..1000,
        b in -1000i64..1000,
    ) {
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        Value::Int(a).write_bytes(&mut ba);
        Value::Int(b).write_bytes(&mut bb);
        prop_assert_eq!(a == b, ba == bb);
    }

    #[test]
    fn bbox_normalization_and_area(x1 in 0.0f32..1.0, y1 in 0.0f32..1.0, x2 in 0.0f32..1.0, y2 in 0.0f32..1.0) {
        let b = BBox::new(x1, y1, x2, y2);
        prop_assert!(b.x1 <= b.x2 && b.y1 <= b.y2);
        prop_assert!(b.area() >= 0.0 && b.area() <= 1.0 + 1e-6);
        // IoU is symmetric and bounded.
        let c = BBox::new(y1, x1, y2, x2);
        let iou = b.iou(&c);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&iou));
        prop_assert!((iou - c.iou(&b)).abs() < 1e-6);
    }

    #[test]
    fn bbox_key_is_stable_under_tiny_noise(x1 in 0.0f32..0.9, y1 in 0.0f32..0.9) {
        let b1 = BBox::new(x1, y1, x1 + 0.05, y1 + 0.05);
        let b2 = BBox::new(x1 + 1e-6, y1, x1 + 0.05, y1 + 0.05);
        // Quantization at 1/10000 absorbs sub-resolution jitter almost
        // always; equality of keys implies equality of quantized corners.
        if b1.key() != b2.key() {
            // Allowed only at a quantization boundary.
            let d = (b1.key()[0] as i32 - b2.key()[0] as i32).abs();
            prop_assert!(d <= 1);
        }
    }

    #[test]
    fn sql_cmp_is_antisymmetric_for_ints(a in any::<i32>(), b in any::<i32>()) {
        use std::cmp::Ordering;
        let va = Value::Int(a as i64);
        let vb = Value::Int(b as i64);
        let ab = va.sql_cmp(&vb).unwrap();
        let ba = vb.sql_cmp(&va).unwrap();
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab == Ordering::Equal, a == b);
    }
}
