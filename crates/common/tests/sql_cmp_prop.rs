//! Property tests pinning the row path's [`Value::sql_cmp`] and the
//! columnar path's [`CellRef::sql_cmp`] to each other.
//!
//! The columnar executor re-implements SQL comparison on borrowed cells so
//! filters can run without materializing values; any drift between the two
//! (NULL ordering, Int/Float cross-type numerics, NaN handling, BBox
//! quantization ties) would make the columnar-vs-row differential oracle
//! report "bugs" in whichever path is actually right. These properties make
//! the agreement a law — including through [`ColumnBuilder`]'s
//! representation choices (typed columns, `Mixed` demotion on heterogeneous
//! input, the all-null `Int` carcass).

use std::cmp::Ordering;

use proptest::prelude::*;

use eva_common::{BBox, CellRef, Column, Value};

fn arb_float() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1.0e12..1.0e12f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(-0.0f64),
        1 => Just(0.0f64),
    ]
}

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f32..=1.0, 0.0f32..=1.0, 0.0f32..=1.0, 0.0f32..=1.0)
        .prop_map(|(x1, y1, x2, y2)| BBox::new(x1, y1, x2, y2))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        2 => any::<bool>().prop_map(Value::Bool),
        4 => any::<i64>().prop_map(Value::Int),
        4 => arb_float().prop_map(Value::Float),
        3 => "[a-zA-Z0-9 _-]{0,8}".prop_map(Value::Str),
        2 => arb_bbox().prop_map(Value::Box),
    ]
}

/// `sql_cmp` through a column built from `vals`, comparing slots `i`, `j`.
fn column_cmp(vals: &[Value], i: usize, j: usize) -> Option<Ordering> {
    let col = Column::from_values(vals.iter());
    col.cell(i).sql_cmp(col.cell(j))
}

/// Round-trip equality: bit-exact for floats (`strict_eq` goes through
/// `sql_cmp` and so calls NaN != NaN), `strict_eq` otherwise.
fn roundtrip_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a.strict_eq(b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The core law: the borrowed-cell comparison equals the owned-value
    /// comparison, for every pair of values.
    #[test]
    fn cellref_matches_value(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(
            CellRef::from_value(&a).sql_cmp(CellRef::from_value(&b)),
            a.sql_cmp(&b),
            "a={:?} b={:?}", a, b
        );
    }

    /// The law survives a round trip through column storage: building a
    /// two-slot column (which may pick a typed representation, demote to
    /// `Mixed` on heterogeneous input, or leave an all-null carcass) must
    /// not change any comparison outcome.
    #[test]
    fn column_cells_match_values(a in arb_value(), b in arb_value()) {
        let vals = [a.clone(), b.clone()];
        prop_assert_eq!(column_cmp(&vals, 0, 1), a.sql_cmp(&b), "a={:?} b={:?}", a, b);
        prop_assert_eq!(column_cmp(&vals, 1, 0), b.sql_cmp(&a), "a={:?} b={:?}", a, b);
        prop_assert_eq!(column_cmp(&vals, 0, 0), a.sql_cmp(&a), "a={:?}", a);
    }

    /// Storing and re-materializing a value preserves it — bit-exactly for
    /// floats (NaN payloads and the sign of -0.0 must survive storage).
    #[test]
    fn value_at_round_trips(a in arb_value()) {
        let col = Column::from_values([&a]);
        prop_assert!(roundtrip_eq(&col.value_at(0), &a), "a={:?} got={:?}", a, col.value_at(0));
    }

    /// Antisymmetry: swapping operands reverses the ordering (or stays
    /// None/Equal). Holds for both implementations by the matching law, so
    /// check the value side only.
    #[test]
    fn sql_cmp_is_antisymmetric(a in arb_value(), b in arb_value()) {
        let fwd = a.sql_cmp(&b);
        let rev = b.sql_cmp(&a);
        prop_assert_eq!(fwd.map(Ordering::reverse), rev, "a={:?} b={:?}", a, b);
    }
}

/// Deterministic pins for the semantics the properties rely on.
#[test]
fn null_never_compares() {
    for v in [
        Value::Null,
        Value::Int(0),
        Value::Str("x".into()),
        Value::Bool(false),
    ] {
        assert_eq!(Value::Null.sql_cmp(&v), None);
        assert_eq!(v.sql_cmp(&Value::Null), None);
        assert_eq!(CellRef::Null.sql_cmp(CellRef::from_value(&v)), None);
    }
    // But strict_eq folds NULL == NULL to true for hashing contexts.
    assert!(Value::Null.strict_eq(&Value::Null));
}

#[test]
fn int_float_cross_type_numerics() {
    assert_eq!(
        Value::Int(1).sql_cmp(&Value::Float(1.0)),
        Some(Ordering::Equal)
    );
    assert_eq!(
        Value::Int(2).sql_cmp(&Value::Float(1.5)),
        Some(Ordering::Greater)
    );
    assert_eq!(
        CellRef::Int(1).sql_cmp(CellRef::Float(1.0)),
        Some(Ordering::Equal)
    );
    // NaN compares as incomparable in both paths.
    assert_eq!(
        Value::Float(f64::NAN).sql_cmp(&Value::Float(f64::NAN)),
        None
    );
    assert_eq!(
        CellRef::Float(f64::NAN).sql_cmp(CellRef::Float(f64::NAN)),
        None
    );
}

#[test]
fn bbox_quantization_ties_compare_equal() {
    // Unequal boxes whose 1/10000-quantized keys coincide must compare
    // Equal (the fuzzy-probe key is the ordering's source of truth).
    let a = BBox::new(0.12341, 0.2, 0.5, 0.6);
    let b = BBox::new(0.12344, 0.2, 0.5, 0.6);
    assert_ne!(a, b);
    assert_eq!(a.key(), b.key());
    assert_eq!(Value::Box(a).sql_cmp(&Value::Box(b)), Some(Ordering::Equal));
    assert_eq!(
        CellRef::BBox(a).sql_cmp(CellRef::BBox(b)),
        Some(Ordering::Equal)
    );
}

#[test]
fn mixed_column_preserves_exact_values() {
    // Heterogeneous input demotes the column to Mixed; every value must
    // survive bit-exactly, including the float that a naive Int column
    // would have truncated.
    let vals = [
        Value::Int(7),
        Value::Float(2.5),
        Value::Str("car".into()),
        Value::Null,
    ];
    let col = Column::from_values(vals.iter());
    assert_eq!(col.len(), 4);
    for (i, v) in vals.iter().enumerate() {
        assert!(
            col.value_at(i).strict_eq(v),
            "slot {i}: {:?}",
            col.value_at(i)
        );
    }
}
