//! **Figure 10** — Impact of logical UDF reuse (Algorithm 2): per-query
//! execution time of Min-Cost-NoReuse, Min-Cost, and EVA on VBENCH-HIGH
//! with the detector expressed as the logical `ObjectDetector` task.
//!
//! Paper shape: EVA is ~6.6× faster on the LOW-accuracy query (it reuses
//! the high-accuracy view instead of running YOLO-tiny), 1.2–3.2× faster on
//! the later queries (multi-view reuse), and ~2× *slower* on one query where
//! the reused high-accuracy view detects more objects, inflating dependent
//! UDF work (§6's chained-function-calls limitation).

use eva_baselines::{min_cost_noreuse_session, min_cost_session};
use eva_bench::{banner, fmt_f, medium_dataset, session_with, write_json_with_metrics, TextTable};
use eva_planner::ReuseStrategy;
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Figure 10: Logical UDF reuse (times in seconds, per query)");
    let ds = medium_dataset();
    let queries = vbench_high(ds.len(), DetectorKind::Logical, false);
    let workload = Workload::new("vbench-high-logical", queries.clone());

    let mut reports = Vec::new();
    let mut labels = Vec::new();
    for (label, mut db) in [
        ("Min-cost-noreuse", min_cost_noreuse_session()?),
        ("Min-cost", min_cost_session()?),
        ("EVA", session_with(ReuseStrategy::Eva, &ds)?),
    ] {
        // The min-cost constructors come without the dataset; load uniformly.
        if db.catalog().table("video").is_err() {
            db.load_video(ds.clone(), "video")?;
        }
        reports.push(run_workload(&mut db, &workload)?);
        labels.push(label);
    }

    let mut header = vec!["query".to_string(), "accuracy".to_string()];
    header.extend(labels.iter().map(|l| format!("{l} (s)")));
    header.push("EVA vs Min-cost".into());
    let mut table = TextTable::new(header);
    let mut json = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let times: Vec<f64> = reports.iter().map(|r| r.per_query[i].sim_secs).collect();
        let mut row = vec![q.name.clone(), q.accuracy.to_string()];
        row.extend(times.iter().map(|t| fmt_f(*t, 1)));
        row.push(format!("{:.2}x", times[1] / times[2].max(1e-9)));
        table.row(row);
        json.push((q.name.clone(), times));
    }
    println!("{}", table.render());
    // reports[2] is the EVA system (see the loop above).
    write_json_with_metrics("fig10_logical_reuse", &json, &reports[2].metrics);
    Ok(())
}
