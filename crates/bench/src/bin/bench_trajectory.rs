//! The perf-trajectory harness: run the vBENCH-HIGH workload under the
//! full EVA strategy and *append* one `{commit, counters, quantiles}`
//! record to `experiments_out/BENCH_trajectory.json`, so the file
//! accumulates a per-commit history of the reuse path's behaviour instead
//! of a single overwritten snapshot.
//!
//! The counters are the deterministic reuse counters (scheduling-dependent
//! ones masked — see `MetricsSnapshot::deterministic`), which is what the
//! CI perf gate diffs across commits. The quantiles are wall-clock
//! latencies per span kind — machine-dependent, recorded for trend
//! plotting, never gated.
//!
//! Side products of the same run: a Prometheus text snapshot
//! (`BENCH_trajectory.prom`) and a Chrome trace of the workload's last
//! query (`BENCH_trajectory.trace.json`).

use eva_baselines::ReuseStrategy;
use eva_bench::{
    append_json_record, banner, medium_dataset, session_with, write_chrome_trace, write_prometheus,
    TextTable,
};
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

/// Commit id for the record: `EVA_COMMIT` when set (CI passes it), else
/// `git rev-parse --short HEAD`, else `"unknown"`.
fn commit_id() -> String {
    if let Ok(c) = std::env::var("EVA_COMMIT") {
        if !c.trim().is_empty() {
            return c.trim().to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    banner("BENCH trajectory: reuse counters + latency quantiles per commit");
    let ds = medium_dataset();
    let mut db = session_with(ReuseStrategy::Eva, &ds).expect("session");
    let workload = Workload::new(
        "vbench-high",
        vbench_high(
            ds.len(),
            DetectorKind::Physical("fasterrcnn_resnet50"),
            false,
        ),
    );
    let report = run_workload(&mut db, &workload).expect("workload");

    let counters = report.metrics.deterministic();
    let hists = db.session_latency();
    let mut table = TextTable::new(vec!["span kind", "n", "p50", "p95", "p99", "max"]);
    let fmt_ms = |ns: u64| format!("{:.3}ms", ns as f64 / 1e6);
    let mut quantiles = serde_json::Map::new();
    for (kind, h) in hists.non_empty() {
        table.row(vec![
            kind.label().to_string(),
            h.count().to_string(),
            fmt_ms(h.p50()),
            fmt_ms(h.p95()),
            fmt_ms(h.p99()),
            fmt_ms(h.max()),
        ]);
        quantiles.insert(
            kind.label().to_string(),
            serde_json::json!({
                "n": h.count(),
                "p50_ns": h.p50(),
                "p95_ns": h.p95(),
                "p99_ns": h.p99(),
                "max_ns": h.max(),
            }),
        );
    }
    println!("{}", table.render());
    println!(
        "workload {}: {:.1}s simulated, {} UDF calls avoided, {} probe hits",
        report.workload, report.total_sim_secs, counters.udf_calls_avoided, counters.probe_hits
    );

    let commit = commit_id();
    append_json_record(
        "BENCH_trajectory",
        serde_json::json!({
            "commit": commit,
            "workload": report.workload,
            "total_sim_secs": report.total_sim_secs,
            "counters": counters,
            "quantiles": quantiles,
        }),
    );
    write_prometheus("BENCH_trajectory", &db.metrics_snapshot(), &hists);
    write_chrome_trace("BENCH_trajectory", &db.last_trace());
    println!("appended trajectory record for commit {commit}");
}
