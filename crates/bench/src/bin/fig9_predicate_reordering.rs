//! **Figure 9** — Impact of materialization-aware predicate reordering:
//! per-query speedup of the materialization-aware ranking (Eq. 4) over the
//! canonical ranking (Eq. 2), for the multi-UDF-predicate queries across
//! the four permutations of VBENCH-HIGH.
//!
//! Paper shape: 3–6× on most multi-predicate queries; ~1× where both
//! rankings pick the same order.

use eva_bench::{banner, medium_dataset, session_with_config, write_json_with_metrics, TextTable};
use eva_common::MetricsSnapshot;
use eva_core::SessionConfig;
use eva_planner::{RankingKind, ReuseStrategy};
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Figure 9: Canonical vs materialization-aware predicate reordering");
    let ds = medium_dataset();
    let base_queries = vbench_high(
        ds.len(),
        DetectorKind::Physical("fasterrcnn_resnet50"),
        false,
    );

    let mut table = TextTable::new(vec!["query", "canonical (s)", "mat-aware (s)", "speedup"]);
    let mut json = Vec::new();
    let mut eva_metrics = MetricsSnapshot::default();
    for perm_seed in 1..=4u64 {
        let queries = eva_vbench::queries::permute(&base_queries, perm_seed);
        let workload = Workload::new(format!("perm{perm_seed}"), queries.clone());

        let mut reports = Vec::new();
        for ranking in [RankingKind::Canonical, RankingKind::MaterializationAware] {
            let mut cfg = SessionConfig::for_strategy(ReuseStrategy::Eva);
            cfg.planner.ranking = ranking;
            let mut db = session_with_config(cfg, &ds)?;
            reports.push(run_workload(&mut db, &workload)?);
        }
        let (canonical, mat_aware) = (&reports[0], &reports[1]);
        eva_metrics = eva_metrics.plus(&mat_aware.metrics);
        for (i, q) in queries.iter().enumerate() {
            if q.n_udf_preds < 2 {
                continue; // only multi-UDF-predicate queries are affected
            }
            let c = canonical.per_query[i].sim_secs;
            let m = mat_aware.per_query[i].sim_secs;
            let global_id = (perm_seed - 1) * 8 + i as u64 + 1;
            table.row(vec![
                format!("Q{global_id} ({} in perm {perm_seed})", q.name),
                format!("{c:.1}"),
                format!("{m:.1}"),
                format!("{:.2}x", c / m.max(1e-9)),
            ]);
            json.push((global_id, c, m));
        }
    }
    println!("{}", table.render());
    let best = json
        .iter()
        .map(|(_, c, m)| c / m.max(1e-9))
        .fold(f64::MIN, f64::max);
    println!("max reordering speedup: {best:.2}x");
    write_json_with_metrics("fig9_predicate_reordering", &json, &eva_metrics);
    Ok(())
}
