//! **Figure 5** — Workload speedup of No-Reuse / HashStash / FunCache / EVA
//! on VBENCH-LOW and VBENCH-HIGH over medium UA-DETRAC, plus the **Eq. 7**
//! upper bound and the achieved fraction.
//!
//! Paper shape: EVA ≈ 4× on HIGH and best on LOW; FunCache *below 1×* on
//! LOW (hashing overhead); EVA within ~0.9× of the Eq. 7 bound.

use eva_baselines::ReuseStrategy;
use eva_bench::{banner, fmt_x, medium_dataset, session_with, write_json_with_metrics, TextTable};
use eva_common::MetricsSnapshot;
use eva_vbench::{eq7_upper_bound, run_workload, vbench_high, vbench_low, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Figure 5: Workload Speedup (medium UA-DETRAC)");
    let ds = medium_dataset();
    let det = DetectorKind::Physical("fasterrcnn_resnet50");
    let workloads = [
        (
            "vbench-low",
            Workload::new("vbench-low", vbench_low(ds.len(), det.clone(), false)),
        ),
        (
            "vbench-high",
            Workload::new("vbench-high", vbench_high(ds.len(), det, false)),
        ),
    ];

    let mut table = TextTable::new(vec![
        "workload",
        "no-reuse (h)",
        "HashStash",
        "FunCache",
        "EVA",
        "Eq.7 bound",
        "EVA/bound",
    ]);
    let mut json = Vec::new();
    let mut eva_metrics = MetricsSnapshot::default();
    for (wname, workload) in &workloads {
        let mut no = session_with(ReuseStrategy::NoReuse, &ds)?;
        let base = run_workload(&mut no, workload)?;

        let mut cells = vec![
            wname.to_string(),
            format!("{:.2}", base.total_sim_secs / 3600.0),
        ];
        let mut eva_speedup = 0.0;
        let mut bound = 1.0;
        for strategy in [
            ReuseStrategy::HashStash,
            ReuseStrategy::FunCache,
            ReuseStrategy::Eva,
        ] {
            let mut db = session_with(strategy, &ds)?;
            let report = run_workload(&mut db, workload)?;
            assert_eq!(
                report.row_counts(),
                base.row_counts(),
                "results must match no-reuse"
            );
            let speedup = report.speedup_over(&base);
            cells.push(fmt_x(speedup));
            if strategy == ReuseStrategy::Eva {
                eva_speedup = speedup;
                bound = eq7_upper_bound(&db);
                eva_metrics = eva_metrics.plus(&report.metrics);
            }
            json.push((wname.to_string(), format!("{strategy:?}"), speedup));
        }
        cells.push(fmt_x(bound));
        cells.push(format!("{:.2}", eva_speedup / bound));
        table.row(cells);
    }
    println!("{}", table.render());
    write_json_with_metrics("fig5_workload_speedup", &json, &eva_metrics);
    Ok(())
}
