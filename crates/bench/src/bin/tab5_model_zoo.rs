//! **Table 5** — The object-detector model zoo used by the logical-reuse
//! experiment: per-tuple cost and (box)AP-derived accuracy tier.
//!
//! Paper values: YOLO-tiny 9 ms / 17.6 (LOW); FasterRCNN-ResNet50 99 ms /
//! 37.9 (MEDIUM); FasterRCNN-ResNet101 120 ms / 42.0 (HIGH).

use eva_bench::{banner, write_json_with_metrics, TextTable};
use eva_catalog::Catalog;
use eva_udf::registry::install_standard_zoo;
use eva_udf::UdfRegistry;

fn main() -> eva_common::Result<()> {
    banner("Table 5: Object-detector statistics");
    let catalog = Catalog::new();
    let registry = UdfRegistry::new();
    install_standard_zoo(&registry, &catalog)?;

    let mut table = TextTable::new(vec!["model", "C_u (ms)", "accuracy tier"]);
    let mut json = Vec::new();
    for def in catalog.physical_udfs("objectdetector", eva_catalog::AccuracyLevel::Low) {
        table.row(vec![
            def.name.clone(),
            format!("{:.0}", def.cost_ms.unwrap_or(0.0)),
            def.accuracy.to_string(),
        ]);
        json.push((def.name, def.cost_ms, def.accuracy.to_string()));
    }
    println!("{}", table.render());
    // Catalog-only experiment: no engine runs, so the metrics section is
    // all zeros (kept for a uniform artifact schema).
    write_json_with_metrics("tab5_model_zoo", &json, &Default::default());
    Ok(())
}
