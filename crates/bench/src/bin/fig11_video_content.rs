//! **Figure 11** — Impact of video content: workload speedups of all four
//! systems on the Jackson dataset (sparse night street, ~0.1 vehicles per
//! frame).
//!
//! Paper shape: EVA still wins but the gaps shrink relative to UA-DETRAC —
//! sparse video means far fewer CarType/ColorDet invocations to reuse.

use eva_baselines::ReuseStrategy;
use eva_bench::{banner, fmt_x, jackson_dataset, session_with, write_json_with_metrics, TextTable};
use eva_common::MetricsSnapshot;
use eva_vbench::{run_workload, vbench_high, vbench_low, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Figure 11: Workload speedup on Jackson");
    let ds = jackson_dataset();
    println!(
        "jackson: {} frames, {:.2} vehicles/frame",
        ds.len(),
        ds.stats().vehicles_per_frame
    );
    let det = DetectorKind::Physical("fasterrcnn_resnet50");
    let workloads = [
        (
            "vbench-low",
            Workload::new("vbench-low", vbench_low(ds.len(), det.clone(), false)),
        ),
        (
            "vbench-high",
            Workload::new("vbench-high", vbench_high(ds.len(), det, false)),
        ),
    ];

    let mut table = TextTable::new(vec![
        "workload",
        "no-reuse (h)",
        "HashStash",
        "FunCache",
        "EVA",
    ]);
    let mut json = Vec::new();
    let mut eva_metrics = MetricsSnapshot::default();
    for (wname, workload) in &workloads {
        let mut no = session_with(ReuseStrategy::NoReuse, &ds)?;
        let base = run_workload(&mut no, workload)?;
        let mut cells = vec![
            wname.to_string(),
            format!("{:.2}", base.total_sim_secs / 3600.0),
        ];
        for strategy in [
            ReuseStrategy::HashStash,
            ReuseStrategy::FunCache,
            ReuseStrategy::Eva,
        ] {
            let mut db = session_with(strategy, &ds)?;
            let r = run_workload(&mut db, workload)?;
            cells.push(fmt_x(r.speedup_over(&base)));
            if strategy == ReuseStrategy::Eva {
                eva_metrics = eva_metrics.plus(&r.metrics);
            }
            json.push((
                wname.to_string(),
                format!("{strategy:?}"),
                r.speedup_over(&base),
            ));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    write_json_with_metrics("fig11_video_content", &json, &eva_metrics);
    Ok(())
}
