//! **§5.6** — Impact of specialized filters: VBENCH-HIGH on Jackson with
//! reuse enabled, with and without a lightweight 2-conv specialized filter
//! (`specialized_filter(frame) = 'true'`) prepended to every query's WHERE
//! clause. The filter's own results are materialized like any UDF's.
//!
//! Paper values: EVA 1393 s vs EVA+Filter 1075 s (≈1.3× on top of reuse) —
//! filtering and reuse are complementary.

use eva_baselines::ReuseStrategy;
use eva_bench::{banner, fmt_f, jackson_dataset, session_with, write_json_with_metrics, TextTable};
use eva_common::MetricsSnapshot;
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Section 5.6: Reuse + specialized filters (Jackson, VBENCH-HIGH)");
    let ds = jackson_dataset();
    let det = DetectorKind::Physical("fasterrcnn_resnet50");

    let mut table = TextTable::new(vec!["config", "execution time (s)"]);
    let mut times = Vec::new();
    let mut eva_metrics = MetricsSnapshot::default();
    for (label, with_filter) in [("EVA", false), ("EVA+Filter", true)] {
        let workload = Workload::new(label, vbench_high(ds.len(), det.clone(), with_filter));
        let mut db = session_with(ReuseStrategy::Eva, &ds)?;
        let r = run_workload(&mut db, &workload)?;
        table.row(vec![label.to_string(), fmt_f(r.total_sim_secs, 0)]);
        times.push((label.to_string(), r.total_sim_secs));
        eva_metrics = eva_metrics.plus(&r.metrics);
    }
    println!("{}", table.render());
    println!(
        "filter gain on top of reuse: {:.2}x",
        times[0].1 / times[1].1.max(1e-9)
    );
    write_json_with_metrics("sec56_specialized_filters", &times, &eva_metrics);
    Ok(())
}
