//! **Table 3** — UDF statistics under VBENCH-HIGH on medium UA-DETRAC:
//! per-tuple cost `C_u`, distinct invocations `#DI`, total invocations
//! `#TI`, and device, plus the §5.2 storage-footprint numbers.
//!
//! Paper values (for shape): FasterRCNN-RN50 99 ms 13,820 / 72,457 GPU;
//! CarType 6 ms 114,431 / 414,119 GPU; ColorDet 5 ms 111,631 / 219,264 CPU.
//! Storage footprint ≈ 14.3 MiB vs a 16 GiB video (~0.09%).

use eva_baselines::ReuseStrategy;
use eva_bench::{banner, medium_dataset, session_with, write_json_with_metrics, TextTable};
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Table 3: UDF Statistics (VBENCH-HIGH, medium UA-DETRAC)");
    let ds = medium_dataset();
    let workload = Workload::new(
        "vbench-high",
        vbench_high(
            ds.len(),
            DetectorKind::Physical("fasterrcnn_resnet50"),
            false,
        ),
    );
    let mut db = session_with(ReuseStrategy::Eva, &ds)?;
    let report = run_workload(&mut db, &workload)?;

    let mut table = TextTable::new(vec!["UDF", "C_u (ms)", "#DI", "#TI", "GPU/CPU"]);
    let mut json = Vec::new();
    for (name, counters) in db.invocation_stats().all() {
        let def = db.catalog().udf(&name)?;
        if !counters.countable() {
            continue; // AREA-class UDFs are not reported by the paper
        }
        table.row(vec![
            name.clone(),
            format!("{:.0}", def.cost_ms.unwrap_or(0.0)),
            counters.distinct_inputs.to_string(),
            counters.total_invocations.to_string(),
            if def.gpu { "GPU" } else { "CPU" }.to_string(),
        ]);
        json.push((
            name,
            def.cost_ms.unwrap_or(0.0),
            counters.distinct_inputs,
            counters.total_invocations,
        ));
    }
    println!("{}", table.render());

    // §5.2 storage footprint.
    let view_mib = report.view_bytes as f64 / (1024.0 * 1024.0);
    let video_gib = (ds.frame_bytes() * ds.len()) as f64 / (1024.0 * 1024.0 * 1024.0);
    println!(
        "Storage footprint: views = {view_mib:.1} MiB, video = {video_gib:.1} GiB \
         (overhead {:.3}%)",
        view_mib / (video_gib * 1024.0) * 100.0
    );
    write_json_with_metrics("tab3_udf_statistics", &json, &report.metrics);
    Ok(())
}
