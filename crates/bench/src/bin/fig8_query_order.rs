//! **Figure 8** — Impact of query order: (a) execution time of four random
//! permutations of VBENCH-HIGH under HashStash and EVA; (b) how the
//! materialized UDF results converge over the queries of the fourth
//! permutation.
//!
//! Paper shape: EVA is ≥1.8× faster than HashStash on every permutation;
//! view coverage rises monotonically toward 100%.

use eva_baselines::ReuseStrategy;
use eva_bench::{banner, fmt_f, medium_dataset, session_with, write_json_with_metrics, TextTable};
use eva_common::MetricsSnapshot;
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Figure 8a: Execution time across query permutations (hours)");
    let ds = medium_dataset();
    let base_queries = vbench_high(
        ds.len(),
        DetectorKind::Physical("fasterrcnn_resnet50"),
        false,
    );

    let mut table = TextTable::new(vec!["workload", "HashStash (h)", "EVA (h)", "EVA gain"]);
    let mut json = Vec::new();
    let mut eva_metrics = MetricsSnapshot::default();
    let mut last_perm = None;
    for perm_seed in 1..=4u64 {
        let queries = eva_vbench::queries::permute(&base_queries, perm_seed);
        let workload = Workload::new(format!("vbench-high-{perm_seed}"), queries.clone());
        let mut hs = session_with(ReuseStrategy::HashStash, &ds)?;
        let r_hs = run_workload(&mut hs, &workload)?;
        let mut eva = session_with(ReuseStrategy::Eva, &ds)?;
        let r_eva = run_workload(&mut eva, &workload)?;
        table.row(vec![
            format!("perm {perm_seed}"),
            fmt_f(r_hs.total_sim_secs / 3600.0, 2),
            fmt_f(r_eva.total_sim_secs / 3600.0, 2),
            format!("{:.2}x", r_hs.total_sim_secs / r_eva.total_sim_secs),
        ]);
        json.push((perm_seed, r_hs.total_sim_secs, r_eva.total_sim_secs));
        eva_metrics = eva_metrics.plus(&r_eva.metrics);
        last_perm = Some(queries);
    }
    println!("{}", table.render());

    banner("Figure 8b: Materialized-result convergence (4th permutation)");
    let queries = last_perm.expect("four permutations ran");
    let mut db = session_with(ReuseStrategy::Eva, &ds)?;
    db.reset_reuse_state();
    // Final coverage per signature (run once to learn the totals).
    let mut probe = session_with(ReuseStrategy::Eva, &ds)?;
    run_workload(&mut probe, &Workload::new("probe", queries.clone()))?;
    let finals = probe.manager().view_sizes();

    let mut table = TextTable::new(vec!["after query", "signature", "coverage (%)"]);
    let mut json_b = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        db.execute_sql(&q.sql)?.rows()?;
        for (sig, n) in db.manager().view_sizes() {
            let total = finals.get(&sig).copied().unwrap_or(0).max(1);
            let pct = n as f64 / total as f64 * 100.0;
            table.row(vec![
                format!("{} ({})", i + 1, q.name),
                sig.to_string(),
                fmt_f(pct, 1),
            ]);
            json_b.push((i, sig.to_string(), pct));
        }
    }
    println!("{}", table.render());
    write_json_with_metrics("fig8_query_order", &(json, json_b), &eva_metrics);
    Ok(())
}
