//! Overload demonstration for the query-lifecycle governance stack, written
//! to `experiments_out/BENCH_overload.json` and gated in CI.
//!
//! Two rounds:
//!
//! 1. **Contention** — 8 single-threaded sessions (one per thread) share
//!    one [`AdmissionController`] with 2 slots and a 2-deep FIFO queue, and
//!    all arrive together behind a barrier. The controller admits what fits
//!    and sheds the rest with `Cancelled { reason: Shed }`; shed queries are
//!    a reported outcome, never a panic.
//! 2. **Degradation** — a session with a 32-byte memory budget runs a
//!    GROUP BY whose aggregation state cannot fit. The query completes in
//!    the streaming/merging fallback with exact results, and the planner
//!    skips view materialization for it.
//!
//! The summed metrics snapshot must show `queries_admitted`, `queries_shed`
//! and `degraded_queries` all positive — that is the perf-gate contract in
//! `.github/perf-baseline.json`.

use std::sync::{Arc, Barrier, Mutex};

use eva_baselines::ReuseStrategy;
use eva_bench::{banner, write_json_with_metrics, TextTable};
use eva_common::{CancelReason, MetricsSnapshot};
use eva_core::{AdmissionConfig, AdmissionController, EvaDb, SessionConfig};
use eva_video::{generator::generate, VideoConfig, VideoDataset};

const N_SESSIONS: usize = 8;
const N_SLOTS: usize = 2;
const N_WAITERS: usize = 2;

const Q: &str = "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                 WHERE id < 120 AND label = 'car'";
const AGG_Q: &str = "SELECT label, COUNT(*) AS n FROM video CROSS APPLY \
                     fasterrcnn_resnet50(frame) WHERE id < 30 GROUP BY label";

fn tiny(seed: u64) -> VideoDataset {
    generate(VideoConfig {
        name: format!("overload_{seed}"),
        n_frames: 240,
        width: 96,
        height: 54,
        fps: 25.0,
        target_density: 4.0,
        person_fraction: 0.0,
        seed,
    })
}

fn contention_round(gate: &AdmissionController) -> (u64, u64, MetricsSnapshot) {
    let barrier = Arc::new(Barrier::new(N_SESSIONS));
    let tally = Arc::new(Mutex::new((0u64, 0u64, MetricsSnapshot::default())));
    let handles: Vec<_> = (0..N_SESSIONS)
        .map(|i| {
            let gate = gate.clone();
            let barrier = Arc::clone(&barrier);
            let tally = Arc::clone(&tally);
            std::thread::spawn(move || {
                let mut db =
                    EvaDb::new(SessionConfig::for_strategy(ReuseStrategy::Eva)).expect("session");
                db.load_video(tiny(i as u64), "video").expect("load");
                db.set_admission(Some(gate));
                barrier.wait();
                let (completed, shed) = match db.execute_sql(Q) {
                    Ok(r) => {
                        r.rows().expect("select returns rows");
                        (1, 0)
                    }
                    // Shedding is the expected overload outcome — a
                    // structured refusal, not an error to die on.
                    Err(e) if e.cancel_reason() == Some(CancelReason::Shed) => (0, 1),
                    Err(e) => panic!("unexpected failure under overload: {e}"),
                };
                let mut t = tally.lock().unwrap();
                t.0 += completed;
                t.1 += shed;
                t.2 = t.2.plus(&db.metrics_snapshot());
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no session panics under overload");
    }
    let t = tally.lock().unwrap();
    (t.0, t.1, t.2)
}

fn degradation_round() -> MetricsSnapshot {
    let mut cfg = SessionConfig::for_strategy(ReuseStrategy::Eva);
    cfg.governor.budget_bytes = Some(32);
    let mut db = EvaDb::new(cfg).expect("session");
    db.load_video(tiny(99), "video").expect("load");
    let out = db
        .execute_sql(AGG_Q)
        .expect("budget trip degrades, not fails")
        .rows()
        .expect("rows");
    assert!(out.n_rows() > 0, "degraded aggregation still answers");
    assert_eq!(out.metrics.degraded_queries, 1, "{:?}", out.metrics);
    db.metrics_snapshot()
}

fn main() {
    banner("BENCH overload: admission control + graceful degradation");
    let gate = AdmissionController::new(AdmissionConfig {
        max_concurrent: N_SLOTS,
        max_waiters: N_WAITERS,
        queue_deadline_ms: Some(30_000),
    });
    let (completed, shed, contention_metrics) = contention_round(&gate);
    assert_eq!(completed + shed, N_SESSIONS as u64);
    assert!(
        shed >= 1,
        "8 simultaneous arrivals on 2+2 capacity must shed"
    );
    let snap = gate.snapshot();
    assert_eq!(snap.admitted, completed, "{snap:?}");
    assert_eq!(snap.shed, shed, "{snap:?}");

    let degraded_metrics = degradation_round();
    let metrics = contention_metrics.plus(&degraded_metrics);

    let mut table = TextTable::new(vec!["outcome", "count"]);
    table.row(vec!["sessions".into(), N_SESSIONS.to_string()]);
    table.row(vec!["slots".into(), N_SLOTS.to_string()]);
    table.row(vec!["completed".into(), completed.to_string()]);
    table.row(vec!["shed".into(), shed.to_string()]);
    table.row(vec![
        "degraded".into(),
        metrics.degraded_queries.to_string(),
    ]);
    println!("{}", table.render());

    let json = serde_json::json!({
        "sessions": N_SESSIONS,
        "slots": N_SLOTS,
        "max_waiters": N_WAITERS,
        "completed": completed,
        "shed": shed,
    });
    write_json_with_metrics("BENCH_overload", &json, &metrics);
}
