//! **Ablations** (beyond the paper's figures) — how much each design choice
//! contributes on VBENCH-HIGH:
//!
//! * materialization off (reuse machinery without STORE),
//! * canonical instead of materialization-aware ranking,
//! * Algorithm 2 off (Min-Cost logical substitution),
//! * fuzzy bbox matching on (the §6 future-work extension) — including how
//!   many extra hits it buys.

use eva_baselines::ReuseStrategy;
use eva_bench::{
    banner, fmt_x, medium_dataset, session_with_config, write_json_with_metrics, TextTable,
};
use eva_common::MetricsSnapshot;
use eva_core::SessionConfig;
use eva_planner::RankingKind;
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Ablations (VBENCH-HIGH, medium UA-DETRAC)");
    let ds = medium_dataset();
    let physical = Workload::new(
        "high",
        vbench_high(
            ds.len(),
            DetectorKind::Physical("fasterrcnn_resnet50"),
            false,
        ),
    );
    let logical = Workload::new(
        "high-logical",
        vbench_high(ds.len(), DetectorKind::Logical, false),
    );

    let base_cfg = SessionConfig::for_strategy(ReuseStrategy::NoReuse);
    let mut no = session_with_config(base_cfg, &ds)?;
    let base = run_workload(&mut no, &physical)?;
    let mut no_l = session_with_config(base_cfg, &ds)?;
    let base_logical = run_workload(&mut no_l, &logical)?;

    let mut table = TextTable::new(vec!["configuration", "speedup", "hit %"]);
    let mut json = Vec::new();
    // Summed over every ablation configuration that ran.
    let mut metrics = MetricsSnapshot::default();

    let mut run = |_label: &str,
                   cfg: SessionConfig,
                   workload: &Workload,
                   reference: &eva_vbench::WorkloadReport|
     -> eva_common::Result<(f64, f64)> {
        let mut db = session_with_config(cfg, &ds)?;
        let r = run_workload(&mut db, workload)?;
        metrics = metrics.plus(&r.metrics);
        Ok((r.speedup_over(reference), r.hit_percentage))
    };

    let full = SessionConfig::for_strategy(ReuseStrategy::Eva);
    let (s, h) = run("full EVA", full, &physical, &base)?;
    table.row(vec!["full EVA".to_string(), fmt_x(s), format!("{h:.1}")]);
    json.push(("full".to_string(), s, h));

    let mut cfg = full;
    cfg.planner.materialize = false;
    let (s, h) = run("no materialization", cfg, &physical, &base)?;
    table.row(vec![
        "− materialization (STORE off)".to_string(),
        fmt_x(s),
        format!("{h:.1}"),
    ]);
    json.push(("no_store".to_string(), s, h));

    let mut cfg = full;
    cfg.planner.ranking = RankingKind::Canonical;
    let (s, h) = run("canonical ranking", cfg, &physical, &base)?;
    table.row(vec![
        "− mat-aware ranking (Eq. 2)".to_string(),
        fmt_x(s),
        format!("{h:.1}"),
    ]);
    json.push(("canonical_ranking".to_string(), s, h));

    let mut cfg = full;
    cfg.exec.fuzzy_box_iou = Some(0.85);
    let (s, h) = run("fuzzy", cfg, &physical, &base)?;
    table.row(vec![
        "+ fuzzy bbox reuse (IoU ≥ 0.85, §6)".to_string(),
        fmt_x(s),
        format!("{h:.1}"),
    ]);
    json.push(("fuzzy".to_string(), s, h));

    // Logical workload: Algorithm 2 on vs off.
    let (s, h) = run("alg2", full, &logical, &base_logical)?;
    table.row(vec![
        "logical: with Algorithm 2".to_string(),
        fmt_x(s),
        format!("{h:.1}"),
    ]);
    json.push(("alg2_on".to_string(), s, h));
    let mut cfg = full;
    cfg.planner.logical_set_cover = false;
    let (s, h) = run("mincost", cfg, &logical, &base_logical)?;
    table.row(vec![
        "logical: − Algorithm 2 (Min-Cost)".to_string(),
        fmt_x(s),
        format!("{h:.1}"),
    ]);
    json.push(("alg2_off".to_string(), s, h));

    println!("{}", table.render());
    write_json_with_metrics("ablations", &json, &metrics);
    Ok(())
}
