//! **Figure 7** — Effectiveness of EVA's symbolic predicate reduction vs
//! the `simplify`-style baseline: the number of atomic formulae in the
//! intersection / difference / union predicates computed for each candidate
//! UDF while executing VBENCH-HIGH.
//!
//! Paper shape: EVA's counts stay flat and small; `simplify`'s counts grow
//! query over query — dramatically for the polyadic predicates of
//! CarType/ColorDet, mildly for the detector's monadic `id` predicates.

use eva_baselines::ReuseStrategy;
use eva_bench::{banner, medium_dataset, session_with, write_json_with_metrics, TextTable};
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Figure 7: Symbolic predicate reduction vs `simplify`");
    let ds = medium_dataset();
    let workload = Workload::new(
        "vbench-high",
        vbench_high(
            ds.len(),
            DetectorKind::Physical("fasterrcnn_resnet50"),
            false,
        ),
    );
    let mut db = session_with(ReuseStrategy::Eva, &ds)?;
    run_workload(&mut db, &workload)?;

    let history = db.manager().atom_history();
    let mut json = Vec::new();
    for (sig, points) in &history {
        if points.is_empty() {
            continue;
        }
        println!("\nUDF {sig} — atomic formulae per analysis (inter/diff/union):");
        let mut table = TextTable::new(vec![
            "analysis#",
            "EVA inter",
            "EVA diff",
            "EVA union",
            "simplify inter",
            "simplify diff",
            "simplify union",
        ]);
        for (i, p) in points.iter().enumerate() {
            table.row(vec![
                (i + 1).to_string(),
                p.eva_inter.to_string(),
                p.eva_diff.to_string(),
                p.eva_union.to_string(),
                p.naive_inter.to_string(),
                p.naive_diff.to_string(),
                p.naive_union.to_string(),
            ]);
            json.push((
                sig.to_string(),
                i,
                [p.eva_inter, p.eva_diff, p.eva_union],
                [p.naive_inter, p.naive_diff, p.naive_union],
            ));
        }
        println!("{}", table.render());
        let last = points.last().expect("nonempty");
        let eva_max = last.eva_inter.max(last.eva_diff).max(last.eva_union);
        let naive_max = last.naive_inter.max(last.naive_diff).max(last.naive_union);
        println!("  final: EVA max {eva_max} atoms vs simplify max {naive_max} atoms");
    }
    write_json_with_metrics("fig7_symbolic_reduction", &json, &db.metrics_snapshot());
    Ok(())
}
