//! Wall-clock snapshot of the zero-copy reuse hot path, written to
//! `experiments_out/BENCH_reuse_path.json` by the experiment suite.
//!
//! Unlike the paper-figure binaries (which report *simulated* time), this
//! one measures real throughput of the concurrent view store and FunCache:
//! probe and append ops/sec single-threaded and across threads hammering
//! one shared `StorageEngine`. It is the repeatable record that the sharded
//! registry actually scales — compare snapshots across commits.

use std::sync::Arc;
use std::time::Instant;

use eva_bench::{banner, write_json_with_metrics, TextTable};
use eva_common::{DataType, Field, FrameId, MetricsSnapshot, Row, Schema, SimClock, Value};
use eva_exec::FunCacheTable;
use eva_storage::{StorageEngine, ViewKey, ViewKeyKind};

const N_KEYS: u64 = 10_000;
const BATCH: u64 = 1024;
const ROUNDS: u64 = 200;
const N_THREADS: usize = 4;

fn out_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![Field::new("label", DataType::Str)]).unwrap())
}

fn seeded_engine() -> (StorageEngine, eva_common::ViewId) {
    let eng = StorageEngine::new();
    let clock = SimClock::new();
    let view = eng.create_view("bench", ViewKeyKind::Frame, out_schema());
    let entries: Vec<(ViewKey, Arc<[Row]>)> = (0..N_KEYS)
        .map(|i| {
            (
                ViewKey::frame(FrameId(i)),
                vec![vec![Value::from("car")]].into(),
            )
        })
        .collect();
    eng.view_append(view, entries, &clock).unwrap();
    (eng, view)
}

fn keys(offset: u64) -> Vec<ViewKey> {
    (0..BATCH)
        .map(|i| ViewKey::frame(FrameId((offset + i * 7) % N_KEYS)))
        .collect()
}

/// Keys probed per second, single caller.
fn probe_single() -> (f64, MetricsSnapshot) {
    let (eng, view) = seeded_engine();
    let clock = SimClock::new();
    let ks = keys(0);
    let start = Instant::now();
    for _ in 0..ROUNDS {
        let out = eng.view_probe(view, &ks, &clock).unwrap();
        assert_eq!(out.len(), ks.len());
    }
    let ops = (ROUNDS * BATCH) as f64 / start.elapsed().as_secs_f64();
    (ops, eng.metrics().snapshot())
}

/// Keys probed per second, `N_THREADS` callers on one shared engine.
fn probe_multi() -> (f64, MetricsSnapshot) {
    let (eng, view) = seeded_engine();
    let start = Instant::now();
    let handles: Vec<_> = (0..N_THREADS)
        .map(|t| {
            let eng = eng.clone();
            std::thread::spawn(move || {
                let clock = SimClock::new();
                let ks = keys(t as u64 * 131);
                for _ in 0..ROUNDS {
                    eng.view_probe(view, &ks, &clock).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let ops = (N_THREADS as u64 * ROUNDS * BATCH) as f64 / start.elapsed().as_secs_f64();
    (ops, eng.metrics().snapshot())
}

/// Rows appended per second, single caller.
fn append_single() -> (f64, MetricsSnapshot) {
    let (eng, view) = seeded_engine();
    let clock = SimClock::new();
    let start = Instant::now();
    let mut next = N_KEYS;
    for _ in 0..ROUNDS {
        let entries: Vec<(ViewKey, Arc<[Row]>)> = (0..BATCH)
            .map(|i| {
                (
                    ViewKey::frame(FrameId(next + i)),
                    vec![vec![Value::from("car")]].into(),
                )
            })
            .collect();
        next += BATCH;
        eng.view_append(view, entries, &clock).unwrap();
    }
    let ops = (ROUNDS * BATCH) as f64 / start.elapsed().as_secs_f64();
    (ops, eng.metrics().snapshot())
}

/// Rows appended per second, each thread on its own view (no contention).
fn append_multi() -> (f64, MetricsSnapshot) {
    let eng = StorageEngine::new();
    let views: Vec<_> = (0..N_THREADS)
        .map(|t| eng.create_view(format!("w{t}"), ViewKeyKind::Frame, out_schema()))
        .collect();
    let start = Instant::now();
    let handles: Vec<_> = views
        .into_iter()
        .map(|view| {
            let eng = eng.clone();
            std::thread::spawn(move || {
                let clock = SimClock::new();
                let mut next = 0u64;
                for _ in 0..ROUNDS {
                    let entries: Vec<(ViewKey, Arc<[Row]>)> = (0..BATCH)
                        .map(|i| {
                            (
                                ViewKey::frame(FrameId(next + i)),
                                vec![vec![Value::from("car")]].into(),
                            )
                        })
                        .collect();
                    next += BATCH;
                    eng.view_append(view, entries, &clock).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let ops = (N_THREADS as u64 * ROUNDS * BATCH) as f64 / start.elapsed().as_secs_f64();
    (ops, eng.metrics().snapshot())
}

/// FunCache hits per second (hash + intern + lookup), single caller.
/// The raw table records no engine metrics (the apply operator does that in
/// real queries), so its snapshot is empty.
fn funcache_hits() -> (f64, MetricsSnapshot) {
    let cache = FunCacheTable::new();
    let payload: Vec<u8> = (0..64usize).map(|i| i as u8).collect();
    for i in 0..N_KEYS {
        let mut bytes = payload.clone();
        bytes.extend_from_slice(&i.to_le_bytes());
        let k = cache.key("det", &bytes);
        cache.insert(k, vec![vec![Value::from("car")]].into());
    }
    let start = Instant::now();
    let mut hits = 0u64;
    for _ in 0..ROUNDS {
        for i in 0..BATCH {
            let mut bytes = payload.clone();
            bytes.extend_from_slice(&((i * 7) % N_KEYS).to_le_bytes());
            let k = cache.key("det", &bytes);
            if cache.get(&k).is_some() {
                hits += 1;
            }
        }
    }
    assert_eq!(hits, ROUNDS * BATCH);
    let ops = (ROUNDS * BATCH) as f64 / start.elapsed().as_secs_f64();
    (ops, MetricsSnapshot::default())
}

fn main() {
    banner("BENCH reuse path: concurrent view store throughput");
    let results = [
        ("probe_single_thread", probe_single()),
        ("probe_4_threads", probe_multi()),
        ("append_single_thread", append_single()),
        ("append_4_threads_private", append_multi()),
        ("funcache_hit_single_thread", funcache_hits()),
    ];

    let mut table = TextTable::new(vec!["case", "ops/sec"]);
    for (name, (ops, _)) in &results {
        table.row(vec![name.to_string(), format!("{ops:.0}")]);
    }
    println!("{}", table.render());

    let mut metrics = MetricsSnapshot::default();
    let json: Vec<serde_json::Value> = results
        .iter()
        .map(|(name, (ops, m))| {
            metrics = metrics.plus(m);
            serde_json::json!({
                "case": name,
                "ops_per_sec": ops,
                "batch": BATCH,
                "threads": if name.contains("4_threads") { N_THREADS } else { 1 },
            })
        })
        .collect();
    write_json_with_metrics("BENCH_reuse_path", &json, &metrics);
}
