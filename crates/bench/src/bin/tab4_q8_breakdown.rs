//! **Table 4** — Fine-grained time breakdown of Q8 (VBENCH-HIGH) under
//! No-Reuse and EVA: UDF evaluation, reading video, reading views,
//! materializing, and other.
//!
//! Paper values (for shape): No-Reuse = 997 s UDF + 22 s read-video;
//! EVA = 5 s UDF + 19 s read-video + 10 s read-view + 2 s materialize —
//! i.e. EVA replaces ~1000 s of inference with ~15 s of view IO.

use eva_baselines::ReuseStrategy;
use eva_bench::{banner, fmt_f, medium_dataset, session_with, write_json_with_metrics, TextTable};
use eva_common::CostCategory;
use eva_common::MetricsSnapshot;
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Table 4: Time breakdown of Q8 (VBENCH-HIGH)");
    let ds = medium_dataset();
    let workload = Workload::new(
        "vbench-high",
        vbench_high(
            ds.len(),
            DetectorKind::Physical("fasterrcnn_resnet50"),
            false,
        ),
    );

    let mut table = TextTable::new(vec![
        "Latency (s)",
        "UDF",
        "Read Video",
        "Read View",
        "Mat",
        "Other",
    ]);
    let mut json = Vec::new();
    let mut eva_metrics = MetricsSnapshot::default();
    for (label, strategy) in [
        ("No-Reuse", ReuseStrategy::NoReuse),
        ("EVA", ReuseStrategy::Eva),
    ] {
        let mut db = session_with(strategy, &ds)?;
        let report = run_workload(&mut db, &workload)?;
        let q8 = report.per_query.last().expect("workload has queries");
        let b = &q8.breakdown;
        let other =
            b.get(CostCategory::Optimize) + b.get(CostCategory::Apply) + b.get(CostCategory::Other);
        table.row(vec![
            label.to_string(),
            fmt_f(b.get(CostCategory::Udf) / 1000.0, 1),
            fmt_f(b.get(CostCategory::ReadVideo) / 1000.0, 1),
            fmt_f(b.get(CostCategory::ReadView) / 1000.0, 1),
            fmt_f(b.get(CostCategory::Materialize) / 1000.0, 1),
            fmt_f(other / 1000.0, 1),
        ]);
        json.push((label.to_string(), *b));
        if strategy == ReuseStrategy::Eva {
            eva_metrics = report.metrics;
        }
    }
    println!("{}", table.render());
    write_json_with_metrics("tab4_q8_breakdown", &json, &eva_metrics);
    Ok(())
}
