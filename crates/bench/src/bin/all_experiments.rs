//! Run the full experiment suite (every table and figure) in sequence.
//!
//! Equivalent to invoking each binary individually; results land both on
//! stdout and in `experiments_out/*.json`. After the runs, every expected
//! JSON artifact is validated — present, parsable, and non-empty — so a
//! binary that silently stops writing its output (the way
//! `BENCH_reuse_path.json` once regressed to nothing) fails the suite
//! instead of slipping through.

use std::process::Command;

/// `(binary, expected JSON artifact)` for every experiment in the suite.
const EXPERIMENTS: [(&str, &str); 17] = [
    ("tab2_hit_percentage", "tab2_hit_percentage.json"),
    ("fig5_workload_speedup", "fig5_workload_speedup.json"),
    ("tab3_udf_statistics", "tab3_udf_statistics.json"),
    ("fig6_time_breakdown", "fig6_time_breakdown.json"),
    ("tab4_q8_breakdown", "tab4_q8_breakdown.json"),
    ("fig7_symbolic_reduction", "fig7_symbolic_reduction.json"),
    ("fig8_query_order", "fig8_query_order.json"),
    (
        "fig9_predicate_reordering",
        "fig9_predicate_reordering.json",
    ),
    ("fig10_logical_reuse", "fig10_logical_reuse.json"),
    ("tab5_model_zoo", "tab5_model_zoo.json"),
    ("fig11_video_content", "fig11_video_content.json"),
    ("fig12_video_length", "fig12_video_length.json"),
    (
        "sec56_specialized_filters",
        "sec56_specialized_filters.json",
    ),
    ("ablations", "ablations.json"),
    ("bench_reuse_path", "BENCH_reuse_path.json"),
    ("bench_trajectory", "BENCH_trajectory.json"),
    ("bench_overload", "BENCH_overload.json"),
];

/// Validate one artifact: it must exist, parse as JSON, and carry data (an
/// empty object/array means the experiment wrote a husk). Returns an error
/// description, or `None` when the artifact is healthy.
fn check_artifact(path: &std::path::Path) -> Option<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return Some(format!("missing ({e})")),
    };
    let value: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => return Some(format!("unparsable ({e})")),
    };
    let empty = match &value {
        serde_json::Value::Array(a) => a.is_empty(),
        serde_json::Value::Object(o) => o.is_empty(),
        serde_json::Value::Null => true,
        _ => false,
    };
    if empty {
        return Some("empty result".to_string());
    }
    // The reuse-path bench must carry a populated metrics section — the
    // counters the CI perf gate diffs.
    if path
        .file_name()
        .is_some_and(|n| n == "BENCH_reuse_path.json")
    {
        let rows_read = value
            .get("metrics")
            .and_then(|m| m.get("view_rows_read"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        if rows_read == 0 {
            return Some("metrics.view_rows_read is 0 — reuse path measured nothing".to_string());
        }
    }
    None
}

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for (name, _) in EXPERIMENTS {
        let path = dir.join(name);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when running via `cargo run` in-tree.
            Command::new("cargo")
                .args(["run", "--release", "-p", "eva-bench", "--bin", name])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) if s.code() == Some(eva_bench::EXIT_CANCELLED) => {
                eprintln!(
                    "experiment {name} was cancelled by lifecycle governance \
                     (exit {}) — raise the deadline/budget or free capacity",
                    eva_bench::EXIT_CANCELLED
                );
                failed.push(name);
            }
            other => {
                eprintln!("experiment {name} failed: {other:?}");
                failed.push(name);
            }
        }
    }
    let out = eva_bench::out_dir();
    for (name, artifact) in EXPERIMENTS {
        if failed.contains(&name) {
            continue; // already reported
        }
        if let Some(problem) = check_artifact(&out.join(artifact)) {
            eprintln!("artifact {artifact}: {problem}");
            failed.push(name);
        }
    }
    if failed.is_empty() {
        println!("\nAll experiments completed and artifacts validated. JSON in experiments_out/.");
    } else {
        eprintln!("\nFailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
