//! Run the full experiment suite (every table and figure) in sequence.
//!
//! Equivalent to invoking each binary individually; results land both on
//! stdout and in `experiments_out/*.json`.

use std::process::Command;

fn main() {
    let experiments = [
        "tab2_hit_percentage",
        "fig5_workload_speedup",
        "tab3_udf_statistics",
        "fig6_time_breakdown",
        "tab4_q8_breakdown",
        "fig7_symbolic_reduction",
        "fig8_query_order",
        "fig9_predicate_reordering",
        "fig10_logical_reuse",
        "tab5_model_zoo",
        "fig11_video_content",
        "fig12_video_length",
        "sec56_specialized_filters",
        "ablations",
        "bench_reuse_path",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for name in experiments {
        let path = dir.join(name);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when running via `cargo run` in-tree.
            Command::new("cargo")
                .args(["run", "--release", "-p", "eva-bench", "--bin", name])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("experiment {name} failed: {other:?}");
                failed.push(name);
            }
        }
    }
    if failed.is_empty() {
        println!("\nAll experiments completed. JSON in experiments_out/.");
    } else {
        eprintln!("\nFailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
