//! **Figure 12** — Impact of video length: EVA's VBENCH-HIGH speedup on
//! SHORT / MEDIUM / LONG UA-DETRAC (query id-ranges scale with the video),
//! alongside the average vehicles per frame.
//!
//! Paper shape: speedup does not drop with longer video — it rises slightly
//! with LONG's higher vehicle density.

use eva_baselines::ReuseStrategy;
use eva_bench::{
    banner, fmt_f, fmt_x, session_with, sized_dataset, write_json_with_metrics, TextTable,
};
use eva_common::MetricsSnapshot;
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};
use eva_video::UaDetracSize;

fn main() -> eva_common::Result<()> {
    banner("Figure 12: Impact of video length (VBENCH-HIGH)");
    let mut table = TextTable::new(vec![
        "dataset",
        "frames",
        "vehicles/frame",
        "no-reuse (h)",
        "EVA speedup",
    ]);
    let mut json = Vec::new();
    let mut eva_metrics = MetricsSnapshot::default();
    for size in [
        UaDetracSize::Short,
        UaDetracSize::Medium,
        UaDetracSize::Long,
    ] {
        let ds = sized_dataset(size);
        let workload = Workload::new(
            size.name(),
            vbench_high(
                ds.len(),
                DetectorKind::Physical("fasterrcnn_resnet50"),
                false,
            ),
        );
        let mut no = session_with(ReuseStrategy::NoReuse, &ds)?;
        let base = run_workload(&mut no, &workload)?;
        let mut eva = session_with(ReuseStrategy::Eva, &ds)?;
        let r = run_workload(&mut eva, &workload)?;
        eva_metrics = eva_metrics.plus(&r.metrics);
        let stats = ds.stats();
        table.row(vec![
            size.name().to_string(),
            ds.len().to_string(),
            fmt_f(stats.vehicles_per_frame, 2),
            fmt_f(base.total_sim_secs / 3600.0, 2),
            fmt_x(r.speedup_over(&base)),
        ]);
        json.push((
            size.name().to_string(),
            stats.vehicles_per_frame,
            r.speedup_over(&base),
        ));
    }
    println!("{}", table.render());
    write_json_with_metrics("fig12_video_length", &json, &eva_metrics);
    Ok(())
}
