//! **Table 2** — Hit percentage of HashStash / FunCache / EVA on the
//! VBENCH-LOW and VBENCH-HIGH workloads (medium UA-DETRAC).
//!
//! Paper values: LOW 2.02 / 24.68 / 24.68; HIGH 5.62 / 66.01 / 66.01.
//! Expected shape: EVA ≫ HashStash on both workloads; FunCache close to EVA.

use eva_baselines::ReuseStrategy;
use eva_bench::{banner, medium_dataset, session_with, write_json_with_metrics, TextTable};
use eva_common::MetricsSnapshot;
use eva_vbench::{run_workload, vbench_high, vbench_low, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Table 2: Hit Percentage");
    let ds = medium_dataset();
    let det = DetectorKind::Physical("fasterrcnn_resnet50");

    let workloads = [
        (
            "vbench-low",
            Workload::new("vbench-low", vbench_low(ds.len(), det.clone(), false)),
        ),
        (
            "vbench-high",
            Workload::new("vbench-high", vbench_high(ds.len(), det, false)),
        ),
    ];
    let systems = [
        ("HashStash", ReuseStrategy::HashStash),
        ("FunCache", ReuseStrategy::FunCache),
        ("EVA", ReuseStrategy::Eva),
    ];

    let mut table = TextTable::new(vec!["Hit Percentage (%)", "HashStash", "FunCache", "EVA"]);
    let mut json = Vec::new();
    let mut eva_metrics = MetricsSnapshot::default();
    for (wname, workload) in &workloads {
        let mut row = vec![wname.to_string()];
        for (sname, strategy) in systems {
            let mut db = session_with(strategy, &ds)?;
            let report = run_workload(&mut db, workload)?;
            row.push(format!("{:.2}", report.hit_percentage));
            if strategy == ReuseStrategy::Eva {
                eva_metrics = eva_metrics.plus(&report.metrics);
            }
            json.push((wname.to_string(), sname.to_string(), report.hit_percentage));
        }
        table.row(row);
    }
    println!("{}", table.render());
    write_json_with_metrics("tab2_hit_percentage", &json, &eva_metrics);
    Ok(())
}
