//! **Figure 6** — (a) per-query time breakdown of VBENCH-HIGH under EVA
//! (log-scale in the paper; we print seconds) and (b) the distribution of
//! the overhead sources: materialization, optimization, the apply operator,
//! and reads.
//!
//! Paper shape: the first few queries pay full UDF cost, later queries are
//! much faster; reuse overheads are far below UDF savings; reading
//! dominates among the overheads.

use eva_baselines::ReuseStrategy;
use eva_bench::{banner, fmt_f, medium_dataset, session_with, write_json_with_metrics, TextTable};
use eva_common::CostCategory;
use eva_vbench::{run_workload, vbench_high, DetectorKind, Workload};

fn main() -> eva_common::Result<()> {
    banner("Figure 6a: Per-query time breakdown (VBENCH-HIGH under EVA)");
    let ds = medium_dataset();
    let workload = Workload::new(
        "vbench-high",
        vbench_high(
            ds.len(),
            DetectorKind::Physical("fasterrcnn_resnet50"),
            false,
        ),
    );
    let mut db = session_with(ReuseStrategy::Eva, &ds)?;
    let report = run_workload(&mut db, &workload)?;

    let mut table = TextTable::new(vec![
        "query",
        "total (s)",
        "udf (s)",
        "reuse = read_view+mat+apply (s)",
        "read_video (s)",
        "optimize (s)",
    ]);
    for q in &report.per_query {
        let b = &q.breakdown;
        let reuse = b.get(CostCategory::ReadView)
            + b.get(CostCategory::Materialize)
            + b.get(CostCategory::Apply);
        table.row(vec![
            q.name.clone(),
            fmt_f(q.sim_secs, 1),
            fmt_f(b.get(CostCategory::Udf) / 1000.0, 1),
            fmt_f(reuse / 1000.0, 1),
            fmt_f(b.get(CostCategory::ReadVideo) / 1000.0, 1),
            fmt_f(b.get(CostCategory::Optimize) / 1000.0, 3),
        ]);
    }
    println!("{}", table.render());

    banner("Figure 6b: Overhead sources across queries (min / median / max, s)");
    let mut table = TextTable::new(vec!["source", "min", "median", "max"]);
    let sources = [
        ("materialization", CostCategory::Materialize),
        ("optimization", CostCategory::Optimize),
        ("apply", CostCategory::Apply),
        ("read (video+view)", CostCategory::ReadVideo),
    ];
    for (label, cat) in sources {
        let mut vals: Vec<f64> = report
            .per_query
            .iter()
            .map(|q| {
                let mut v = q.breakdown.get(cat) / 1000.0;
                if cat == CostCategory::ReadVideo {
                    v += q.breakdown.get(CostCategory::ReadView) / 1000.0;
                }
                v
            })
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        table.row(vec![
            label.to_string(),
            fmt_f(vals[0], 2),
            fmt_f(vals[vals.len() / 2], 2),
            fmt_f(*vals.last().unwrap(), 2),
        ]);
    }
    println!("{}", table.render());
    write_json_with_metrics("fig6_time_breakdown", &report, &report.metrics);
    Ok(())
}
