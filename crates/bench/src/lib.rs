//! # eva-bench
//!
//! The experiment harness reproducing **every table and figure** of the
//! paper's evaluation (§5). Each experiment is a binary under `src/bin/`
//! printing the same rows/series the paper reports; `all_experiments` runs
//! the full suite and writes machine-readable JSON next to the text output.
//!
//! | binary | paper artifact |
//! |---|---|
//! | `tab2_hit_percentage` | Table 2 |
//! | `fig5_workload_speedup` | Fig. 5 (+ Eq. 7 upper bounds) |
//! | `tab3_udf_statistics` | Table 3 |
//! | `fig6_time_breakdown` | Fig. 6a/6b |
//! | `tab4_q8_breakdown` | Table 4 |
//! | `fig7_symbolic_reduction` | Fig. 7 |
//! | `fig8_query_order` | Fig. 8a/8b |
//! | `fig9_predicate_reordering` | Fig. 9 |
//! | `fig10_logical_reuse` | Fig. 10 |
//! | `tab5_model_zoo` | Table 5 |
//! | `fig11_video_content` | Fig. 11 |
//! | `fig12_video_length` | Fig. 12 |
//! | `sec56_specialized_filters` | §5.6 |
//!
//! Reported "time" is simulated time from the virtual clock (DESIGN.md §1),
//! so results are deterministic for a fixed dataset seed.

use std::path::PathBuf;

use eva_baselines::ReuseStrategy;
use eva_common::Result;
use eva_core::{EvaDb, SessionConfig};
use eva_video::{jackson, ua_detrac, UaDetracSize, VideoDataset};

pub use eva_common::table_fmt::{fmt_f, fmt_x, TextTable};

/// The dataset seed every experiment uses (determinism across binaries).
pub const SEED: u64 = 7;

/// The medium UA-DETRAC dataset (the evaluation default).
pub fn medium_dataset() -> VideoDataset {
    ua_detrac(UaDetracSize::Medium, SEED)
}

/// The Jackson dataset (§5.5/§5.6).
pub fn jackson_dataset() -> VideoDataset {
    jackson(SEED)
}

/// A UA-DETRAC dataset by size.
pub fn sized_dataset(size: UaDetracSize) -> VideoDataset {
    ua_detrac(size, SEED)
}

/// A session of the given strategy with `dataset` loaded as table `video`.
pub fn session_with(strategy: ReuseStrategy, dataset: &VideoDataset) -> Result<EvaDb> {
    let mut db = EvaDb::new(SessionConfig::for_strategy(strategy))?;
    db.load_video(dataset.clone(), "video")?;
    Ok(db)
}

/// A session from an explicit config with `dataset` loaded.
pub fn session_with_config(config: SessionConfig, dataset: &VideoDataset) -> Result<EvaDb> {
    let mut db = EvaDb::new(config)?;
    db.load_video(dataset.clone(), "video")?;
    Ok(db)
}

/// Directory where experiments drop their JSON results.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(
        std::env::var("EVA_BENCH_OUT").unwrap_or_else(|_| "experiments_out".to_string()),
    );
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Write a serializable result to `experiments_out/<name>.json`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = out_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Write a result to `experiments_out/<name>.json` wrapped as
/// `{ "result": …, "metrics": … }`, attaching the runtime-metrics snapshot
/// of the session (or sessions, summed) that produced it. Every experiment
/// binary goes through this so each JSON artifact records probe hit rates,
/// UDF calls avoided, and zero-copy traffic next to its headline numbers.
pub fn write_json_with_metrics<T: serde::Serialize>(
    name: &str,
    value: &T,
    metrics: &eva_common::MetricsSnapshot,
) {
    #[derive(serde::Serialize)]
    struct WithMetrics<'a, T> {
        result: &'a T,
        metrics: &'a eva_common::MetricsSnapshot,
    }
    write_json(
        name,
        &WithMetrics {
            result: value,
            metrics,
        },
    );
}

/// Write a Prometheus text-format snapshot (counters + span-latency
/// histograms) to `experiments_out/<name>.prom` — a scrape-ready export of
/// one experiment's runtime behaviour.
pub fn write_prometheus(
    name: &str,
    metrics: &eva_common::MetricsSnapshot,
    hists: &eva_common::SpanHists,
) {
    let path = out_dir().join(format!("{name}.prom"));
    if let Err(e) = std::fs::write(&path, eva_common::prometheus_text(metrics, hists)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Write a query trace to `experiments_out/<name>.trace.json` in the Chrome
/// trace-event format (open via `chrome://tracing` or ui.perfetto.dev).
pub fn write_chrome_trace(name: &str, trace: &eva_common::QueryTrace) {
    let path = out_dir().join(format!("{name}.trace.json"));
    if let Err(e) = std::fs::write(&path, trace.to_chrome_json()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Append one record to `experiments_out/<name>.json`, treating the file as
/// a growing JSON array (created fresh when missing or unparsable). This is
/// how `bench_trajectory` accumulates one record per commit.
pub fn append_json_record(name: &str, record: serde_json::Value) {
    let path = out_dir().join(format!("{name}.json"));
    let mut records: Vec<serde_json::Value> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    records.push(record);
    match serde_json::to_string_pretty(&records) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Print an experiment banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Process exit code for a run ended by lifecycle governance (deadline,
/// budget, shed, user cancel) — `EX_TEMPFAIL`, distinct from the panic/`1`
/// of a real failure so wrappers can tell "re-run later / raise the limit"
/// from "the benchmark is broken".
pub const EXIT_CANCELLED: i32 = 75;

/// Unwrap an experiment step: governance cancellations exit with
/// [`EXIT_CANCELLED`] and the structured reason; real errors panic.
pub fn expect_uncancelled<T>(result: Result<T>, what: &str) -> T {
    match result {
        Ok(v) => v,
        Err(e) => match e.cancel_reason() {
            Some(reason) => {
                eprintln!("{what}: cancelled ({reason}): {e}");
                std::process::exit(EXIT_CANCELLED);
            }
            None => panic!("{what}: {e}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_deterministic() {
        assert_eq!(medium_dataset().frames()[0], medium_dataset().frames()[0]);
        assert_eq!(medium_dataset().len(), 14_000);
        assert_eq!(jackson_dataset().len(), 14_000);
    }

    #[test]
    fn session_builders_work() {
        let ds = eva_video::generator::generate(eva_video::VideoConfig {
            name: "t".into(),
            n_frames: 10,
            width: 10,
            height: 10,
            fps: 25.0,
            target_density: 1.0,
            person_fraction: 0.0,
            seed: 1,
        });
        let db = session_with(ReuseStrategy::Eva, &ds).unwrap();
        assert!(db.catalog().table("video").is_ok());
    }
}
