//! Criterion micro-benchmarks for the symbolic engine: interval algebra,
//! Algorithm 1 reduction, the derived predicates, and the naive baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use eva_expr::Expr;
use eva_symbolic::naive::ops as naive_ops;
use eva_symbolic::{diff, inter, to_dnf, union, Dnf, IntervalSet, NaiveDnf};

fn workload_predicate(i: u64) -> Expr {
    // Predicates shaped like the vBENCH queries.
    Expr::col("id")
        .ge((i * 1000) as i64)
        .and(Expr::col("id").lt((i * 1000 + 7000) as i64))
        .and(Expr::col("label").eq_val("car"))
        .and(Expr::col("area(bbox,frame)").gt(0.2))
}

fn bench_interval_ops(c: &mut Criterion) {
    let a = IntervalSet::interval(0.0, false, 100.0, true)
        .union(&IntervalSet::interval(200.0, false, 300.0, true));
    let b = IntervalSet::interval(50.0, false, 250.0, true);
    c.bench_function("interval_union", |bch| {
        bch.iter(|| black_box(&a).union(black_box(&b)))
    });
    c.bench_function("interval_intersect", |bch| {
        bch.iter(|| black_box(&a).intersect(black_box(&b)))
    });
    c.bench_function("interval_complement", |bch| {
        bch.iter(|| black_box(&a).complement())
    });
    c.bench_function("interval_subset", |bch| {
        bch.iter(|| black_box(&b).is_subset(black_box(&a)))
    });
}

fn bench_reduce(c: &mut Criterion) {
    // Union of 8 query predicates — what the aggregated predicate p_u sees.
    let dnfs: Vec<Dnf> = (0..8)
        .map(|i| to_dnf(&workload_predicate(i)).unwrap())
        .collect();
    c.bench_function("algorithm1_reduce_8_queries", |bch| {
        bch.iter(|| {
            let mut acc = Dnf::false_();
            for d in &dnfs {
                acc = union(&acc, d);
            }
            black_box(acc.atom_count())
        })
    });
}

fn bench_derived_predicates(c: &mut Criterion) {
    let p_u = {
        let mut acc = Dnf::false_();
        for i in 0..4 {
            acc = union(&acc, &to_dnf(&workload_predicate(i)).unwrap());
        }
        acc
    };
    let q = to_dnf(&workload_predicate(3)).unwrap();
    c.bench_function("inter_pu_q", |bch| {
        bch.iter(|| black_box(inter(black_box(&p_u), black_box(&q))))
    });
    c.bench_function("diff_pu_q", |bch| {
        bch.iter(|| black_box(diff(black_box(&p_u), black_box(&q))))
    });
}

fn bench_naive_baseline(c: &mut Criterion) {
    let exprs: Vec<Expr> = (0..4).map(workload_predicate).collect();
    c.bench_function("naive_simplify_union_4_queries", |bch| {
        bch.iter(|| {
            let mut acc = NaiveDnf::false_();
            for e in &exprs {
                acc = naive_ops::union(&acc, &NaiveDnf::from_expr(e));
            }
            black_box(acc.atom_count())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_interval_ops, bench_reduce, bench_derived_predicates, bench_naive_baseline
}
criterion_main!(benches);
