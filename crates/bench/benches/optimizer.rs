//! Criterion micro-benchmarks for the planner: parse and bind + optimize
//! latency of a realistic vBENCH query, cold (no views) and warm (after a
//! workload has materialized views).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use eva_baselines::ReuseStrategy;
use eva_core::{EvaDb, SessionConfig};
use eva_parser::{parse, Statement};
use eva_video::generator::generate;
use eva_video::VideoConfig;

const Q: &str = "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                 WHERE id >= 100 AND id < 700 AND label = 'car' AND \
                 area(frame, bbox) > 0.2 AND cartype(frame, bbox) = 'Nissan' AND \
                 colordet(frame, bbox) = 'Gray'";

fn db() -> EvaDb {
    let mut db = EvaDb::new(SessionConfig::for_strategy(ReuseStrategy::Eva)).unwrap();
    db.load_video(
        generate(VideoConfig {
            name: "v".into(),
            n_frames: 1000,
            width: 96,
            height: 54,
            fps: 25.0,
            target_density: 5.0,
            person_fraction: 0.0,
            seed: 17,
        }),
        "video",
    )
    .unwrap();
    db
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_vbench_query", |b| {
        b.iter(|| parse(black_box(Q)).unwrap())
    });
}

fn bench_optimize(c: &mut Criterion) {
    let cold = db();
    let stmt = match parse(Q).unwrap() {
        Statement::Select(s) => s,
        _ => unreachable!("constant query is a SELECT"),
    };
    c.bench_function("optimize_cold", |b| {
        b.iter(|| black_box(cold.plan_select(black_box(&stmt)).unwrap()))
    });

    let mut warm = db();
    warm.execute_sql(Q).unwrap();
    c.bench_function("optimize_warm_with_views", |b| {
        b.iter(|| black_box(warm.plan_select(black_box(&stmt)).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parse, bench_optimize
}
criterion_main!(benches);
