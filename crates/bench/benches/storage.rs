//! Criterion micro-benchmarks for the storage engine and hashing: view
//! probe/append throughput and xxHash64 over frame-sized buffers.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

use eva_common::hash::xxhash64;
use eva_common::{DataType, Field, FrameId, Schema, SimClock, Value};
use eva_storage::{StorageEngine, ViewKey, ViewKeyKind};

fn bench_views(c: &mut Criterion) {
    let eng = StorageEngine::new();
    let clock = SimClock::new();
    let schema = Arc::new(Schema::new(vec![Field::new("label", DataType::Str)]).unwrap());
    let view = eng.create_view("bench", ViewKeyKind::Frame, schema);
    let entries: Vec<_> = (0..10_000u64)
        .map(|i| {
            (
                ViewKey::frame(FrameId(i)),
                vec![vec![Value::from("car")]].into(),
            )
        })
        .collect();
    eng.view_append(view, entries, &clock).unwrap();

    let probe_keys: Vec<ViewKey> = (0..1024u64)
        .map(|i| ViewKey::frame(FrameId(i * 7)))
        .collect();
    let mut group = c.benchmark_group("storage");
    group.throughput(Throughput::Elements(probe_keys.len() as u64));
    group.bench_function("view_probe_1024", |b| {
        b.iter(|| {
            black_box(
                eng.view_probe(view, black_box(&probe_keys), &clock)
                    .unwrap(),
            )
        })
    });
    group.bench_function("view_append_1024_new", |b| {
        let mut next = 100_000u64;
        b.iter(|| {
            let entries: Vec<_> = (0..1024u64)
                .map(|i| {
                    (
                        ViewKey::frame(FrameId(next + i)),
                        vec![vec![Value::from("car")]].into(),
                    )
                })
                .collect();
            next += 1024;
            eng.view_append(view, entries, &clock).unwrap();
        })
    });
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let frame: Vec<u8> = (0..1_555_200usize).map(|i| (i * 31) as u8).collect(); // 960×540×3
    let mut group = c.benchmark_group("xxhash64");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("frame_payload", |b| {
        b.iter(|| black_box(xxhash64(black_box(&frame), 0)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_views, bench_hash
}
criterion_main!(benches);
