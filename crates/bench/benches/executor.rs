//! Criterion micro-benchmarks for the execution engine: end-to-end query
//! wall time cold vs warm (view-served) on a small synthetic video.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use eva_baselines::ReuseStrategy;
use eva_core::{EvaDb, SessionConfig};
use eva_video::generator::generate;
use eva_video::VideoConfig;

const Q: &str = "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                 WHERE id < 400 AND label = 'car' AND cartype(frame, bbox) = 'Nissan'";

fn db(strategy: ReuseStrategy) -> EvaDb {
    let mut db = EvaDb::new(SessionConfig::for_strategy(strategy)).unwrap();
    db.load_video(
        generate(VideoConfig {
            name: "v".into(),
            n_frames: 400,
            width: 96,
            height: 54,
            fps: 25.0,
            target_density: 5.0,
            person_fraction: 0.0,
            seed: 23,
        }),
        "video",
    )
    .unwrap();
    db
}

fn bench_execute(c: &mut Criterion) {
    c.bench_function("execute_no_reuse", |b| {
        let mut session = db(ReuseStrategy::NoReuse);
        b.iter(|| black_box(session.execute_sql(Q).unwrap()))
    });
    c.bench_function("execute_eva_warm", |b| {
        let mut session = db(ReuseStrategy::Eva);
        session.execute_sql(Q).unwrap(); // warm the views
        b.iter(|| black_box(session.execute_sql(Q).unwrap()))
    });
    c.bench_function("execute_funcache_warm", |b| {
        let mut session = db(ReuseStrategy::FunCache);
        session.execute_sql(Q).unwrap();
        b.iter(|| black_box(session.execute_sql(Q).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_execute
}
criterion_main!(benches);
