//! Criterion micro-benchmarks for the execution engine: end-to-end query
//! wall time cold vs warm (view-served) on a small synthetic video, plus
//! the non-UDF hot path (scan → filter → project → aggregate) row-at-a-time
//! versus vectorized over a 100k-row synthetic table.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use eva_baselines::ReuseStrategy;
use eva_common::{SimClock, Value};
use eva_core::{EvaDb, SessionConfig};
use eva_exec::context::OpStatsCollector;
use eva_exec::ops::aggregate::AggregateOp;
use eva_exec::ops::filter::FilterOp;
use eva_exec::ops::project::ProjectOp;
use eva_exec::ops::scan::ScanFramesOp;
use eva_exec::ops::{BoxedOp, PivotRowsOp};
use eva_exec::{execute_with_pool, ExecConfig, ExecCtx, FunCacheTable, WorkerPool};
use eva_expr::{AggFunc, Expr};
use eva_planner::PhysPlan;
use eva_storage::engine::video_table_schema;
use eva_storage::StorageEngine;
use eva_udf::{InvocationStats, UdfRegistry};
use eva_video::generator::generate;
use eva_video::{VideoConfig, VideoDataset};

const Q: &str = "SELECT id, bbox FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                 WHERE id < 400 AND label = 'car' AND cartype(frame, bbox) = 'Nissan'";

fn db(strategy: ReuseStrategy) -> EvaDb {
    let mut db = EvaDb::new(SessionConfig::for_strategy(strategy)).unwrap();
    db.load_video(
        generate(VideoConfig {
            name: "v".into(),
            n_frames: 400,
            width: 96,
            height: 54,
            fps: 25.0,
            target_density: 5.0,
            person_fraction: 0.0,
            seed: 23,
        }),
        "video",
    )
    .unwrap();
    db
}

fn bench_execute(c: &mut Criterion) {
    c.bench_function("execute_no_reuse", |b| {
        let mut session = db(ReuseStrategy::NoReuse);
        b.iter(|| black_box(session.execute_sql(Q).unwrap()))
    });
    c.bench_function("execute_eva_warm", |b| {
        let mut session = db(ReuseStrategy::Eva);
        session.execute_sql(Q).unwrap(); // warm the views
        b.iter(|| black_box(session.execute_sql(Q).unwrap()))
    });
    c.bench_function("execute_funcache_warm", |b| {
        let mut session = db(ReuseStrategy::FunCache);
        session.execute_sql(Q).unwrap();
        b.iter(|| black_box(session.execute_sql(Q).unwrap()))
    });
}

// ---------------------------------------------------------------------------
// The non-UDF hot path: row-at-a-time vs vectorized
// ---------------------------------------------------------------------------

const HOT_ROWS: u64 = 100_000;

/// Owned execution state for driving raw operator trees (the bench-side
/// equivalent of the exec crate's test fixture, which is `cfg(test)`).
struct HotEnv {
    storage: StorageEngine,
    registry: UdfRegistry,
    stats: InvocationStats,
    clock: SimClock,
    dataset: Arc<VideoDataset>,
    funcache: FunCacheTable,
    op_stats: OpStatsCollector,
}

impl HotEnv {
    fn new() -> HotEnv {
        let storage = StorageEngine::new();
        let dataset = storage.load_dataset(generate(VideoConfig {
            name: "hot".into(),
            n_frames: HOT_ROWS,
            width: 64,
            height: 36,
            fps: 25.0,
            target_density: 1.0,
            person_fraction: 0.0,
            seed: 7,
        }));
        HotEnv {
            storage,
            registry: UdfRegistry::new(),
            stats: InvocationStats::new(),
            clock: SimClock::new(),
            dataset,
            funcache: FunCacheTable::new(),
            op_stats: OpStatsCollector::new(),
        }
    }

    fn ctx(&self) -> ExecCtx<'_> {
        ExecCtx {
            storage: &self.storage,
            registry: &self.registry,
            stats: &self.stats,
            clock: &self.clock,
            dataset: Arc::clone(&self.dataset),
            funcache: &self.funcache,
            op_stats: &self.op_stats,
            config: ExecConfig {
                batch_size: 4096,
                ..ExecConfig::default()
            },
            pool: None,
            governor: eva_common::QueryGovernor::ungoverned(),
            breaker: None,
        }
    }
}

/// scan(100k) → filter(id in [10k, 90k) ∧ ts ≥ 0) → project(id, small)
/// → aggregate(count, sum, min, max). `row_path` forces every batch to
/// rows right after the scan so downstream operators take their
/// row-at-a-time paths over the identical plan.
fn hot_path_op(row_path: bool) -> BoxedOp {
    let scan: BoxedOp = Box::new(ScanFramesOp::new(
        "hot".into(),
        (0, HOT_ROWS),
        Arc::new(video_table_schema()),
    ));
    let src: BoxedOp = if row_path {
        Box::new(PivotRowsOp::new(scan))
    } else {
        scan
    };
    let pred = Expr::col("id")
        .ge(10_000)
        .and(Expr::col("id").lt(90_000))
        .and(Expr::col("timestamp").ge(0));
    let filt: BoxedOp = Box::new(FilterOp::new(src, pred));
    let proj_schema = Arc::new(
        eva_common::Schema::new(vec![
            eva_common::Field::new("id", eva_common::DataType::Int),
            eva_common::Field::new("small", eva_common::DataType::Bool),
        ])
        .unwrap(),
    );
    let proj: BoxedOp = Box::new(ProjectOp::new(
        filt,
        vec![
            (Expr::col("id"), "id".into()),
            (Expr::col("id").lt(50_000), "small".into()),
        ],
        proj_schema,
    ));
    let agg_schema = Arc::new(
        eva_common::Schema::new(vec![
            eva_common::Field::new("n", eva_common::DataType::Int),
            eva_common::Field::new("s", eva_common::DataType::Float),
            eva_common::Field::new("mn", eva_common::DataType::Float),
            eva_common::Field::new("mx", eva_common::DataType::Float),
        ])
        .unwrap(),
    );
    Box::new(AggregateOp::new(
        proj,
        vec![],
        vec![
            (AggFunc::Count, None, "n".into()),
            (AggFunc::Sum, Some(Expr::col("id")), "s".into()),
            (AggFunc::Min, Some(Expr::col("id")), "mn".into()),
            (AggFunc::Max, Some(Expr::col("id")), "mx".into()),
        ],
        agg_schema,
    ))
}

fn drain(env: &HotEnv, mut op: BoxedOp) -> Vec<Vec<Value>> {
    let ctx = env.ctx();
    let mut rows = Vec::new();
    while let Some(b) = op.next(&ctx).expect("hot path executes") {
        rows.extend(b.into_batch().into_rows());
    }
    rows
}

/// The hot-path pipeline as a physical plan, for the engine-level scaling
/// bench (the engine substitutes the morsel-parallel operator itself).
fn hot_path_plan() -> PhysPlan {
    let scan = PhysPlan::ScanFrames {
        id: eva_common::OpId::UNSET,
        table: "hot".into(),
        dataset: "hot".into(),
        range: (0, HOT_ROWS),
        schema: Arc::new(video_table_schema()),
    };
    let filt = PhysPlan::Filter {
        id: eva_common::OpId::UNSET,
        input: Box::new(scan),
        predicate: Expr::col("id")
            .ge(10_000)
            .and(Expr::col("id").lt(90_000))
            .and(Expr::col("timestamp").ge(0)),
    };
    let proj = PhysPlan::Project {
        id: eva_common::OpId::UNSET,
        input: Box::new(filt),
        items: vec![
            (Expr::col("id"), "id".into()),
            (Expr::col("id").lt(50_000), "small".into()),
        ],
        schema: Arc::new(
            eva_common::Schema::new(vec![
                eva_common::Field::new("id", eva_common::DataType::Int),
                eva_common::Field::new("small", eva_common::DataType::Bool),
            ])
            .unwrap(),
        ),
    };
    let mut plan = PhysPlan::Aggregate {
        id: eva_common::OpId::UNSET,
        input: Box::new(proj),
        group_by: vec![],
        aggs: vec![
            (AggFunc::Count, None, "n".into()),
            (AggFunc::Sum, Some(Expr::col("id")), "s".into()),
            (AggFunc::Min, Some(Expr::col("id")), "mn".into()),
            (AggFunc::Max, Some(Expr::col("id")), "mx".into()),
        ],
        schema: Arc::new(
            eva_common::Schema::new(vec![
                eva_common::Field::new("n", eva_common::DataType::Int),
                eva_common::Field::new("s", eva_common::DataType::Float),
                eva_common::Field::new("mn", eva_common::DataType::Float),
                eva_common::Field::new("mx", eva_common::DataType::Float),
            ])
            .unwrap(),
        ),
    };
    plan.assign_op_ids();
    plan
}

/// Morsel-driven scaling over the 100k-row hot-path plan: one bench per
/// worker count, plus the serial executor as the 1-thread reference.
fn bench_executor_scaling(c: &mut Criterion) {
    let env = HotEnv::new();
    let plan = hot_path_plan();
    let run = |config: ExecConfig, pool: Option<&WorkerPool>| {
        execute_with_pool(
            &plan,
            &env.storage,
            &env.registry,
            &env.stats,
            &env.clock,
            &env.funcache,
            config,
            pool,
        )
        .expect("scaling plan executes")
    };
    let serial_cfg = ExecConfig {
        batch_size: 1024,
        parallel_scan_min_rows: 0,
        ..ExecConfig::default()
    };
    // Identity before timing: the parallel pipeline must reproduce the
    // serial rows exactly at every width.
    let reference = run(serial_cfg, None);
    for workers in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(workers);
        let out = run(ExecConfig::default(), Some(&pool));
        assert_eq!(reference.batch.rows(), out.batch.rows());
        assert_eq!(out.metrics.parallel_pipelines, 1);
    }
    c.bench_function("executor_scaling_serial", |b| {
        b.iter(|| black_box(run(serial_cfg, None)))
    });
    for workers in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(workers);
        c.bench_function(&format!("executor_scaling_workers_{workers}"), |b| {
            b.iter(|| black_box(run(ExecConfig::default(), Some(&pool))))
        });
    }
}

fn bench_hot_path(c: &mut Criterion) {
    let env = HotEnv::new();
    // Both paths must agree before timing anything.
    assert_eq!(
        drain(&env, hot_path_op(true)),
        drain(&env, hot_path_op(false))
    );
    c.bench_function("hot_path_row_100k", |b| {
        b.iter(|| black_box(drain(&env, hot_path_op(true))))
    });
    c.bench_function("hot_path_columnar_100k", |b| {
        b.iter(|| black_box(drain(&env, hot_path_op(false))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_execute, bench_hot_path, bench_executor_scaling
}
criterion_main!(benches);
