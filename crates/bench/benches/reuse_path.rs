//! Criterion micro-benchmarks for the zero-copy reuse hot path: view probe
//! and append throughput (single- and multi-threaded) plus FunCache hit
//! throughput. The multi-threaded variants hammer one shared
//! `StorageEngine` from several OS threads, exercising the sharded
//! registry and per-view read locks.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

use eva_common::{DataType, Field, FrameId, Row, Schema, SimClock, Value};
use eva_exec::FunCacheTable;
use eva_storage::{StorageEngine, ViewKey, ViewKeyKind};

const N_KEYS: u64 = 10_000;
const PROBE_BATCH: u64 = 1024;
const N_THREADS: usize = 4;

fn out_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![Field::new("label", DataType::Str)]).unwrap())
}

fn seeded_engine() -> (StorageEngine, eva_common::ViewId) {
    let eng = StorageEngine::new();
    let clock = SimClock::new();
    let view = eng.create_view("bench", ViewKeyKind::Frame, out_schema());
    let entries: Vec<(ViewKey, Arc<[Row]>)> = (0..N_KEYS)
        .map(|i| {
            (
                ViewKey::frame(FrameId(i)),
                vec![vec![Value::from("car")]].into(),
            )
        })
        .collect();
    eng.view_append(view, entries, &clock).unwrap();
    (eng, view)
}

fn probe_keys(offset: u64) -> Vec<ViewKey> {
    (0..PROBE_BATCH)
        .map(|i| ViewKey::frame(FrameId((offset + i * 7) % N_KEYS)))
        .collect()
}

fn bench_probe(c: &mut Criterion) {
    let (eng, view) = seeded_engine();
    let clock = SimClock::new();
    let keys = probe_keys(0);

    // Sanity: hits must share the stored allocation (the zero-copy claim).
    let a = eng.view_probe(view, &keys[..1], &clock).unwrap();
    let b = eng.view_probe(view, &keys[..1], &clock).unwrap();
    assert!(Arc::ptr_eq(a[0].as_ref().unwrap(), b[0].as_ref().unwrap()));

    let mut group = c.benchmark_group("reuse_path/probe");
    group.throughput(Throughput::Elements(PROBE_BATCH));
    group.bench_function("single_thread_1024", |b| {
        b.iter(|| black_box(eng.view_probe(view, black_box(&keys), &clock).unwrap()))
    });
    group.throughput(Throughput::Elements(PROBE_BATCH * N_THREADS as u64));
    group.bench_function("four_threads_1024_each", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..N_THREADS)
                .map(|t| {
                    let eng = eng.clone();
                    let keys = probe_keys(t as u64 * 131);
                    std::thread::spawn(move || {
                        let clock = SimClock::new();
                        eng.view_probe(view, &keys, &clock).unwrap().len()
                    })
                })
                .collect();
            let n: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            black_box(n)
        })
    });
    group.finish();
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("reuse_path/append");
    group.throughput(Throughput::Elements(PROBE_BATCH));
    group.bench_function("single_thread_1024_new", |b| {
        let (eng, view) = seeded_engine();
        let clock = SimClock::new();
        let mut next = N_KEYS;
        b.iter(|| {
            let entries: Vec<(ViewKey, Arc<[Row]>)> = (0..PROBE_BATCH)
                .map(|i| {
                    (
                        ViewKey::frame(FrameId(next + i)),
                        vec![vec![Value::from("car")]].into(),
                    )
                })
                .collect();
            next += PROBE_BATCH;
            eng.view_append(view, entries, &clock).unwrap();
        })
    });
    group.throughput(Throughput::Elements(PROBE_BATCH * N_THREADS as u64));
    group.bench_function("four_threads_private_views", |b| {
        let eng = StorageEngine::new();
        let views: Vec<_> = (0..N_THREADS)
            .map(|t| eng.create_view(format!("w{t}"), ViewKeyKind::Frame, out_schema()))
            .collect();
        let mut round = 0u64;
        b.iter(|| {
            let base = round * PROBE_BATCH;
            round += 1;
            let handles: Vec<_> = views
                .iter()
                .map(|&view| {
                    let eng = eng.clone();
                    std::thread::spawn(move || {
                        let clock = SimClock::new();
                        let entries: Vec<(ViewKey, Arc<[Row]>)> = (0..PROBE_BATCH)
                            .map(|i| {
                                (
                                    ViewKey::frame(FrameId(base + i)),
                                    vec![vec![Value::from("car")]].into(),
                                )
                            })
                            .collect();
                        eng.view_append(view, entries, &clock).unwrap();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    group.finish();
}

fn bench_funcache(c: &mut Criterion) {
    let cache = FunCacheTable::new();
    let payload: Vec<u8> = (0..64usize).map(|i| i as u8).collect();
    for i in 0..N_KEYS {
        let mut bytes = payload.clone();
        bytes.extend_from_slice(&i.to_le_bytes());
        let k = cache.key("det", &bytes);
        cache.insert(k, vec![vec![Value::from("car")]].into());
    }
    let mut group = c.benchmark_group("reuse_path/funcache");
    group.throughput(Throughput::Elements(PROBE_BATCH));
    group.bench_function("hit_1024", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..PROBE_BATCH {
                let mut bytes = payload.clone();
                bytes.extend_from_slice(&((i * 7) % N_KEYS).to_le_bytes());
                let k = cache.key("det", &bytes);
                if cache.get(&k).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_probe, bench_append, bench_funcache);
criterion_main!(benches);
