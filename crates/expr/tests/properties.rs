//! Property-based tests for expression utilities: constant folding and
//! conjunct splitting must preserve three-valued evaluation.

use proptest::prelude::*;

use eva_common::{DataType, Field, Row, Schema, Value};
use eva_expr::eval::NoUdfs;
use eva_expr::{conjoin, conjuncts, util::fold_constants, CmpOp, Expr, RowContext};

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::true_()),
        Just(Expr::false_()),
        (0i64..10).prop_map(|v| Expr::col("a").lt(v)),
        (0i64..10).prop_map(|v| Expr::col("b").ge(v)),
        prop::sample::select(vec!["x", "y"]).prop_map(|s| Expr::cmp(
            Expr::col("s"),
            CmpOp::Eq,
            Expr::lit(s)
        )),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|e| e.not()),
        ]
    })
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        0i64..10,
        0i64..10,
        prop::sample::select(vec!["x", "y", "z"]),
        any::<bool>(),
    )
        .prop_map(|(a, b, s, null_a)| {
            vec![
                if null_a { Value::Null } else { Value::Int(a) },
                Value::Int(b),
                Value::from(s),
            ]
        })
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("a", DataType::Int),
        Field::new("b", DataType::Int),
        Field::new("s", DataType::Str),
    ])
    .unwrap()
}

fn eval(e: &Expr, row: &Row) -> Value {
    let schema = schema();
    let ctx = RowContext::new(&schema, row, &NoUdfs);
    e.eval(&ctx).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fold_constants_preserves_eval(e in arb_expr(), rows in prop::collection::vec(arb_row(), 4)) {
        let folded = fold_constants(e.clone());
        for row in &rows {
            prop_assert_eq!(eval(&e, row), eval(&folded, row), "expr {}", e);
        }
    }

    #[test]
    fn conjuncts_round_trip_eval(e in arb_expr(), rows in prop::collection::vec(arb_row(), 4)) {
        let parts = conjuncts(&e);
        let rebuilt = conjoin(parts);
        for row in &rows {
            // AND-split and re-conjoin preserves *predicate* semantics
            // (NULL folds to reject in WHERE position).
            let schema = schema();
            let ctx = RowContext::new(&schema, row, &NoUdfs);
            prop_assert_eq!(
                e.eval_predicate(&ctx).unwrap(),
                rebuilt.eval_predicate(&ctx).unwrap(),
                "expr {}",
                e
            );
        }
    }

    #[test]
    fn negation_is_involutive_for_predicates(e in arb_expr(), rows in prop::collection::vec(arb_row(), 4)) {
        let double_neg = e.clone().not().not();
        for row in &rows {
            prop_assert_eq!(eval(&e, row), eval(&double_neg, row));
        }
    }

    #[test]
    fn cmp_op_negation_flips_predicate(op in prop::sample::select(vec![
        CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge,
    ]), v in 0i64..10, rows in prop::collection::vec(arb_row(), 4)) {
        let atom = Expr::cmp(Expr::col("b"), op, Expr::lit(v));
        let negated = Expr::cmp(Expr::col("b"), op.negated(), Expr::lit(v));
        for row in &rows {
            // b is never NULL in arb_row, so two-valued logic applies.
            let a = eval(&atom, row).as_bool().unwrap();
            let n = eval(&negated, row).as_bool().unwrap();
            prop_assert_ne!(a, n);
        }
    }
}
