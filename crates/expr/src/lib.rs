//! # eva-expr
//!
//! Expression AST and evaluation for EVA-RS.
//!
//! The paper's predicate grammar (§4.1) is:
//!
//! ```text
//! p     ::= expr cp expr | p logic p | NOT p
//! cp    ::= > | < | = | ≠ | ≤ | ≥
//! logic ::= AND | OR
//! ```
//!
//! where `expr` is a column, a constant, or a UDF call. This crate provides
//! [`Expr`] (that grammar plus projection-side helpers such as `COUNT(*)`),
//! SQL three-valued evaluation over rows, and the analysis utilities the
//! optimizer needs (conjunct splitting, UDF-call collection, substitution).

pub mod eval;
pub mod expr;
pub mod util;
pub mod vector;

pub use eval::{EvalContext, NoUdfs, RowContext, UdfDispatch};
pub use expr::{AggFunc, CmpOp, Expr, UdfCall};
pub use util::{collect_udf_calls, conjoin, conjuncts, disjoin, referenced_columns};
pub use vector::{eval_columnar, filter_columnar};
