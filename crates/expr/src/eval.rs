//! SQL three-valued evaluation of expressions over rows.

use eva_common::{EvaError, Result, Row, Schema, Value};

use crate::expr::Expr;

/// Callback through which scalar UDF calls inside expressions are evaluated.
///
/// The planner normally rewrites UDF calls into APPLY operators before
/// execution, but inline evaluation is needed by (a) the FunCache baseline,
/// which memoizes at the call site, and (b) tests.
pub trait UdfDispatch {
    /// Evaluate the named UDF over already-evaluated argument values.
    fn call_udf(&self, name: &str, accuracy: Option<&str>, args: &[Value]) -> Result<Value>;
}

/// A dispatch that rejects every UDF call — used wherever the plan guarantees
/// no UDF remains in the expression.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoUdfs;

impl UdfDispatch for NoUdfs {
    fn call_udf(&self, name: &str, _accuracy: Option<&str>, _args: &[Value]) -> Result<Value> {
        Err(EvaError::Exec(format!(
            "unexpected UDF call '{name}' in post-rewrite expression"
        )))
    }
}

/// Everything needed to evaluate an expression against one tuple.
pub trait EvalContext {
    /// Resolve a column reference.
    fn column(&self, name: &str) -> Result<Value>;
    /// Dispatch a scalar UDF call.
    fn udf(&self, name: &str, accuracy: Option<&str>, args: &[Value]) -> Result<Value>;
}

/// The standard [`EvalContext`]: a row + schema + UDF dispatch.
pub struct RowContext<'a, D: UdfDispatch> {
    schema: &'a Schema,
    row: &'a Row,
    dispatch: &'a D,
}

impl<'a, D: UdfDispatch> RowContext<'a, D> {
    /// Bundle a row with its schema and a UDF dispatcher.
    pub fn new(schema: &'a Schema, row: &'a Row, dispatch: &'a D) -> Self {
        RowContext {
            schema,
            row,
            dispatch,
        }
    }
}

impl<'a, D: UdfDispatch> EvalContext for RowContext<'a, D> {
    fn column(&self, name: &str) -> Result<Value> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| EvaError::Binder(format!("unknown column '{name}'")))?;
        Ok(self.row[idx].clone())
    }

    fn udf(&self, name: &str, accuracy: Option<&str>, args: &[Value]) -> Result<Value> {
        self.dispatch.call_udf(name, accuracy, args)
    }
}

impl Expr {
    /// Evaluate to a [`Value`] under SQL semantics. Boolean connectives use
    /// three-valued logic with [`Value::Null`] as UNKNOWN.
    pub fn eval<C: EvalContext>(&self, ctx: &C) -> Result<Value> {
        match self {
            Expr::Column(c) => ctx.column(c),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Udf(u) => {
                let mut args = Vec::with_capacity(u.args.len());
                for a in &u.args {
                    args.push(a.eval(ctx)?);
                }
                ctx.udf(&u.name, u.accuracy.as_deref(), &args)
            }
            Expr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(ctx)?;
                let r = rhs.eval(ctx)?;
                Ok(match op.test(l.sql_cmp(&r)) {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                })
            }
            Expr::And(a, b) => {
                let l = to_tristate(a.eval(ctx)?)?;
                // Short circuit: FALSE AND x = FALSE without evaluating x.
                if l == Some(false) {
                    return Ok(Value::Bool(false));
                }
                let r = to_tristate(b.eval(ctx)?)?;
                Ok(match (l, r) {
                    (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            Expr::Or(a, b) => {
                let l = to_tristate(a.eval(ctx)?)?;
                if l == Some(true) {
                    return Ok(Value::Bool(true));
                }
                let r = to_tristate(b.eval(ctx)?)?;
                Ok(match (l, r) {
                    (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                })
            }
            Expr::Not(e) => Ok(match to_tristate(e.eval(ctx)?)? {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            }),
            Expr::Agg { .. } => Err(EvaError::Exec(
                "aggregate expression evaluated outside GROUP BY operator".into(),
            )),
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(ctx)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
        }
    }

    /// Evaluate as a filter predicate: NULL (UNKNOWN) rejects the tuple,
    /// matching SQL `WHERE` semantics.
    pub fn eval_predicate<C: EvalContext>(&self, ctx: &C) -> Result<bool> {
        Ok(match self.eval(ctx)? {
            Value::Bool(b) => b,
            Value::Null => false,
            other => {
                return Err(EvaError::Type(format!(
                    "predicate evaluated to non-boolean {other}"
                )))
            }
        })
    }
}

fn to_tristate(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(EvaError::Type(format!(
            "expected boolean operand, got {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, UdfCall};
    use eva_common::{DataType, Field};

    fn ctx_for(row: Row) -> (Schema, Row) {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("label", DataType::Str),
            Field::new("area", DataType::Float),
        ])
        .unwrap();
        (schema, row)
    }

    fn eval(e: &Expr, row: Row) -> Value {
        let (schema, row) = ctx_for(row);
        let ctx = RowContext::new(&schema, &row, &NoUdfs);
        e.eval(&ctx).unwrap()
    }

    fn sample_row() -> Row {
        vec![Value::Int(5), Value::from("car"), Value::Float(0.4)]
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            eval(&Expr::col("id").lt(10), sample_row()),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&Expr::col("label").eq_val("car"), sample_row()),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&Expr::col("area").gt(0.5), sample_row()),
            Value::Bool(false)
        );
    }

    #[test]
    fn null_propagation_three_valued() {
        let row = vec![Value::Null, Value::from("car"), Value::Float(0.4)];
        // NULL < 10 → NULL
        assert_eq!(eval(&Expr::col("id").lt(10), row.clone()), Value::Null);
        // NULL AND FALSE → FALSE
        let e = Expr::col("id").lt(10).and(Expr::false_());
        assert_eq!(eval(&e, row.clone()), Value::Bool(false));
        // NULL OR TRUE → TRUE
        let e = Expr::col("id").lt(10).or(Expr::true_());
        assert_eq!(eval(&e, row.clone()), Value::Bool(true));
        // NOT NULL → NULL
        let e = Expr::col("id").lt(10).not();
        assert_eq!(eval(&e, row.clone()), Value::Null);
        // predicate semantics: NULL rejects
        let (schema, row) = ctx_for(row);
        let ctx = RowContext::new(&schema, &row, &NoUdfs);
        assert!(!Expr::col("id").lt(10).eval_predicate(&ctx).unwrap());
    }

    #[test]
    fn short_circuit_does_not_hide_errors_on_true_path() {
        // FALSE AND <error> must not error (short circuit)…
        let bad = Expr::cmp(Expr::col("missing"), CmpOp::Eq, Expr::lit(1));
        let e = Expr::false_().and(bad.clone());
        assert_eq!(eval(&e, sample_row()), Value::Bool(false));
        // …but TRUE AND <error> must surface the error.
        let (schema, row) = ctx_for(sample_row());
        let ctx = RowContext::new(&schema, &row, &NoUdfs);
        assert!(Expr::true_().and(bad).eval(&ctx).is_err());
    }

    #[test]
    fn is_null_checks() {
        let row = vec![Value::Null, Value::from("car"), Value::Float(0.4)];
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("id")),
            negated: false,
        };
        assert_eq!(eval(&e, row.clone()), Value::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("label")),
            negated: true,
        };
        assert_eq!(eval(&e, row), Value::Bool(true));
    }

    struct ConstUdf(Value);
    impl UdfDispatch for ConstUdf {
        fn call_udf(&self, _n: &str, _a: Option<&str>, _args: &[Value]) -> Result<Value> {
            Ok(self.0.clone())
        }
    }

    #[test]
    fn udf_dispatch_is_invoked() {
        let (schema, row) = ctx_for(sample_row());
        let d = ConstUdf(Value::from("Nissan"));
        let ctx = RowContext::new(&schema, &row, &d);
        let e = Expr::cmp(
            Expr::Udf(UdfCall::new("CarType", vec![Expr::col("id")])),
            CmpOp::Eq,
            Expr::lit("Nissan"),
        );
        assert_eq!(e.eval(&ctx).unwrap(), Value::Bool(true));
    }

    #[test]
    fn no_udfs_dispatch_rejects() {
        let (schema, row) = ctx_for(sample_row());
        let ctx = RowContext::new(&schema, &row, &NoUdfs);
        let e = Expr::Udf(UdfCall::new("x", vec![]));
        assert!(e.eval(&ctx).is_err());
    }

    #[test]
    fn aggregates_do_not_eval_inline() {
        let (schema, row) = ctx_for(sample_row());
        let ctx = RowContext::new(&schema, &row, &NoUdfs);
        let e = Expr::Agg {
            func: crate::expr::AggFunc::Count,
            arg: None,
        };
        assert!(e.eval(&ctx).is_err());
    }

    #[test]
    fn type_errors_surface() {
        let (schema, row) = ctx_for(sample_row());
        let ctx = RowContext::new(&schema, &row, &NoUdfs);
        // label AND true → type error (string operand)
        let e = Expr::col("label").and(Expr::true_());
        assert!(e.eval(&ctx).is_err());
    }
}
