//! Expression analysis utilities used by the optimizer.

use std::collections::BTreeSet;

use crate::expr::{Expr, UdfCall};

/// Split a predicate into its top-level conjuncts:
/// `a AND (b AND c)` → `[a, b, c]`. A literal TRUE disappears.
pub fn conjuncts(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other if other.is_true_lit() => {}
            other => out.push(other.clone()),
        }
    }
    walk(e, &mut out);
    out
}

/// Combine a list of predicates with AND. Empty list → TRUE.
pub fn conjoin(mut parts: Vec<Expr>) -> Expr {
    match parts.len() {
        0 => Expr::true_(),
        1 => parts.pop().unwrap(),
        _ => {
            let mut it = parts.into_iter();
            let first = it.next().unwrap();
            it.fold(first, |acc, e| acc.and(e))
        }
    }
}

/// Combine a list of predicates with OR. Empty list → FALSE.
pub fn disjoin(mut parts: Vec<Expr>) -> Expr {
    match parts.len() {
        0 => Expr::false_(),
        1 => parts.pop().unwrap(),
        _ => {
            let mut it = parts.into_iter();
            let first = it.next().unwrap();
            it.fold(first, |acc, e| acc.or(e))
        }
    }
}

/// Collect every UDF call in the expression, in pre-order, deduplicated by
/// structural equality.
pub fn collect_udf_calls(e: &Expr) -> Vec<UdfCall> {
    let mut out: Vec<UdfCall> = Vec::new();
    e.visit(&mut |node| {
        if let Expr::Udf(u) = node {
            if !out.contains(u) {
                out.push(u.clone());
            }
        }
    });
    out
}

/// Names of all columns referenced by the expression (sorted, deduplicated).
pub fn referenced_columns(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    e.visit(&mut |node| {
        if let Expr::Column(c) = node {
            out.insert(c.clone());
        }
    });
    out
}

/// Replace every occurrence of `target` UDF call with `replacement`
/// expression (used when rewriting predicates to read view output columns).
pub fn substitute_udf(e: Expr, target: &UdfCall, replacement: &Expr) -> Expr {
    e.transform(&mut |node| match &node {
        Expr::Udf(u) if u == target => replacement.clone(),
        _ => node,
    })
}

/// Structural constant folding of boolean connectives:
/// `TRUE AND p → p`, `FALSE OR p → p`, `NOT TRUE → FALSE`, etc.
pub fn fold_constants(e: Expr) -> Expr {
    e.transform(&mut |node| match node {
        Expr::And(a, b) => {
            if a.is_false_lit() || b.is_false_lit() {
                Expr::false_()
            } else if a.is_true_lit() {
                *b
            } else if b.is_true_lit() {
                *a
            } else {
                Expr::And(a, b)
            }
        }
        Expr::Or(a, b) => {
            if a.is_true_lit() || b.is_true_lit() {
                Expr::true_()
            } else if a.is_false_lit() {
                *b
            } else if b.is_false_lit() {
                *a
            } else {
                Expr::Or(a, b)
            }
        }
        Expr::Not(inner) => {
            if inner.is_true_lit() {
                Expr::false_()
            } else if inner.is_false_lit() {
                Expr::true_()
            } else {
                Expr::Not(inner)
            }
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::col("a")
            .lt(1)
            .and(Expr::col("b").gt(2).and(Expr::col("c").eq_val("x")));
        let cs = conjuncts(&e);
        assert_eq!(cs.len(), 3);
        // Re-conjoining may re-associate but must preserve the conjunct set.
        assert_eq!(conjuncts(&conjoin(cs.clone())), cs);
    }

    #[test]
    fn conjuncts_drop_true() {
        let e = Expr::true_().and(Expr::col("a").lt(1));
        assert_eq!(conjuncts(&e).len(), 1);
    }

    #[test]
    fn conjoin_empty_is_true_disjoin_empty_is_false() {
        assert!(conjoin(vec![]).is_true_lit());
        assert!(disjoin(vec![]).is_false_lit());
    }

    #[test]
    fn collect_dedups_udf_calls() {
        let u = UdfCall::new("ct", vec![Expr::col("frame")]);
        let e = Expr::cmp(Expr::Udf(u.clone()), CmpOp::Eq, Expr::lit("a")).and(Expr::cmp(
            Expr::Udf(u.clone()),
            CmpOp::Ne,
            Expr::lit("b"),
        ));
        let calls = collect_udf_calls(&e);
        assert_eq!(calls, vec![u]);
    }

    #[test]
    fn referenced_columns_sorted_unique() {
        let e = Expr::col("b")
            .lt(1)
            .and(Expr::col("a").gt(2))
            .and(Expr::col("b").lt(3));
        let cols: Vec<String> = referenced_columns(&e).into_iter().collect();
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn substitute_replaces_udf_with_column() {
        let u = UdfCall::new("ct", vec![Expr::col("frame")]);
        let e = Expr::cmp(Expr::Udf(u.clone()), CmpOp::Eq, Expr::lit("Nissan"));
        let out = substitute_udf(e, &u, &Expr::col("ct_out"));
        assert_eq!(out.to_string(), "ct_out = 'Nissan'");
    }

    #[test]
    fn substitution_only_matches_exact_call() {
        let u1 = UdfCall::new("ct", vec![Expr::col("frame")]);
        let u2 = UdfCall::new("ct", vec![Expr::col("other")]);
        let e = Expr::Udf(u2.clone());
        let out = substitute_udf(e.clone(), &u1, &Expr::col("x"));
        assert_eq!(out, e);
    }

    #[test]
    fn constant_folding() {
        let e = Expr::true_().and(Expr::col("a").lt(1));
        assert_eq!(fold_constants(e).to_string(), "a < 1");
        let e = Expr::false_().and(Expr::col("a").lt(1));
        assert!(fold_constants(e).is_false_lit());
        let e = Expr::false_().or(Expr::col("a").lt(1));
        assert_eq!(fold_constants(e).to_string(), "a < 1");
        let e = Expr::true_().not();
        assert!(fold_constants(e).is_false_lit());
        // Nested: (TRUE AND a) OR FALSE → a
        let e = Expr::true_().and(Expr::col("a").lt(1)).or(Expr::false_());
        assert_eq!(fold_constants(e).to_string(), "a < 1");
    }
}
