//! The expression AST.

use serde::{Deserialize, Serialize};
use std::fmt;

use eva_common::Value;

/// Comparison operators of the EVA-QL predicate grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with sides swapped (`a < b` ⇔ `b > a`), used to
    /// normalize atoms into `column op constant` form.
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation (`NOT (a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluate against a three-valued comparison result.
    pub fn test(self, ord: Option<std::cmp::Ordering>) -> Option<bool> {
        use std::cmp::Ordering::*;
        let ord = ord?;
        Some(match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        })
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Aggregate functions supported in projection lists (`Q4` of the paper uses
/// `COUNT(*) … GROUP BY timestamp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)` (non-null count).
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// A UDF invocation appearing inside an expression, e.g.
/// `VEHICLE_COLOR(bbox, frame)` or `OBJECT_DETECTOR(frame) ACCURACY 'HIGH'`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UdfCall {
    /// UDF name, lower-cased.
    pub name: String,
    /// Argument expressions (columns in practice).
    pub args: Vec<Expr>,
    /// Optional `ACCURACY '<level>'` constraint (logical UDFs, §4.3).
    pub accuracy: Option<String>,
}

impl UdfCall {
    /// Construct with normalized (lowercase) name and accuracy.
    pub fn new(name: impl Into<String>, args: Vec<Expr>) -> Self {
        UdfCall {
            name: name.into().to_ascii_lowercase(),
            args,
            accuracy: None,
        }
    }

    /// Attach an accuracy constraint.
    pub fn with_accuracy(mut self, acc: impl Into<String>) -> Self {
        self.accuracy = Some(acc.into().to_ascii_uppercase());
        self
    }
}

impl fmt::Display for UdfCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name.to_ascii_uppercase())?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if let Some(acc) = &self.accuracy {
            write!(f, " ACCURACY '{acc}'")?;
        }
        Ok(())
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference by (case-normalized) name.
    Column(String),
    /// Literal constant.
    Literal(Value),
    /// Scalar UDF call.
    Udf(UdfCall),
    /// Comparison of two sub-expressions.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Aggregate call (projection lists only).
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Argument; `None` means `*` (only valid for COUNT).
        arg: Option<Box<Expr>>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL` — needed by the conditional-APPLY
    /// NULL guard in the materialization-aware transformation rule.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into().to_ascii_lowercase())
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Comparison helper.
    pub fn cmp(lhs: Expr, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// The constant `TRUE`.
    pub fn true_() -> Expr {
        Expr::Literal(Value::Bool(true))
    }

    /// The constant `FALSE`.
    pub fn false_() -> Expr {
        Expr::Literal(Value::Bool(false))
    }

    /// Is this exactly the literal TRUE?
    pub fn is_true_lit(&self) -> bool {
        matches!(self, Expr::Literal(Value::Bool(true)))
    }

    /// Is this exactly the literal FALSE?
    pub fn is_false_lit(&self) -> bool {
        matches!(self, Expr::Literal(Value::Bool(false)))
    }

    /// Does the subtree contain any UDF call?
    pub fn contains_udf(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Udf(_)) {
                found = true;
            }
        });
        found
    }

    /// Pre-order visit of the tree.
    pub fn visit<F: FnMut(&Expr)>(&self, f: &mut F) {
        f(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) => {}
            Expr::Udf(u) => {
                for a in &u.args {
                    a.visit(f);
                }
            }
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Not(e) => e.visit(f),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.visit(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
        }
    }

    /// Bottom-up rewrite of the tree.
    pub fn transform<F: FnMut(Expr) -> Expr>(self, f: &mut F) -> Expr {
        let rebuilt = match self {
            Expr::Column(_) | Expr::Literal(_) => self,
            Expr::Udf(u) => Expr::Udf(UdfCall {
                name: u.name,
                args: u.args.into_iter().map(|a| a.transform(f)).collect(),
                accuracy: u.accuracy,
            }),
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op,
                lhs: Box::new(lhs.transform(f)),
                rhs: Box::new(rhs.transform(f)),
            },
            Expr::And(a, b) => Expr::And(Box::new(a.transform(f)), Box::new(b.transform(f))),
            Expr::Or(a, b) => Expr::Or(Box::new(a.transform(f)), Box::new(b.transform(f))),
            Expr::Not(e) => Expr::Not(Box::new(e.transform(f))),
            Expr::Agg { func, arg } => Expr::Agg {
                func,
                arg: arg.map(|a| Box::new(a.transform(f))),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated,
            },
        };
        f(rebuilt)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => f.write_str(c),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Udf(u) => write!(f, "{u}"),
            Expr::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Agg { func, arg } => match arg {
                Some(a) => write!(f, "{func}({a})"),
                None => write!(f, "{func}(*)"),
            },
            Expr::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "{expr} IS NOT NULL")
                } else {
                    write!(f, "{expr} IS NULL")
                }
            }
        }
    }
}

/// Ergonomic comparison builders used widely in tests and the vbench
/// generator (`Expr::col("id").lt(10_000)`).
impl Expr {
    /// `self < v`.
    pub fn lt(self, v: impl Into<Value>) -> Expr {
        Expr::cmp(self, CmpOp::Lt, Expr::Literal(v.into()))
    }
    /// `self <= v`.
    pub fn le(self, v: impl Into<Value>) -> Expr {
        Expr::cmp(self, CmpOp::Le, Expr::Literal(v.into()))
    }
    /// `self > v`.
    pub fn gt(self, v: impl Into<Value>) -> Expr {
        Expr::cmp(self, CmpOp::Gt, Expr::Literal(v.into()))
    }
    /// `self >= v`.
    pub fn ge(self, v: impl Into<Value>) -> Expr {
        Expr::cmp(self, CmpOp::Ge, Expr::Literal(v.into()))
    }
    /// `self = v`.
    pub fn eq_val(self, v: impl Into<Value>) -> Expr {
        Expr::cmp(self, CmpOp::Eq, Expr::Literal(v.into()))
    }
    /// `self != v`.
    pub fn ne_val(self, v: impl Into<Value>) -> Expr {
        Expr::cmp(self, CmpOp::Ne, Expr::Literal(v.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cmp_op_algebra() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn cmp_op_test_semantics() {
        assert_eq!(CmpOp::Le.test(Some(Ordering::Equal)), Some(true));
        assert_eq!(CmpOp::Lt.test(Some(Ordering::Equal)), Some(false));
        assert_eq!(CmpOp::Ne.test(None), None, "NULL propagates");
    }

    #[test]
    fn builders_and_display() {
        let e = Expr::col("ID").lt(10_000).and(Expr::cmp(
            Expr::col("label"),
            CmpOp::Eq,
            Expr::lit("car"),
        ));
        let s = e.to_string();
        assert!(s.contains("id < 10000"), "{s}");
        assert!(s.contains("label = 'car'"), "{s}");
    }

    #[test]
    fn visit_finds_udfs() {
        let udf = Expr::Udf(UdfCall::new(
            "CarType",
            vec![Expr::col("frame"), Expr::col("bbox")],
        ));
        let e = Expr::cmp(udf, CmpOp::Eq, Expr::lit("Nissan"));
        assert!(e.contains_udf());
        assert!(!Expr::col("id").contains_udf());
    }

    #[test]
    fn transform_rewrites_bottom_up() {
        let e = Expr::col("a").and(Expr::col("b"));
        let rewritten = e.transform(&mut |x| match x {
            Expr::Column(c) if c == "a" => Expr::col("z"),
            other => other,
        });
        assert_eq!(rewritten.to_string(), "(z AND b)");
    }

    #[test]
    fn udf_call_display_with_accuracy() {
        let u = UdfCall::new("Object_Detector", vec![Expr::col("frame")]).with_accuracy("high");
        assert_eq!(u.to_string(), "OBJECT_DETECTOR(frame) ACCURACY 'HIGH'");
    }

    #[test]
    fn is_null_display() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("label")),
            negated: true,
        };
        assert_eq!(e.to_string(), "label IS NOT NULL");
    }
}
