//! Vectorized expression evaluation over [`ColumnarBatch`]es.
//!
//! The scalar path ([`crate::eval`]) evaluates one expression tree per row,
//! boxing every intermediate in a [`Value`]. This module evaluates the same
//! trees column-at-a-time: comparisons run typed loops over the columns'
//! arrays, boolean connectives combine *tri-state masks*, and filters
//! return selection vectors instead of copying rows.
//!
//! ## Semantics parity
//!
//! Every kernel mirrors the row path bit-for-bit (pinned by the
//! equivalence property tests in `tests/property_columnar.rs`):
//!
//! * comparisons go through [`CellRef::sql_cmp`], which replicates
//!   [`Value::sql_cmp`] including the numeric-via-`f64` rule;
//! * `AND`/`OR` keep SQL short-circuit behaviour — the right operand is
//!   evaluated only over the *active subset* of rows whose left operand
//!   did not already decide the result, so `FALSE AND <error>` does not
//!   error, exactly like the scalar evaluator;
//! * NULL is UNKNOWN: masks are `Option<bool>` per row, and
//!   [`filter_columnar`] keeps only `Some(true)` rows (`WHERE` semantics).

use eva_common::{
    CellRef, Column, ColumnBuilder, ColumnData, ColumnarBatch, EvaError, Result, Value,
};

use crate::expr::{CmpOp, Expr};

/// Per-row tri-state result, parallel to the active index list it was
/// evaluated over: `Some(bool)` is TRUE/FALSE, `None` is UNKNOWN (NULL).
type TriMask = Vec<Option<bool>>;

/// Evaluate `pred` as a filter over the batch's visible rows, returning the
/// surviving *physical* row indices (a selection vector narrowing the
/// batch's current selection). No rows are copied.
pub fn filter_columnar(pred: &Expr, batch: &ColumnarBatch) -> Result<Vec<u32>> {
    let active = batch.physical_indices();
    let mask = eval_pred_tri(pred, batch, &active)?;
    let mut out = Vec::with_capacity(active.len());
    for (i, m) in mask.iter().enumerate() {
        if *m == Some(true) {
            out.push(active[i]);
        }
    }
    Ok(out)
}

/// Evaluate an expression over the rows at `active` (physical indices)
/// into a *compact* column of length `active.len()` — the computed-
/// projection and aggregate-argument path.
pub fn eval_columnar(expr: &Expr, batch: &ColumnarBatch, active: &[u32]) -> Result<Column> {
    match expr {
        Expr::Column(_) | Expr::Literal(_) => match eval_vals(expr, batch, active)? {
            Vals::Shared(col) => Ok(col.gather(active)),
            Vals::Owned(col) => Ok(col),
            Vals::Const(v) => {
                let mut b = ColumnBuilder::new();
                for _ in 0..active.len() {
                    b.push(v);
                }
                Ok(b.finish())
            }
        },
        _ => {
            // Boolean-valued trees (and the errors for everything else)
            // share the tri-state path.
            let mask = eval_tri(expr, batch, active)?;
            Ok(mask_to_column(&mask))
        }
    }
}

/// Operand of a vectorized kernel.
enum Vals<'a> {
    /// A batch column at full physical length: index with `active[i]`.
    Shared(&'a Column),
    /// A computed compact column: index with `i`.
    Owned(Column),
    /// A broadcast literal.
    Const(&'a Value),
}

impl Vals<'_> {
    /// Cell for output position `i` (whose physical row is `active[i]`).
    #[inline]
    fn cell(&self, i: usize, active: &[u32]) -> CellRef<'_> {
        match self {
            Vals::Shared(c) => c.cell(active[i] as usize),
            Vals::Owned(c) => c.cell(i),
            Vals::Const(v) => CellRef::from_value(v),
        }
    }
}

fn eval_vals<'a>(expr: &'a Expr, batch: &'a ColumnarBatch, active: &[u32]) -> Result<Vals<'a>> {
    match expr {
        Expr::Column(c) => {
            let idx = batch
                .schema()
                .index_of(c)
                .ok_or_else(|| EvaError::Binder(format!("unknown column '{c}'")))?;
            Ok(Vals::Shared(batch.column(idx).as_ref()))
        }
        Expr::Literal(v) => Ok(Vals::Const(v)),
        Expr::Udf(u) => Err(EvaError::Exec(format!(
            "unexpected UDF call '{}' in post-rewrite expression",
            u.name
        ))),
        Expr::Agg { .. } => Err(EvaError::Exec(
            "aggregate expression evaluated outside GROUP BY operator".into(),
        )),
        // Boolean-valued subtree: evaluate to a compact Bool column with
        // NULLs as invalid slots.
        _ => Ok(Vals::Owned(mask_to_column(&eval_tri(expr, batch, active)?))),
    }
}

fn mask_to_column(mask: &TriMask) -> Column {
    let mut b = ColumnBuilder::new();
    for m in mask {
        match m {
            Some(v) => b.push(&Value::Bool(*v)),
            None => b.push(&Value::Null),
        }
    }
    b.finish()
}

/// Top-level predicate evaluation. Identical to [`eval_tri`] except that a
/// non-boolean *result* reports "predicate evaluated to non-boolean", the
/// wording of the scalar `eval_predicate` — only a bare column or literal
/// can surface one (connectives and comparisons always yield tri-state).
fn eval_pred_tri(pred: &Expr, batch: &ColumnarBatch, active: &[u32]) -> Result<TriMask> {
    match pred {
        Expr::Literal(v) if !matches!(v, Value::Bool(_) | Value::Null) => Err(EvaError::Type(
            format!("predicate evaluated to non-boolean {v}"),
        )),
        Expr::Column(_) => {
            let vals = eval_vals(pred, batch, active)?;
            let mut out = Vec::with_capacity(active.len());
            for i in 0..active.len() {
                out.push(match vals.cell(i, active) {
                    CellRef::Bool(b) => Some(b),
                    CellRef::Null => None,
                    other => {
                        return Err(EvaError::Type(format!(
                            "predicate evaluated to non-boolean {}",
                            other.to_value()
                        )))
                    }
                });
            }
            Ok(out)
        }
        _ => eval_tri(pred, batch, active),
    }
}

/// Tri-state evaluation of a boolean expression over the rows at `active`.
fn eval_tri(expr: &Expr, batch: &ColumnarBatch, active: &[u32]) -> Result<TriMask> {
    match expr {
        Expr::Literal(Value::Bool(b)) => Ok(vec![Some(*b); active.len()]),
        Expr::Literal(Value::Null) => Ok(vec![None; active.len()]),
        Expr::Literal(other) => Err(EvaError::Type(format!(
            "expected boolean operand, got {other}"
        ))),
        Expr::Column(_) => {
            let vals = eval_vals(expr, batch, active)?;
            let mut out = Vec::with_capacity(active.len());
            for i in 0..active.len() {
                out.push(cell_to_tristate(vals.cell(i, active))?);
            }
            Ok(out)
        }
        Expr::Cmp { op, lhs, rhs } => eval_cmp_tri(*op, lhs, rhs, batch, active),
        Expr::And(a, b) => {
            let l = eval_tri(a, batch, active)?;
            // Short circuit: rows whose lhs is FALSE are decided; the rhs is
            // evaluated only over the remainder (so it cannot error there).
            let mut sub_active = Vec::with_capacity(active.len());
            let mut sub_pos = Vec::with_capacity(active.len());
            for (i, lv) in l.iter().enumerate() {
                if *lv != Some(false) {
                    sub_active.push(active[i]);
                    sub_pos.push(i);
                }
            }
            let mut out = vec![Some(false); active.len()];
            if !sub_active.is_empty() {
                let r = eval_tri(b, batch, &sub_active)?;
                for (j, &i) in sub_pos.iter().enumerate() {
                    out[i] = match (l[i], r[j]) {
                        (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    };
                }
            }
            Ok(out)
        }
        Expr::Or(a, b) => {
            let l = eval_tri(a, batch, active)?;
            let mut sub_active = Vec::with_capacity(active.len());
            let mut sub_pos = Vec::with_capacity(active.len());
            for (i, lv) in l.iter().enumerate() {
                if *lv != Some(true) {
                    sub_active.push(active[i]);
                    sub_pos.push(i);
                }
            }
            let mut out = vec![Some(true); active.len()];
            if !sub_active.is_empty() {
                let r = eval_tri(b, batch, &sub_active)?;
                for (j, &i) in sub_pos.iter().enumerate() {
                    out[i] = match (l[i], r[j]) {
                        (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    };
                }
            }
            Ok(out)
        }
        Expr::Not(e) => {
            let mut m = eval_tri(e, batch, active)?;
            for v in &mut m {
                *v = v.map(|b| !b);
            }
            Ok(m)
        }
        Expr::IsNull { expr, negated } => {
            let vals = eval_vals(expr, batch, active)?;
            let mut out = Vec::with_capacity(active.len());
            for i in 0..active.len() {
                out.push(Some(vals.cell(i, active).is_null() != *negated));
            }
            Ok(out)
        }
        Expr::Udf(u) => Err(EvaError::Exec(format!(
            "unexpected UDF call '{}' in post-rewrite expression",
            u.name
        ))),
        Expr::Agg { .. } => Err(EvaError::Exec(
            "aggregate expression evaluated outside GROUP BY operator".into(),
        )),
    }
}

/// Mirror of the scalar `to_tristate` over cells.
fn cell_to_tristate(c: CellRef<'_>) -> Result<Option<bool>> {
    match c {
        CellRef::Bool(b) => Ok(Some(b)),
        CellRef::Null => Ok(None),
        other => Err(EvaError::Type(format!(
            "expected boolean operand, got {}",
            other.to_value()
        ))),
    }
}

fn eval_cmp_tri(
    op: CmpOp,
    lhs: &Expr,
    rhs: &Expr,
    batch: &ColumnarBatch,
    active: &[u32],
) -> Result<TriMask> {
    let lv = eval_vals(lhs, batch, active)?;
    let rv = eval_vals(rhs, batch, active)?;
    // Typed fast paths for the dominant `column op literal` shape (either
    // orientation — the flipped operator swaps sides).
    if let Some(mask) = cmp_col_lit(op, &lv, &rv, active) {
        return Ok(mask);
    }
    if let Some(mask) = cmp_col_lit(op.flipped(), &rv, &lv, active) {
        return Ok(mask);
    }
    let mut out = Vec::with_capacity(active.len());
    for i in 0..active.len() {
        out.push(op.test(lv.cell(i, active).sql_cmp(rv.cell(i, active))));
    }
    Ok(out)
}

/// Typed loop for `<shared column> op <literal>`; `None` when the shapes
/// don't match the fast path.
fn cmp_col_lit(op: CmpOp, col: &Vals<'_>, lit: &Vals<'_>, active: &[u32]) -> Option<TriMask> {
    let (Vals::Shared(col), Vals::Const(lit)) = (col, lit) else {
        return None;
    };
    let validity = col.validity();
    match (col.data(), lit) {
        // Numeric comparison replicates sql_cmp: both sides through f64.
        (ColumnData::Int(vals), Value::Int(_) | Value::Float(_)) => {
            let lit = match lit {
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                _ => unreachable!(),
            };
            Some(
                active
                    .iter()
                    .map(|&i| {
                        let i = i as usize;
                        if !validity.get(i) {
                            return None;
                        }
                        op.test((vals[i] as f64).partial_cmp(&lit))
                    })
                    .collect(),
            )
        }
        (ColumnData::Float(vals), Value::Int(_) | Value::Float(_)) => {
            let lit = match lit {
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                _ => unreachable!(),
            };
            Some(
                active
                    .iter()
                    .map(|&i| {
                        let i = i as usize;
                        if !validity.get(i) {
                            return None;
                        }
                        op.test(vals[i].partial_cmp(&lit))
                    })
                    .collect(),
            )
        }
        (ColumnData::Str(vals), Value::Str(lit)) => Some(
            active
                .iter()
                .map(|&i| {
                    let i = i as usize;
                    if !validity.get(i) {
                        return None;
                    }
                    op.test(Some(vals[i].as_str().cmp(lit.as_str())))
                })
                .collect(),
        ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NoUdfs;
    use crate::RowContext;
    use eva_common::{Batch, DataType, Field, Row, Schema};
    use std::sync::Arc;

    fn batch() -> ColumnarBatch {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("label", DataType::Str),
                Field::new("score", DataType::Float),
            ])
            .unwrap(),
        );
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::from("car"), Value::Float(0.9)],
            vec![Value::Int(2), Value::Null, Value::Float(0.4)],
            vec![Value::Int(3), Value::from("bus"), Value::Null],
            vec![Value::Int(4), Value::from("car"), Value::Float(0.7)],
        ];
        ColumnarBatch::from_batch(&Batch::new(schema, rows))
    }

    fn row_filter(pred: &Expr, b: &ColumnarBatch) -> Vec<u32> {
        let rows = b.to_batch();
        let schema = Arc::clone(rows.schema());
        let mut keep = Vec::new();
        for (i, row) in rows.rows().iter().enumerate() {
            let rc = RowContext::new(&schema, row, &NoUdfs);
            if pred.eval_predicate(&rc).unwrap() {
                keep.push(b.physical_indices()[i]);
            }
        }
        keep
    }

    #[test]
    fn filter_matches_row_path() {
        let b = batch();
        for pred in [
            Expr::col("id").lt(3i64),
            Expr::col("label").eq_val("car"),
            Expr::col("score").ge(0.5).and(Expr::col("id").gt(1i64)),
            Expr::col("label")
                .eq_val("car")
                .or(Expr::col("score").lt(0.5)),
            Expr::col("label").ne_val("car").not(),
            Expr::IsNull {
                expr: Box::new(Expr::col("score")),
                negated: false,
            },
        ] {
            assert_eq!(
                filter_columnar(&pred, &b).unwrap(),
                row_filter(&pred, &b),
                "{pred}"
            );
        }
    }

    #[test]
    fn filter_composes_with_selection() {
        let b = batch().with_selection(vec![1, 2, 3]);
        let sel = filter_columnar(&Expr::col("id").gt(1i64), &b).unwrap();
        assert_eq!(sel, vec![1, 2, 3]);
        let narrowed = b.with_selection(sel);
        let sel2 = filter_columnar(&Expr::col("label").eq_val("car"), &narrowed).unwrap();
        assert_eq!(sel2, vec![3]);
    }

    #[test]
    fn short_circuit_skips_errors_on_decided_rows() {
        let b = batch();
        // FALSE AND <error> must not error.
        let bad = Expr::cmp(Expr::col("missing"), CmpOp::Eq, Expr::lit(1i64));
        let pred = Expr::false_().and(bad.clone());
        assert_eq!(filter_columnar(&pred, &b).unwrap(), Vec::<u32>::new());
        // TRUE OR <error> must not error either.
        let pred = Expr::true_().or(bad.clone());
        assert_eq!(filter_columnar(&pred, &b).unwrap(), vec![0, 1, 2, 3]);
        // …but TRUE AND <error> must surface it.
        assert!(filter_columnar(&Expr::true_().and(bad), &b).is_err());
    }

    #[test]
    fn null_is_unknown_and_rejects() {
        let b = batch();
        // label = 'car' is UNKNOWN on the NULL label row — it must not pass
        // even under NOT.
        let sel = filter_columnar(&Expr::col("label").eq_val("car").not(), &b).unwrap();
        assert_eq!(sel, vec![2]);
    }

    #[test]
    fn eval_columnar_gathers_and_computes() {
        let b = batch().with_selection(vec![0, 3]);
        let active = b.physical_indices();
        let col = eval_columnar(&Expr::col("id"), &b, &active).unwrap();
        assert_eq!(col.len(), 2);
        assert_eq!(col.value_at(0), Value::Int(1));
        assert_eq!(col.value_at(1), Value::Int(4));
        let lit = eval_columnar(&Expr::lit("x"), &b, &active).unwrap();
        assert_eq!(lit.value_at(1), Value::from("x"));
        let cmp = eval_columnar(&Expr::col("id").gt(2i64), &b, &active).unwrap();
        assert_eq!(cmp.value_at(0), Value::Bool(false));
        assert_eq!(cmp.value_at(1), Value::Bool(true));
    }

    #[test]
    fn type_errors_mirror_row_path() {
        let b = batch();
        // label AND true → type error (string operand), like the scalar path.
        let pred = Expr::col("label").and(Expr::true_());
        assert!(filter_columnar(&pred, &b).is_err());
        // UDF calls are rejected.
        let pred = Expr::Udf(crate::UdfCall::new("x", vec![]));
        assert!(filter_columnar(&pred, &b).is_err());
    }
}
