//! Admission control: bounded concurrent-query slots with a FIFO wait
//! queue and load shedding.
//!
//! An [`AdmissionController`] gates [`EvaDb`](crate::EvaDb) statement
//! execution. Queries take a slot before running and release it (RAII
//! [`AdmissionPermit`]) when they finish. When every slot is busy, arrivals
//! queue in FIFO order; beyond the high-water mark — or past the per-queue
//! deadline — they are *shed* with
//! [`EvaError::Cancelled`]`{ reason: Shed }` instead of piling up.
//!
//! The controller is deliberately session-external: `EvaDb` is a
//! single-threaded session object, so overload scenarios run one session
//! per thread, all sharing one cloned controller. Admission counters
//! (`queries_admitted` / `queries_shed`) are recorded on the *session's*
//! metrics sink outside the per-query metrics window, so per-query deltas
//! (fuzz oracles, `EXPLAIN ANALYZE`) are unaffected.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use eva_common::{CancelReason, EvaError, MetricsSink, Result};

/// Admission policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Concurrent-query slots.
    pub max_concurrent: usize,
    /// Wait-queue high-water mark: arrivals finding this many waiters are
    /// shed immediately.
    pub max_waiters: usize,
    /// How long a queued query waits (wall milliseconds) before being shed.
    /// `None` waits indefinitely.
    pub queue_deadline_ms: Option<u64>,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: 4,
            max_waiters: 16,
            queue_deadline_ms: Some(10_000),
        }
    }
}

impl AdmissionConfig {
    /// Read `EVA_MAX_CONCURRENT_QUERIES`; `None` when unset or unparseable
    /// (admission control stays off by default).
    pub fn from_env() -> Option<AdmissionConfig> {
        let v = std::env::var("EVA_MAX_CONCURRENT_QUERIES").ok()?;
        let n: usize = v.trim().parse().ok()?;
        if n == 0 {
            return None;
        }
        Some(AdmissionConfig {
            max_concurrent: n,
            ..AdmissionConfig::default()
        })
    }
}

/// A point-in-time view of the controller, for `\health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Queries currently holding a slot.
    pub active: usize,
    /// Queries currently queued.
    pub waiting: usize,
    /// Total admitted since creation.
    pub admitted: u64,
    /// Total shed since creation.
    pub shed: u64,
}

#[derive(Debug, Default)]
struct Lanes {
    active: usize,
    /// FIFO queue of waiting tickets; the head is served first.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

#[derive(Debug)]
struct Inner {
    cfg: AdmissionConfig,
    lanes: Mutex<Lanes>,
    cv: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
}

/// Shared admission gate (cheap to clone; clones share state).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    inner: Arc<Inner>,
}

/// RAII slot: dropping it frees the slot and wakes the queue head.
#[derive(Debug)]
pub struct AdmissionPermit {
    inner: Arc<Inner>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut lanes = self.inner.lanes.lock().expect("admission lock");
        lanes.active = lanes.active.saturating_sub(1);
        drop(lanes);
        self.inner.cv.notify_all();
    }
}

impl AdmissionController {
    /// A controller enforcing `cfg`.
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            inner: Arc::new(Inner {
                cfg,
                lanes: Mutex::new(Lanes::default()),
                cv: Condvar::new(),
                admitted: AtomicU64::new(0),
                shed: AtomicU64::new(0),
            }),
        }
    }

    /// The policy this controller enforces.
    pub fn config(&self) -> AdmissionConfig {
        self.inner.cfg
    }

    /// Take a slot, waiting FIFO behind earlier arrivals. Sheds with
    /// [`EvaError::Cancelled`]`{ Shed }` when the queue is past its
    /// high-water mark or the queue deadline expires. Records the outcome
    /// on `metrics`.
    pub fn admit(&self, metrics: &MetricsSink) -> Result<AdmissionPermit> {
        let cfg = self.inner.cfg;
        let deadline = cfg
            .queue_deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let mut lanes = self.inner.lanes.lock().expect("admission lock");

        // Fast path: a free slot and nobody queued ahead.
        if lanes.active < cfg.max_concurrent && lanes.queue.is_empty() {
            lanes.active += 1;
            drop(lanes);
            return Ok(self.admitted(metrics));
        }

        // Load shedding: past the high-water mark, don't even queue.
        if lanes.queue.len() >= cfg.max_waiters {
            drop(lanes);
            return Err(self.shed(metrics, "admission queue full"));
        }

        let ticket = lanes.next_ticket;
        lanes.next_ticket += 1;
        lanes.queue.push_back(ticket);
        loop {
            let head = lanes.queue.front() == Some(&ticket);
            if head && lanes.active < cfg.max_concurrent {
                lanes.queue.pop_front();
                lanes.active += 1;
                drop(lanes);
                // The next waiter may also fit (slots can free in bursts).
                self.inner.cv.notify_all();
                return Ok(self.admitted(metrics));
            }
            lanes = match deadline {
                Some(cutoff) => {
                    let now = Instant::now();
                    if now >= cutoff {
                        lanes.queue.retain(|&t| t != ticket);
                        drop(lanes);
                        // Our departure may unblock the waiter behind us.
                        self.inner.cv.notify_all();
                        return Err(self.shed(metrics, "queue deadline exceeded"));
                    }
                    self.inner
                        .cv
                        .wait_timeout(lanes, cutoff - now)
                        .expect("admission lock")
                        .0
                }
                None => self.inner.cv.wait(lanes).expect("admission lock"),
            };
        }
    }

    fn admitted(&self, metrics: &MetricsSink) -> AdmissionPermit {
        self.inner.admitted.fetch_add(1, Ordering::Relaxed);
        metrics.record_query_admitted();
        AdmissionPermit {
            inner: Arc::clone(&self.inner),
        }
    }

    fn shed(&self, metrics: &MetricsSink, why: &str) -> EvaError {
        self.inner.shed.fetch_add(1, Ordering::Relaxed);
        metrics.record_query_shed();
        EvaError::cancelled(
            CancelReason::Shed,
            format!(
                "{why} ({} slots, {} waiters max)",
                self.inner.cfg.max_concurrent, self.inner.cfg.max_waiters
            ),
        )
    }

    /// Current occupancy and lifetime totals.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let lanes = self.inner.lanes.lock().expect("admission lock");
        AdmissionSnapshot {
            active: lanes.active,
            waiting: lanes.queue.len(),
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn cfg(max_concurrent: usize, max_waiters: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent,
            max_waiters,
            queue_deadline_ms: None,
        }
    }

    #[test]
    fn slots_free_on_drop() {
        let ctrl = AdmissionController::new(cfg(1, 0));
        let metrics = MetricsSink::new();
        let p = ctrl.admit(&metrics).unwrap();
        assert_eq!(ctrl.snapshot().active, 1);
        // Slot busy, queue full (0 waiters allowed) → shed.
        let err = ctrl.admit(&metrics).unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::Shed));
        drop(p);
        assert_eq!(ctrl.snapshot().active, 0);
        let _p2 = ctrl.admit(&metrics).unwrap();
        let s = ctrl.snapshot();
        assert_eq!((s.admitted, s.shed), (2, 1));
        assert_eq!(metrics.snapshot().queries_admitted, 2);
        assert_eq!(metrics.snapshot().queries_shed, 1);
    }

    #[test]
    fn queue_deadline_sheds_waiters() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            max_concurrent: 1,
            max_waiters: 4,
            queue_deadline_ms: Some(20),
        });
        let metrics = MetricsSink::new();
        let _hold = ctrl.admit(&metrics).unwrap();
        let err = ctrl.admit(&metrics).unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::Shed));
        assert!(err.to_string().contains("queue deadline"), "{err}");
        assert_eq!(ctrl.snapshot().waiting, 0, "shed waiter left the queue");
    }

    #[test]
    fn width_one_serializes_and_serves_fifo() {
        let ctrl = AdmissionController::new(cfg(1, 16));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let first = ctrl
            .admit(&MetricsSink::new())
            .expect("first arrival admits");
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let (ctrl, running, peak, order, gate) = (
                ctrl.clone(),
                Arc::clone(&running),
                Arc::clone(&peak),
                Arc::clone(&order),
                Arc::clone(&gate),
            );
            handles.push(std::thread::spawn(move || {
                // Stagger arrivals so queue order is deterministic.
                {
                    let (lock, cv) = &*gate;
                    let mut turn = lock.lock().unwrap();
                    while !*turn {
                        turn = cv.wait(turn).unwrap();
                    }
                }
                std::thread::sleep(Duration::from_millis(20 * i));
                let metrics = MetricsSink::new();
                let permit = ctrl.admit(&metrics).unwrap();
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                order.lock().unwrap().push(i);
                std::thread::sleep(Duration::from_millis(5));
                running.fetch_sub(1, Ordering::SeqCst);
                drop(permit);
            }));
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        // Hold the slot long enough for all four arrivals to queue up.
        std::thread::sleep(Duration::from_millis(120));
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "width-1 serializes");
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3], "FIFO order");
    }
}
