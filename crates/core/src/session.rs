//! The [`EvaDb`] session.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use eva_catalog::{AccuracyLevel, Catalog, TableDef, UdfDef};
use eva_common::{
    CostBreakdown, DataType, EvaError, Field, GovernorConfig, MetricsSink, MetricsSnapshot,
    QueryGovernor, QueryTrace, Result, Schema, SimClock, SpanHists, TraceSink, UdfId,
};
use eva_exec::{execute_governed, ExecConfig, FunCacheTable, QueryOutput, WorkerPool};
use eva_parser::{parse, CreateUdfStmt, SelectStmt, Statement};
use eva_planner::{Binder, CommitLog, Optimizer, PhysPlan, PlannerConfig, ReuseStrategy};
use eva_storage::{RecoveryReport, StorageEngine};
use eva_symbolic::StatsCatalog;
use eva_udf::registry::install_standard_zoo;
use eva_udf::{InvocationStats, UdfBreaker, UdfManager, UdfRegistry};
use eva_video::{jackson, ua_detrac, UaDetracSize, VideoDataset};

use crate::admission::{AdmissionConfig, AdmissionController};

/// Session configuration: planner strategy + executor tunables.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionConfig {
    /// Planner configuration (reuse strategy, ranking, materialization).
    pub planner: PlannerConfig,
    /// Executor configuration.
    pub exec: ExecConfig,
    /// Per-query governance knobs (deadline, memory budget). The
    /// `EVA_QUERY_DEADLINE` / `EVA_QUERY_BUDGET_BYTES` env knobs overlay
    /// this at query start.
    pub governor: GovernorConfig,
}

impl SessionConfig {
    /// Configuration for one of the evaluation's systems-under-test.
    pub fn for_strategy(strategy: ReuseStrategy) -> SessionConfig {
        SessionConfig {
            planner: PlannerConfig::for_strategy(strategy),
            exec: ExecConfig::default(),
            governor: GovernorConfig::default(),
        }
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub enum StatementResult {
    /// SELECT output.
    Rows(QueryOutput),
    /// DDL acknowledgement.
    Ack(String),
}

impl StatementResult {
    /// The query output, erroring for DDL.
    pub fn rows(self) -> Result<QueryOutput> {
        match self {
            StatementResult::Rows(q) => Ok(q),
            StatementResult::Ack(a) => {
                Err(EvaError::Exec(format!("statement produced no rows ({a})")))
            }
        }
    }
}

/// One EVA-RS session: the full VDBMS of Fig. 1.
pub struct EvaDb {
    catalog: Catalog,
    storage: StorageEngine,
    registry: UdfRegistry,
    manager: UdfManager,
    stats: InvocationStats,
    stats_catalog: StatsCatalog,
    clock: SimClock,
    funcache: FunCacheTable,
    config: SessionConfig,
    /// Outcome of the most recent [`EvaDb::load_state`] recovery pass
    /// (what the repl's `\health` command reports).
    last_recovery: std::sync::Mutex<Option<RecoveryReport>>,
    /// Whether [`EvaDb::load_state`] prunes aggregated predicates whose
    /// views did not survive recovery. Always true in production; the
    /// differential fuzzer flips it off to prove its recovery oracle
    /// catches the resulting wrong answers (see `set_recovery_prune`).
    prune_on_load: std::sync::atomic::AtomicBool,
    /// Circuit breaker around UDF evaluation: opens after K consecutive
    /// transient-retry exhaustions, half-opens on a SimClock timer.
    breaker: UdfBreaker,
    /// Optional admission gate; `None` admits everything. Enabled by
    /// `EVA_MAX_CONCURRENT_QUERIES` or [`EvaDb::set_admission`].
    admission: Option<AdmissionController>,
    /// External cancellation flag for the in-flight query; any thread may
    /// set it via the handle from [`EvaDb::cancel_handle`].
    cancel_flag: Arc<AtomicBool>,
}

impl EvaDb {
    /// Create a session with the paper's standard model zoo installed.
    pub fn new(config: SessionConfig) -> Result<EvaDb> {
        let catalog = Catalog::new();
        let registry = UdfRegistry::new();
        install_standard_zoo(&registry, &catalog)?;
        let storage = StorageEngine::new();
        let manager = UdfManager::new(storage.clone());
        Ok(EvaDb {
            catalog,
            storage,
            registry,
            manager,
            stats: InvocationStats::new(),
            stats_catalog: StatsCatalog::new(),
            clock: SimClock::new(),
            funcache: FunCacheTable::new(),
            config,
            last_recovery: std::sync::Mutex::new(None),
            prune_on_load: std::sync::atomic::AtomicBool::new(true),
            breaker: UdfBreaker::default(),
            admission: AdmissionConfig::from_env().map(AdmissionController::new),
            cancel_flag: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Shorthand: a session running the full EVA reuse algorithm.
    pub fn eva() -> Result<EvaDb> {
        EvaDb::new(SessionConfig::for_strategy(ReuseStrategy::Eva))
    }

    // -- component access -----------------------------------------------------

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The storage engine.
    pub fn storage(&self) -> &StorageEngine {
        &self.storage
    }

    /// The UDF manager.
    pub fn manager(&self) -> &UdfManager {
        &self.manager
    }

    /// Invocation statistics (hit percentages, Table 2/3).
    pub fn invocation_stats(&self) -> &InvocationStats {
        &self.stats
    }

    /// The histogram statistics catalog.
    pub fn stats_catalog(&self) -> &StatsCatalog {
        &self.stats_catalog
    }

    /// The session's virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Simulated-cost snapshot since session start (or last reset).
    pub fn cost_snapshot(&self) -> CostBreakdown {
        self.clock.snapshot()
    }

    /// The session's runtime metrics sink (shared with the storage engine
    /// and the executor — one set of counters per session).
    pub fn metrics(&self) -> &MetricsSink {
        self.storage.metrics()
    }

    /// Runtime-metrics snapshot since session start (or last reset).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.storage.metrics().snapshot()
    }

    /// The session's trace sink (shared with the storage engine and the
    /// executor — one span tree per query, one histogram set per session).
    pub fn trace(&self) -> &TraceSink {
        self.storage.trace()
    }

    /// Span tree and latency histograms of the most recent query (what the
    /// repl's `\trace` command renders).
    pub fn last_trace(&self) -> QueryTrace {
        self.storage.trace().last_query()
    }

    /// Session-cumulative per-span-kind wall-clock latency histograms.
    pub fn session_latency(&self) -> SpanHists {
        self.storage.trace().session_histograms()
    }

    /// Session configuration.
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// Change strategy/config between workloads.
    pub fn set_config(&mut self, config: SessionConfig) {
        self.config = config;
    }

    // -- governance -------------------------------------------------------------

    /// The session's UDF circuit breaker.
    pub fn breaker(&self) -> &UdfBreaker {
        &self.breaker
    }

    /// The admission controller, if admission control is on.
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// Replace the per-query governance knobs for subsequent queries
    /// (deadline, byte budget, cancellation trip point). The fuzz harness
    /// uses this to lift governance mid-session before revalidating a
    /// governed session's surviving answers.
    pub fn set_governor(&mut self, governor: GovernorConfig) {
        self.config.governor = governor;
    }

    /// Install (or remove) an admission controller. Overload tests share
    /// one controller across several single-threaded sessions.
    pub fn set_admission(&mut self, gate: Option<AdmissionController>) {
        self.admission = gate;
    }

    /// A handle any thread can use to cancel this session's in-flight
    /// query (it unwinds with `Cancelled { reason: User }` at the next
    /// batch boundary). The flag is re-armed at each query start.
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel_flag)
    }

    /// Cancel the in-flight query, if any (see [`EvaDb::cancel_handle`]).
    pub fn cancel_current(&self) {
        self.cancel_flag.store(true, Ordering::SeqCst);
    }

    /// Human-readable governance summary (the repl's `\health` tail):
    /// degradation counters, breaker state, admission occupancy.
    pub fn governance_report(&self) -> String {
        let m = self.metrics_snapshot();
        let mut s = format!(
            "governor: degraded queries={} materialization skipped={}\n",
            m.degraded_queries, m.materialization_skipped
        );
        s.push_str(&format!(
            "udf breaker: state={} opened={} half-opened={}\n",
            self.breaker.state_label(),
            self.breaker.times_opened(),
            self.breaker.times_halfopened()
        ));
        match &self.admission {
            Some(gate) => {
                let a = gate.snapshot();
                let cfg = gate.config();
                s.push_str(&format!(
                    "admission: active={}/{} waiting={} admitted={} shed={}\n",
                    a.active, cfg.max_concurrent, a.waiting, a.admitted, a.shed
                ));
            }
            None => s.push_str("admission: off (set EVA_MAX_CONCURRENT_QUERIES to enable)\n"),
        }
        s
    }

    // -- data loading ----------------------------------------------------------

    /// Load a generated dataset under a table name, building statistics.
    pub fn load_video(&mut self, dataset: VideoDataset, table: &str) -> Result<()> {
        let n_rows = dataset.len();
        crate::analyze::build_stats(&dataset, &mut self.stats_catalog);
        let ds_name = dataset.name().to_string();
        self.storage.load_dataset(dataset);
        self.catalog.create_table(TableDef {
            name: table.to_string(),
            schema: video_table_schema(),
            n_rows,
            dataset: ds_name,
        })?;
        Ok(())
    }

    // -- lifecycle --------------------------------------------------------------

    /// Parse, bind, optimize and execute one EVA-QL statement.
    pub fn execute_sql(&mut self, sql: &str) -> Result<StatementResult> {
        match parse(sql)? {
            Statement::Select(stmt) => Ok(StatementResult::Rows(self.execute_select(&stmt)?)),
            Statement::CreateUdf(stmt) => self.create_udf(&stmt),
            Statement::LoadVideo(stmt) => {
                let dataset = self.resolve_dataset(&stmt.dataset)?;
                self.load_video(dataset, &stmt.table)?;
                Ok(StatementResult::Ack(format!(
                    "loaded '{}' into table '{}'",
                    stmt.dataset, stmt.table
                )))
            }
            Statement::ShowUdfs => {
                let names: Vec<String> = self.catalog.udfs().into_iter().map(|u| u.name).collect();
                Ok(StatementResult::Ack(names.join(", ")))
            }
            Statement::ShowTables => {
                Ok(StatementResult::Ack(self.catalog.table_names().join(", ")))
            }
            Statement::DropUdf(name) => {
                self.catalog.drop_udf(&name)?;
                Ok(StatementResult::Ack(format!("dropped UDF '{name}'")))
            }
            Statement::DropTable(name) => {
                self.catalog.drop_table(&name)?;
                Ok(StatementResult::Ack(format!("dropped table '{name}'")))
            }
        }
    }

    /// Execute a bound SELECT.
    pub fn execute_select(&mut self, stmt: &SelectStmt) -> Result<QueryOutput> {
        Ok(self.run_select(stmt, None)?.1)
    }

    /// [`EvaDb::execute_select`] with an injected worker pool — tests and
    /// the differential fuzzer pin the worker count; `None` uses the
    /// process-wide pool.
    pub fn execute_select_with_pool(
        &mut self,
        stmt: &SelectStmt,
        pool: Option<&WorkerPool>,
    ) -> Result<QueryOutput> {
        Ok(self.run_select(stmt, pool)?.1)
    }

    /// The governed query lifecycle every SELECT goes through:
    ///
    /// 1. **Admission** — take a slot (or be shed) before any work happens;
    ///    the permit is held for planning *and* execution, and admission
    ///    counters land outside the per-query metrics window.
    /// 2. **Governance** — a fresh [`QueryGovernor`] (session config +
    ///    env overlays + the external cancel flag) rides the exec context.
    /// 3. **Deferred coverage** — plan-time view commits go to a
    ///    [`CommitLog`], applied only when the query completes un-degraded,
    ///    so a cancelled or degraded query never claims coverage for rows
    ///    it did not materialize.
    fn run_select(
        &mut self,
        stmt: &SelectStmt,
        pool: Option<&WorkerPool>,
    ) -> Result<(PhysPlan, QueryOutput)> {
        let _permit = match &self.admission {
            Some(gate) => Some(gate.admit(self.storage.metrics())?),
            None => None,
        };
        self.cancel_flag.store(false, Ordering::SeqCst);
        let governor = QueryGovernor::new(
            self.config.governor.with_env_overrides(),
            self.clock.total_ms(),
        )
        .with_external_cancel(Arc::clone(&self.cancel_flag));
        let commits = CommitLog::new();
        let plan = self.plan_select_deferred(stmt, &commits)?;
        let result = execute_governed(
            &plan,
            &self.storage,
            &self.registry,
            &self.stats,
            &self.clock,
            &self.funcache,
            self.config.exec,
            pool,
            governor.clone(),
            Some(&self.breaker),
        );
        match result {
            Ok(mut out) => {
                if governor.is_degraded() {
                    let skipped = commits.discard() as u64;
                    if skipped > 0 {
                        self.metrics().record_materialization_skipped(skipped);
                        out.metrics.materialization_skipped += skipped;
                    }
                } else {
                    commits.apply(&self.manager);
                }
                Ok((plan, out))
            }
            Err(e) => {
                commits.discard();
                Err(e)
            }
        }
    }

    /// Produce the physical plan for a SELECT without executing it. Commits
    /// coverage eagerly (no execution follows to defer for).
    pub fn plan_select(&self, stmt: &SelectStmt) -> Result<PhysPlan> {
        let logical = Binder::new(&self.catalog).bind_select(stmt)?;
        let optimizer = Optimizer {
            catalog: &self.catalog,
            manager: &self.manager,
            stats: &self.stats_catalog,
            config: self.config.planner,
            commits: None,
        };
        optimizer.optimize(&logical, &self.clock)
    }

    /// [`EvaDb::plan_select`] with coverage commits deferred into `log`.
    fn plan_select_deferred(&self, stmt: &SelectStmt, log: &CommitLog) -> Result<PhysPlan> {
        let logical = Binder::new(&self.catalog).bind_select(stmt)?;
        let optimizer = Optimizer {
            catalog: &self.catalog,
            manager: &self.manager,
            stats: &self.stats_catalog,
            config: self.config.planner,
            commits: Some(log),
        };
        optimizer.optimize(&logical, &self.clock)
    }

    /// EXPLAIN: the physical plan text for a SELECT statement.
    pub fn explain(&self, sql: &str) -> Result<String> {
        match parse(sql)? {
            Statement::Select(stmt) => Ok(self.plan_select(&stmt)?.explain()),
            other => Err(EvaError::Plan(format!("cannot explain {other:?}"))),
        }
    }

    /// EXPLAIN ANALYZE: *execute* the SELECT and render its plan tree
    /// annotated with per-operator runtime statistics — actual rows, probe
    /// hit rates, UDF calls executed versus avoided, and cumulative
    /// simulated cost (see [`PhysPlan::explain_analyze`]).
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String> {
        Ok(self.explain_analyze_query(sql)?.0)
    }

    /// Like [`EvaDb::explain_analyze`], additionally returning the full
    /// [`QueryOutput`] (result rows, cost breakdown, metrics delta) of the
    /// run that produced the annotations.
    pub fn explain_analyze_query(&mut self, sql: &str) -> Result<(String, QueryOutput)> {
        let stmt = match parse(sql)? {
            Statement::Select(stmt) => stmt,
            other => return Err(EvaError::Plan(format!("cannot explain {other:?}"))),
        };
        let (plan, out) = self.run_select(&stmt, None)?;
        let mut text = plan.explain_analyze(&out.op_stats);
        if !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&runtime_footer(&out));
        Ok((text, out))
    }

    /// Reset all reuse state — views, aggregated predicates, caches,
    /// counters and the clock — so a workload starts clean (§5.1: "We
    /// evaluate every workload from a clean state").
    pub fn reset_reuse_state(&self) {
        self.storage.clear_views();
        self.manager.reset();
        self.funcache.clear();
        self.stats.reset();
        self.clock.reset();
        self.storage.metrics().reset();
        self.storage.trace().reset();
    }

    /// Persist the session's reuse state — materialized views plus the UDF
    /// manager's aggregated predicates — to a directory.
    pub fn save_state(&self, dir: &std::path::Path) -> Result<()> {
        self.storage.save_views(dir)?;
        self.manager.save(dir)
    }

    /// Restore reuse state saved with [`EvaDb::save_state`]. Subsequent
    /// queries immediately reuse the restored views.
    ///
    /// This is a *recovery pass*, not a plain load: damaged segments are
    /// quarantined and the session continues with whatever survived — a
    /// quarantined view is simply cold and is re-materialized by the next
    /// query that needs it. A damaged manager file degrades the same way
    /// (aggregated predicates start cold), and predicates pointing at views
    /// that did not survive are pruned, so the planner can never claim
    /// coverage a quarantined view no longer provides.
    pub fn load_state(&self, dir: &std::path::Path) -> Result<RecoveryReport> {
        let mut report = self.storage.load_views(dir)?;
        if let Err(e) = self.manager.load(dir) {
            self.manager.reset();
            let what = match e {
                EvaError::Corrupt(_) => "state corrupt",
                _ => "state unavailable",
            };
            report.manager_note = Some(format!("{what} — starting cold ({e})"));
        }
        let pruned = if self
            .prune_on_load
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            self.manager.prune_dangling()
        } else {
            Vec::new()
        };
        if !pruned.is_empty() {
            let names: Vec<&str> = pruned.iter().map(|s| s.name.as_str()).collect();
            let note = format!(
                "pruned {} predicate(s) whose views did not survive: {}",
                pruned.len(),
                names.join(", ")
            );
            report.manager_note = Some(match report.manager_note.take() {
                Some(prev) => format!("{prev}; {note}"),
                None => note,
            });
        }
        *self.last_recovery.lock().expect("recovery lock") = Some(report.clone());
        Ok(report)
    }

    /// The outcome of the most recent [`EvaDb::load_state`] call, if any.
    pub fn health_report(&self) -> Option<RecoveryReport> {
        self.last_recovery.lock().expect("recovery lock").clone()
    }

    /// Testing hook: enable or disable the dangling-predicate prune inside
    /// [`EvaDb::load_state`]. Disabling it deliberately reintroduces the
    /// wrong-answer bug PR 4 fixed (the planner claims coverage from views
    /// that were quarantined) — the differential fuzzer's sabotage mode uses
    /// this to prove its recovery oracle and shrinker work end to end.
    #[doc(hidden)]
    pub fn set_recovery_prune(&self, enabled: bool) {
        self.prune_on_load
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    // -- helpers -----------------------------------------------------------------

    fn create_udf(&mut self, stmt: &CreateUdfStmt) -> Result<StatementResult> {
        // IMPL must resolve to a registered simulated model.
        let sim = self.registry.get(&stmt.impl_id)?;
        let accuracy = stmt
            .properties
            .iter()
            .find(|(k, _)| k == "ACCURACY")
            .map(|(_, v)| AccuracyLevel::parse(v))
            .transpose()?
            .unwrap_or(AccuracyLevel::Medium);
        let input = Schema::new(
            stmt.input
                .iter()
                .map(|(n, t)| Field::new(n.clone(), *t))
                .collect(),
        )?;
        let output = if stmt.output.is_empty() {
            (*sim.output_schema()).clone()
        } else {
            Schema::new(
                stmt.output
                    .iter()
                    .map(|(n, t)| Field::new(n.clone(), *t))
                    .collect(),
            )?
        };
        self.catalog.create_udf(
            UdfDef {
                id: UdfId(0),
                name: stmt.name.clone(),
                input,
                output,
                impl_id: stmt.impl_id.clone(),
                logical_type: stmt.logical_type.clone(),
                accuracy,
                cost_ms: Some(sim.cost_ms()),
                gpu: sim.gpu(),
            },
            stmt.or_replace,
        )?;
        Ok(StatementResult::Ack(format!("created UDF '{}'", stmt.name)))
    }

    /// Resolve a dataset name: already-loaded datasets win; otherwise the
    /// well-known synthetic datasets are generated on demand (seed 7).
    fn resolve_dataset(&self, name: &str) -> Result<VideoDataset> {
        if let Ok(ds) = self.storage.dataset(name) {
            return Ok((*ds).clone());
        }
        const SEED: u64 = 7;
        match name {
            "short_ua_detrac" => Ok(ua_detrac(UaDetracSize::Short, SEED)),
            "medium_ua_detrac" => Ok(ua_detrac(UaDetracSize::Medium, SEED)),
            "long_ua_detrac" => Ok(ua_detrac(UaDetracSize::Long, SEED)),
            "jackson" => Ok(jackson(SEED)),
            other => Err(EvaError::Storage(format!(
                "unknown dataset '{other}' (known: short/medium/long_ua_detrac, jackson)"
            ))),
        }
    }
}

fn video_table_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("timestamp", DataType::Int),
        Field::new("frame", DataType::Frame),
    ])
    .expect("static schema is valid")
}

/// The `-- runtime --` footer appended to `EXPLAIN ANALYZE`: the query's
/// span tree plus per-kind wall-clock latency summaries, and a resilience
/// line when the run saw recovery or retry activity. Golden tests compare
/// only the plan tree above the marker — wall numbers are nondeterministic.
fn runtime_footer(out: &QueryOutput) -> String {
    let mut s = String::from("-- runtime --\n");
    s.push_str(&out.trace.render());
    for (kind, h) in out.trace.hists.non_empty() {
        s.push_str(&format!(
            "latency {:<12} {}\n",
            kind.label(),
            h.summary(|ns| format!("{:.3}ms", ns as f64 / 1e6))
        ));
    }
    let m = &out.metrics;
    if m.views_recovered + m.views_quarantined + m.udf_retries + m.udf_gave_up > 0 {
        s.push_str(&format!(
            "resilience: views recovered={} quarantined={} | udf retries={} gave-up={}\n",
            m.views_recovered, m.views_quarantined, m.udf_retries, m.udf_gave_up
        ));
    }
    if m.degraded_queries + m.materialization_skipped + m.udf_breaker_open + m.udf_breaker_halfopen
        > 0
    {
        s.push_str(&format!(
            "governance: degraded={} materialization skipped={} | breaker opened={} \
             half-opened={}\n",
            m.degraded_queries,
            m.materialization_skipped,
            m.udf_breaker_open,
            m.udf_breaker_halfopen
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_video::generator::generate;
    use eva_video::VideoConfig;

    fn tiny() -> VideoDataset {
        generate(VideoConfig {
            name: "tiny".into(),
            n_frames: 240,
            width: 96,
            height: 54,
            fps: 25.0,
            target_density: 8.0,
            person_fraction: 0.0,
            seed: 11,
        })
    }

    fn session(strategy: ReuseStrategy) -> EvaDb {
        let mut db = EvaDb::new(SessionConfig::for_strategy(strategy)).unwrap();
        db.load_video(tiny(), "video").unwrap();
        db
    }

    const Q: &str = "SELECT id, bbox FROM video CROSS APPLY \
                     fasterrcnn_resnet50(frame) WHERE id < 120 AND label = 'car' \
                     AND cartype(frame, bbox) = 'Nissan'";

    #[test]
    fn end_to_end_select() {
        let mut db = session(ReuseStrategy::Eva);
        let out = db.execute_sql(Q).unwrap().rows().unwrap();
        assert!(out.n_rows() > 0, "expected some Nissans");
        // Detector cost dominates the breakdown.
        let udf_ms = out.breakdown.get(eva_common::CostCategory::Udf);
        assert!(udf_ms > 120.0 * 99.0 * 0.5, "udf_ms={udf_ms}");
    }

    #[test]
    fn reuse_accelerates_second_run_and_preserves_results() {
        let mut db = session(ReuseStrategy::Eva);
        let first = db.execute_sql(Q).unwrap().rows().unwrap();
        let second = db.execute_sql(Q).unwrap().rows().unwrap();
        assert_eq!(first.batch.rows(), second.batch.rows(), "same results");
        assert!(
            second.sim_secs() < first.sim_secs() * 0.2,
            "second run should be ≥5x faster: {} vs {}",
            first.sim_secs(),
            second.sim_secs()
        );
        assert!(db.invocation_stats().hit_percentage() > 0.0);
    }

    #[test]
    fn no_reuse_never_accelerates() {
        let mut db = session(ReuseStrategy::NoReuse);
        let first = db.execute_sql(Q).unwrap().rows().unwrap();
        let second = db.execute_sql(Q).unwrap().rows().unwrap();
        let ratio = second.sim_secs() / first.sim_secs();
        assert!(
            (0.95..1.05).contains(&ratio),
            "no-reuse runs should cost the same, ratio={ratio}"
        );
        assert_eq!(db.invocation_stats().hit_percentage(), 0.0);
    }

    #[test]
    fn strategies_agree_on_results() {
        let mut reference: Option<Vec<eva_common::Row>> = None;
        for strategy in [
            ReuseStrategy::NoReuse,
            ReuseStrategy::Eva,
            ReuseStrategy::HashStash,
            ReuseStrategy::FunCache,
        ] {
            let mut db = session(strategy);
            let mut out = db.execute_sql(Q).unwrap().rows().unwrap();
            let mut rows = std::mem::take(out.batch.rows_mut());
            rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            match &reference {
                Some(r) => assert_eq!(r, &rows, "strategy {strategy:?} differs"),
                None => reference = Some(rows),
            }
        }
    }

    #[test]
    fn ddl_round_trip() {
        let mut db = session(ReuseStrategy::Eva);
        let r = db.execute_sql("SHOW TABLES").unwrap();
        assert!(matches!(r, StatementResult::Ack(ref s) if s.contains("video")));
        db.execute_sql(
            "CREATE UDF my_yolo INPUT = (frame FRAME) OUTPUT = (label STR, bbox BBOX, \
             score FLOAT) IMPL = 'sim/yolo_tiny' LOGICAL_TYPE = objectdetector \
             PROPERTIES = ('ACCURACY' = 'LOW')",
        )
        .unwrap();
        assert!(db.catalog().has_udf("my_yolo"));
        db.execute_sql("DROP UDF my_yolo").unwrap();
        assert!(!db.catalog().has_udf("my_yolo"));
        // Unknown impl rejected.
        assert!(db
            .execute_sql("CREATE UDF bad INPUT = (frame FRAME) OUTPUT = (x STR) IMPL = 'nope'")
            .is_err());
    }

    #[test]
    fn explain_shows_reuse_decorations() {
        let mut db = session(ReuseStrategy::Eva);
        db.execute_sql(Q).unwrap().rows().unwrap();
        let text = db.explain(Q).unwrap();
        assert!(text.contains("ScanFrames video [0, 120)"), "{text}");
        assert!(text.contains("+view"), "{text}");
    }

    #[test]
    fn reset_restores_clean_state() {
        let mut db = session(ReuseStrategy::Eva);
        db.execute_sql(Q).unwrap().rows().unwrap();
        assert!(db.storage().total_view_bytes() > 0);
        db.reset_reuse_state();
        assert_eq!(db.storage().total_view_bytes(), 0);
        assert_eq!(db.invocation_stats().hit_percentage(), 0.0);
        assert_eq!(db.cost_snapshot().total_ms(), 0.0);
        let m = db.metrics_snapshot();
        assert_eq!(m.probes, 0, "metrics survive reset: {m:?}");
        assert_eq!(m.udf_calls_requested, 0, "metrics survive reset: {m:?}");
    }

    #[test]
    fn explain_analyze_warm_run_reports_reuse() {
        let mut db = session(ReuseStrategy::Eva);
        db.execute_sql(Q).unwrap().rows().unwrap();
        let cold = db.metrics_snapshot();
        assert!(cold.udf_calls_executed > 0, "{cold:?}");
        assert_eq!(cold.probe_hits, 0, "cold run cannot hit views: {cold:?}");

        let (text, out) = db.explain_analyze_query(Q).unwrap();
        // The annotated tree carries per-operator runtime stats…
        assert!(text.contains("rows="), "{text}");
        assert!(text.contains("probes="), "{text}");
        // …and the warm repeat served every detector row from views.
        assert!(out.metrics.probe_hits > 0, "{:?}", out.metrics);
        assert!(out.metrics.udf_calls_avoided > 0, "{:?}", out.metrics);
        assert_eq!(
            out.metrics.probes,
            out.metrics.probe_hits + out.metrics.probe_misses,
            "{:?}",
            out.metrics
        );
        // The Apply annotations themselves must show nonzero reuse, not
        // just the aggregate snapshot.
        let apply_line = text
            .lines()
            .find(|l| l.contains("avoided="))
            .expect("an Apply node renders reuse counters");
        assert!(!apply_line.contains("avoided=0"), "{apply_line}");
    }

    #[test]
    fn explain_analyze_executes_and_rejects_non_select() {
        let mut db = session(ReuseStrategy::Eva);
        // explain_analyze actually runs the query: views materialize.
        assert_eq!(db.storage().total_view_bytes(), 0);
        let text = db.explain_analyze(Q).unwrap();
        assert!(db.storage().total_view_bytes() > 0);
        assert!(text.contains("ScanFrames"), "{text}");
        assert!(db.explain_analyze("SHOW TABLES").is_err());
    }

    fn unique_dir(tag: &str) -> std::path::PathBuf {
        eva_common::testutil::unique_temp_dir(&format!("session_{tag}"))
    }

    #[test]
    fn save_load_state_round_trips_with_clean_report() {
        let dir = unique_dir("clean");
        let mut db = session(ReuseStrategy::Eva);
        let baseline = db.execute_sql(Q).unwrap().rows().unwrap();
        db.save_state(&dir).unwrap();

        let mut db2 = session(ReuseStrategy::Eva);
        assert!(db2.health_report().is_none(), "no load yet");
        let report = db2.load_state(&dir).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(db2.health_report(), Some(report));
        // The restored state serves the repeat query by reuse.
        let out = db2.execute_sql(Q).unwrap().rows().unwrap();
        assert_eq!(out.batch.rows(), baseline.batch.rows());
        assert!(out.metrics.probe_hits > 0, "{:?}", out.metrics);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_degrades_gracefully_and_self_heals() {
        let dir = unique_dir("degrade");
        let mut db = session(ReuseStrategy::Eva);
        let baseline = db.execute_sql(Q).unwrap().rows().unwrap();
        db.save_state(&dir).unwrap();

        // Silent corruption lands in one segment while the engine is down.
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| Some(e.ok()?.path()))
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .expect("a segment file exists");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&victim, bytes).unwrap();

        let mut db2 = session(ReuseStrategy::Eva);
        let report = db2.load_state(&dir).unwrap();
        assert_eq!(report.quarantined.len(), 1, "{report}");
        // The stale aggregated predicate was pruned with the view, so the
        // planner cannot claim coverage the store no longer has…
        let note = report.manager_note.as_deref().unwrap_or("");
        assert!(note.contains("pruned"), "{report}");
        // …and the query self-heals: correct answer, view re-materialized.
        let out = db2.execute_sql(Q).unwrap().rows().unwrap();
        assert_eq!(out.batch.rows(), baseline.batch.rows());
        let m = db2.metrics_snapshot();
        assert_eq!(m.views_quarantined, 1, "{m:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manager_state_starts_cold_not_failed() {
        let dir = unique_dir("no_manager");
        let mut db = session(ReuseStrategy::Eva);
        db.execute_sql(Q).unwrap().rows().unwrap();
        db.save_state(&dir).unwrap();
        std::fs::remove_file(dir.join(eva_udf::MANAGER_FILE)).unwrap();

        let mut db2 = session(ReuseStrategy::Eva);
        let report = db2.load_state(&dir).unwrap();
        let note = report.manager_note.as_deref().unwrap_or("");
        assert!(note.contains("starting cold"), "{report}");
        // Views loaded fine; queries still run (predicates just rebuild).
        assert!(!report.loaded.is_empty(), "{report}");
        db2.execute_sql(Q).unwrap().rows().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_cancels_cleanly_and_claims_no_coverage() {
        let mut cfg = SessionConfig::for_strategy(ReuseStrategy::Eva);
        cfg.governor.deadline_ms = Some(10.0); // far below the ~12s detector cost
        let mut db = EvaDb::new(cfg).unwrap();
        db.load_video(tiny(), "video").unwrap();
        let err = db.execute_sql(Q).unwrap_err();
        assert_eq!(
            err.cancel_reason(),
            Some(eva_common::CancelReason::Deadline),
            "{err}"
        );
        // The deferred commit log was dropped: no coverage claimed for the
        // rows the cancelled query never materialized.
        let det_sig = eva_udf::UdfSignature::new("fasterrcnn_resnet50", "video", &["frame"]);
        assert!(db.manager().aggregated(&det_sig).is_false());
        // The session survives: lifting the deadline re-runs to completion
        // with correct results.
        let mut cfg = db.config();
        cfg.governor.deadline_ms = None;
        db.set_config(cfg);
        let out = db.execute_sql(Q).unwrap().rows().unwrap();
        assert!(out.n_rows() > 0);
        assert!(!db.manager().aggregated(&det_sig).is_false());
    }

    #[test]
    fn budget_trip_degrades_aggregation_and_skips_materialization() {
        const AGG_Q: &str = "SELECT label, COUNT(*) AS n FROM video CROSS APPLY \
                             fasterrcnn_resnet50(frame) WHERE id < 30 GROUP BY label";
        // Reference: the same query ungoverned.
        let mut clean = session(ReuseStrategy::Eva);
        let mut want = clean.execute_sql(AGG_Q).unwrap().rows().unwrap();
        want.batch
            .rows_mut()
            .sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));

        // A budget below one aggregation group's 64-byte charge trips on
        // the first batch and degrades rather than failing.
        let mut cfg = SessionConfig::for_strategy(ReuseStrategy::Eva);
        cfg.governor.budget_bytes = Some(32);
        let mut db = EvaDb::new(cfg).unwrap();
        db.load_video(tiny(), "video").unwrap();
        let mut out = db.execute_sql(AGG_Q).unwrap().rows().unwrap();
        out.batch
            .rows_mut()
            .sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(
            out.batch.rows(),
            want.batch.rows(),
            "degraded mode is exact"
        );
        assert_eq!(out.metrics.degraded_queries, 1, "{:?}", out.metrics);
        assert!(out.metrics.materialization_skipped > 0, "{:?}", out.metrics);
        // The planner skipped new view coverage for the degraded query.
        let det_sig = eva_udf::UdfSignature::new("fasterrcnn_resnet50", "video", &["frame"]);
        assert!(db.manager().aggregated(&det_sig).is_false());
        // EXPLAIN ANALYZE surfaces the governance footer on a repeat run.
        let (text, _) = db.explain_analyze_query(AGG_Q).unwrap();
        assert!(text.contains("governance:"), "{text}");
        assert!(text.contains("degraded=1"), "{text}");
    }

    #[test]
    fn budget_trip_without_degradation_path_cancels() {
        // A plain scan has no streaming fallback: its result buffer is the
        // retained state, so tripping the budget cancels with `Budget`.
        let mut cfg = SessionConfig::for_strategy(ReuseStrategy::Eva);
        cfg.governor.budget_bytes = Some(256); // < 30 rows × 64 bytes
        let mut db = EvaDb::new(cfg).unwrap();
        db.load_video(tiny(), "video").unwrap();
        let err = db
            .execute_sql("SELECT id, timestamp FROM video WHERE id < 30")
            .unwrap_err();
        assert_eq!(
            err.cancel_reason(),
            Some(eva_common::CancelReason::Budget),
            "{err}"
        );
    }

    #[test]
    fn external_cancel_unwinds_as_user_cancellation() {
        let mut db = session(ReuseStrategy::Eva);
        // A stale cancel from before the query does not kill it: the flag
        // is re-armed at query start.
        db.cancel_current();
        db.execute_sql("SELECT id FROM video WHERE id < 5")
            .unwrap()
            .rows()
            .unwrap();
        // A cancel arriving *during* execution does. The setter spins so
        // the re-arm at query start cannot outrun it.
        let handle = db.cancel_handle();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_setter = Arc::clone(&stop);
        let setter = std::thread::spawn(move || {
            while !stop_setter.load(Ordering::SeqCst) {
                handle.store(true, Ordering::SeqCst);
                std::thread::yield_now();
            }
        });
        let err = db.execute_sql(Q).unwrap_err();
        stop.store(true, Ordering::SeqCst);
        setter.join().unwrap();
        assert_eq!(
            err.cancel_reason(),
            Some(eva_common::CancelReason::User),
            "{err}"
        );
        // The session stays usable after the cancellation.
        db.execute_sql("SELECT id FROM video WHERE id < 5")
            .unwrap()
            .rows()
            .unwrap();
    }

    #[test]
    fn admission_gate_admits_and_frees_slots_in_session() {
        let mut db = session(ReuseStrategy::Eva);
        let gate = crate::admission::AdmissionController::new(crate::admission::AdmissionConfig {
            max_concurrent: 1,
            max_waiters: 0,
            queue_deadline_ms: None,
        });
        db.set_admission(Some(gate.clone()));
        db.execute_sql("SELECT id FROM video WHERE id < 5")
            .unwrap()
            .rows()
            .unwrap();
        db.execute_sql("SELECT id FROM video WHERE id < 5")
            .unwrap()
            .rows()
            .unwrap();
        let s = gate.snapshot();
        assert_eq!((s.active, s.admitted, s.shed), (0, 2, 0), "{s:?}");
        assert_eq!(db.metrics_snapshot().queries_admitted, 2);
    }

    #[test]
    fn group_by_count() {
        let mut db = session(ReuseStrategy::Eva);
        let out = db
            .execute_sql(
                "SELECT label, COUNT(*) AS n FROM video CROSS APPLY \
                 fasterrcnn_resnet50(frame) WHERE id < 30 GROUP BY label",
            )
            .unwrap()
            .rows()
            .unwrap();
        assert!(out.n_rows() >= 1);
        let schema = out.batch.schema().clone();
        assert_eq!(schema.fields()[0].name, "label");
        assert_eq!(schema.fields()[1].name, "n");
        let n = out.batch.value(0, "n").unwrap().as_int().unwrap();
        assert!(n > 0);
    }
}
