//! `ANALYZE`-style statistics collection.
//!
//! Builds the per-dimension histograms the optimizer's selectivity
//! estimation consumes (§4.2: "EVA leverages existing histogram-based
//! methods…"). Dimensions cover both plain columns (`id`, `timestamp`,
//! `label`, `score`) and UDF-output symbols (`area(bbox,frame)`,
//! `cartype(bbox,frame)`, …), sampled from the synthetic dataset's ground
//! truth — the moral equivalent of profiling a prefix of the video.

use std::collections::BTreeMap;

use eva_symbolic::{ColumnStats, StatsCatalog};
use eva_video::VideoDataset;

/// Sampling stride (every k-th frame) used when scanning ground truth.
const SAMPLE_STRIDE: usize = 16;

/// Build statistics for one dataset and register them into `stats`.
pub fn build_stats(dataset: &VideoDataset, stats: &mut StatsCatalog) {
    let n_frames = dataset.len() as f64;

    // id: dense and uniform by construction.
    stats.insert(
        "id",
        ColumnStats::Numeric {
            min: 0.0,
            max: (n_frames - 1.0).max(1.0),
            buckets: vec![0.1; 10],
        },
    );
    // timestamp: uniform over the video duration.
    let max_ts = dataset
        .frames()
        .last()
        .map(|f| f.timestamp_ms as f64)
        .unwrap_or(1.0);
    stats.insert(
        "timestamp",
        ColumnStats::Numeric {
            min: 0.0,
            max: max_ts.max(1.0),
            buckets: vec![0.1; 10],
        },
    );

    // Object-level statistics from sampled ground truth.
    let mut labels: BTreeMap<String, u64> = BTreeMap::new();
    let mut types: BTreeMap<String, u64> = BTreeMap::new();
    let mut colors: BTreeMap<String, u64> = BTreeMap::new();
    let mut licenses: BTreeMap<String, u64> = BTreeMap::new();
    let mut areas: Vec<f64> = Vec::new();
    let mut has_vehicle: BTreeMap<String, u64> = BTreeMap::new();
    for frame in dataset.frames().iter().step_by(SAMPLE_STRIDE) {
        let mut any_vehicle = false;
        for obj in &frame.objects {
            *labels.entry(obj.class.label().to_string()).or_default() += 1;
            *colors.entry(obj.color.clone()).or_default() += 1;
            if let Some(t) = &obj.car_type {
                *types.entry(t.clone()).or_default() += 1;
            }
            if let Some(l) = &obj.license {
                *licenses.entry(l.clone()).or_default() += 1;
            }
            areas.push(obj.bbox.area() as f64);
            any_vehicle |= obj.is_vehicle();
        }
        *has_vehicle
            .entry(if any_vehicle { "true" } else { "false" }.to_string())
            .or_default() += 1;
    }

    stats.insert("label", ColumnStats::categorical_from_counts(labels));
    stats.insert("score", score_stats());
    stats.insert(
        "area(bbox,frame)",
        ColumnStats::numeric_from_samples(&areas, 24),
    );
    stats.insert(
        "cartype(bbox,frame)",
        ColumnStats::categorical_from_counts(types),
    );
    stats.insert(
        "colordet(bbox,frame)",
        ColumnStats::categorical_from_counts(colors),
    );
    stats.insert(
        "license(bbox,frame)",
        ColumnStats::categorical_from_counts(licenses),
    );
    stats.insert(
        "specialized_filter(frame)",
        ColumnStats::categorical_from_counts(has_vehicle),
    );
}

/// Detector scores cluster in the upper half of `[0, 1]`.
fn score_stats() -> ColumnStats {
    ColumnStats::Numeric {
        min: 0.0,
        max: 1.0,
        buckets: vec![0.0, 0.0, 0.0, 0.0, 0.02, 0.05, 0.13, 0.2, 0.3, 0.3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_expr::Expr;
    use eva_symbolic::to_dnf;
    use eva_video::generator::generate;
    use eva_video::VideoConfig;

    fn dataset() -> VideoDataset {
        generate(VideoConfig {
            name: "t".into(),
            n_frames: 800,
            width: 100,
            height: 100,
            fps: 25.0,
            target_density: 5.0,
            person_fraction: 0.1,
            seed: 3,
        })
    }

    #[test]
    fn id_range_selectivity() {
        let mut s = StatsCatalog::new();
        build_stats(&dataset(), &mut s);
        let q = to_dnf(&Expr::col("id").lt(400)).unwrap();
        let sel = s.dnf_selectivity(&q);
        assert!((sel - 0.5).abs() < 0.05, "sel={sel}");
    }

    #[test]
    fn label_car_dominates() {
        let mut s = StatsCatalog::new();
        build_stats(&dataset(), &mut s);
        let car = to_dnf(&Expr::col("label").eq_val("car")).unwrap();
        let bus = to_dnf(&Expr::col("label").eq_val("bus")).unwrap();
        let sel_car = s.dnf_selectivity(&car);
        let sel_bus = s.dnf_selectivity(&bus);
        assert!(sel_car > 0.5, "car sel={sel_car}");
        assert!(sel_bus < sel_car);
    }

    #[test]
    fn area_threshold_selectivities_shrink() {
        let mut s = StatsCatalog::new();
        build_stats(&dataset(), &mut s);
        let sel_at = |t: f64| {
            let call = eva_expr::UdfCall::new("area", vec![Expr::col("frame"), Expr::col("bbox")]);
            let q = to_dnf(&Expr::cmp(
                Expr::Udf(call),
                eva_expr::CmpOp::Gt,
                Expr::lit(t),
            ))
            .unwrap();
            s.dnf_selectivity(&q)
        };
        let s15 = sel_at(0.15);
        let s30 = sel_at(0.30);
        assert!(s15 > s30, "{s15} vs {s30}");
        assert!(s30 > 0.0);
        assert!(s15 < 1.0);
    }

    #[test]
    fn cartype_uniformish() {
        let mut s = StatsCatalog::new();
        build_stats(&dataset(), &mut s);
        let call = eva_expr::UdfCall::new("CarType", vec![Expr::col("frame"), Expr::col("bbox")]);
        let q = to_dnf(&Expr::cmp(
            Expr::Udf(call),
            eva_expr::CmpOp::Eq,
            Expr::lit("Nissan"),
        ))
        .unwrap();
        let sel = s.dnf_selectivity(&q);
        assert!(sel > 0.05 && sel < 0.4, "sel={sel}");
    }
}
