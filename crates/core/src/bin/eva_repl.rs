//! An interactive EVA-QL shell.
//!
//! ```sh
//! cargo run --release -p eva-core --bin eva_repl
//! ```
//!
//! Meta commands: `\strategy eva|noreuse|hashstash|funcache`, `\explain
//! <query>`, `\analyze <query>`, `\trace`, `\stats`, `\metrics`, `\views`,
//! `\save <dir>`, `\load <dir>`, `\health`, `\reset`, `\help`, `\quit`.
//! Everything else is parsed as EVA-QL
//! (`LOAD VIDEO 'medium_ua_detrac' INTO video;` first).

use std::io::{BufRead, Write};

use eva_core::{EvaDb, SessionConfig, StatementResult};
use eva_planner::ReuseStrategy;

fn main() {
    let mut db = EvaDb::eva().expect("session");
    println!("EVA-RS interactive shell — \\help for commands.");
    println!("Try: LOAD VIDEO 'short_ua_detrac' INTO video;");
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("eva> ");
        std::io::stdout().flush().ok();
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        if let Some(cmd) = input.strip_prefix('\\') {
            if !meta_command(&mut db, cmd) {
                break;
            }
            continue;
        }
        match db.execute_sql(input) {
            Ok(StatementResult::Ack(msg)) => println!("ok: {msg}"),
            Ok(StatementResult::Rows(out)) => {
                let schema = out.batch.schema().clone();
                let header: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
                println!("{}", header.join(" | "));
                for row in out.batch.rows().iter().take(20) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                if out.n_rows() > 20 {
                    println!("… ({} rows total)", out.n_rows());
                }
                println!(
                    "[{} rows, {:.1}s simulated, {:.0}ms wall]",
                    out.n_rows(),
                    out.sim_secs(),
                    out.wall_ms
                );
            }
            Err(e) => match e.cancel_reason() {
                // Cancellation is lifecycle governance, not failure: report
                // the structured reason and keep the session alive.
                Some(reason) => eprintln!("cancelled ({reason}): {e}"),
                None => eprintln!("error: {e}"),
            },
        }
    }
}

/// Returns false to quit.
fn meta_command(db: &mut EvaDb, cmd: &str) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        "q" | "quit" | "exit" => return false,
        "help" => {
            println!("\\strategy eva|noreuse|hashstash|funcache — switch reuse strategy");
            println!("\\explain <select…> — show the physical plan");
            println!("\\analyze <select…> — run the query, show the annotated plan");
            println!("\\trace — span tree + latency histograms of the last query");
            println!("\\stats — per-UDF invocation statistics");
            println!("\\metrics — session runtime counters (probes, reuse, zero-copy)");
            println!("\\views — materialized view inventory");
            println!("\\save <dir> — persist views + aggregated predicates");
            println!("\\load <dir> — restore saved state (recovery pass)");
            println!("\\health — last \\load recovery outcome + governance (breaker, admission)");
            println!("\\reset — drop all reuse state");
            println!("\\quit — leave");
        }
        "strategy" => {
            let strategy = match parts.next().unwrap_or("") {
                "eva" => Some(ReuseStrategy::Eva),
                "noreuse" => Some(ReuseStrategy::NoReuse),
                "hashstash" => Some(ReuseStrategy::HashStash),
                "funcache" => Some(ReuseStrategy::FunCache),
                other => {
                    eprintln!("unknown strategy '{other}'");
                    None
                }
            };
            if let Some(s) = strategy {
                db.set_config(SessionConfig::for_strategy(s));
                println!("strategy set to {s:?}");
            }
        }
        "explain" => {
            let rest: Vec<&str> = parts.collect();
            match db.explain(&rest.join(" ")) {
                Ok(plan) => println!("{plan}"),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        "analyze" => {
            let rest: Vec<&str> = parts.collect();
            match db.explain_analyze_query(&rest.join(" ")) {
                Ok((plan, out)) => {
                    println!("{plan}");
                    println!(
                        "[{} rows, {:.1}s simulated, {:.0}ms wall, {:.1}% probe hits, \
                         {} UDF calls avoided]",
                        out.n_rows(),
                        out.sim_secs(),
                        out.wall_ms,
                        out.metrics.probe_hit_rate() * 100.0,
                        out.metrics.udf_calls_avoided
                    );
                }
                Err(e) => eprintln!("error: {e}"),
            }
        }
        "trace" => {
            let t = db.last_trace();
            if t.spans.is_empty() {
                println!("no query traced yet — run a SELECT first");
            } else {
                print!("{}", t.render());
                let hists = t.hists.render();
                if !hists.is_empty() {
                    println!("latency (this query):");
                    print!("{hists}");
                }
            }
            let session = db.session_latency().render();
            if !session.is_empty() {
                println!("latency (session):");
                print!("{session}");
            }
        }
        "metrics" => {
            let m = db.metrics_snapshot();
            println!(
                "udf calls: requested={} executed={} avoided={} ({:.1}s avoided)",
                m.udf_calls_requested,
                m.udf_calls_executed,
                m.udf_calls_avoided,
                m.udf_ms_avoided / 1000.0
            );
            println!(
                "view probes: {} ({} hits / {} misses, {} fuzzy, {:.1}% hit rate)",
                m.probes,
                m.probe_hits,
                m.probe_misses,
                m.fuzzy_hits,
                m.probe_hit_rate() * 100.0
            );
            println!(
                "rows: zero-copy={} view-read={} view-written={} frames-scanned={}",
                m.rows_served_zero_copy, m.view_rows_read, m.view_rows_written, m.frames_scanned
            );
            println!(
                "funcache: {} hits / {} misses; shard contention events: {}",
                m.funcache_hits, m.funcache_misses, m.shard_lock_contention
            );
            println!(
                "resilience: views recovered={} quarantined={}; udf retries={} gave-up={}",
                m.views_recovered, m.views_quarantined, m.udf_retries, m.udf_gave_up
            );
            println!(
                "columnar: batches={} rows={} pivoted={}",
                m.columnar_batches, m.columnar_rows, m.rows_pivoted
            );
            println!(
                "parallel: workers={} pipelines={} morsels={} stolen={}",
                m.n_workers, m.parallel_pipelines, m.morsels_dispatched, m.morsels_stolen
            );
            println!(
                "governance: degraded={} materialization-skipped={} breaker open/half-open={}/{} \
                 admitted={} shed={}",
                m.degraded_queries,
                m.materialization_skipped,
                m.udf_breaker_open,
                m.udf_breaker_halfopen,
                m.queries_admitted,
                m.queries_shed
            );
        }
        "stats" => {
            for (name, c) in db.invocation_stats().all() {
                println!(
                    "{name}: total={} distinct={} reused={} eval={:.1}s",
                    c.total_invocations,
                    c.distinct_inputs,
                    c.reused_invocations,
                    c.eval_ms / 1000.0
                );
            }
            println!("hit rate: {:.1}%", db.invocation_stats().hit_percentage());
            println!("simulated cost: {}", db.cost_snapshot());
        }
        "views" => {
            for def in db.storage().view_defs() {
                let keys = db.storage().view_n_keys(def.id).unwrap_or(0);
                println!("{} {} [{:?}] keys={keys}", def.id, def.name, def.key_kind);
            }
            println!(
                "total {:.2} MiB",
                db.storage().total_view_bytes() as f64 / (1024.0 * 1024.0)
            );
        }
        "save" => match parts.next() {
            Some(dir) => match db.save_state(std::path::Path::new(dir)) {
                Ok(()) => println!("saved {} view(s) to {dir}", db.storage().view_defs().len()),
                Err(e) => eprintln!("error: {e}"),
            },
            None => eprintln!("usage: \\save <dir>"),
        },
        "load" => match parts.next() {
            Some(dir) => match db.load_state(std::path::Path::new(dir)) {
                Ok(report) => println!("{}", report.summary()),
                Err(e) => eprintln!("error: {e}"),
            },
            None => eprintln!("usage: \\load <dir>"),
        },
        "health" => {
            match db.health_report() {
                Some(report) => {
                    println!("{}", report.summary());
                    if report.is_clean() {
                        println!("store is healthy — nothing quarantined or worked around");
                    }
                }
                None => println!("no \\load has run in this session"),
            }
            print!("{}", db.governance_report());
        }
        "reset" => {
            db.reset_reuse_state();
            println!("reuse state cleared");
        }
        other => eprintln!("unknown command '\\{other}' (\\help)"),
    }
    true
}
