//! # eva-core
//!
//! The EVA-RS façade: [`EvaDb`] wires the parser, binder, optimizer,
//! execution engine, catalog, storage, UDF manager and statistics into one
//! session object implementing the query lifecycle of Fig. 1:
//!
//! ```text
//! EVA-QL ──parse──▶ AST ──bind──▶ logical plan ──optimize──▶ physical plan
//!        ──execute──▶ rows + per-category simulated-time breakdown
//! ```
//!
//! Sessions are parameterized by a [`SessionConfig`] selecting the reuse
//! strategy (EVA / No-Reuse / HashStash / FunCache) and the ranking function,
//! which is how the evaluation's systems-under-test are instantiated.

pub mod admission;
pub mod analyze;
pub mod session;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionPermit, AdmissionSnapshot};
pub use analyze::build_stats;
pub use session::{EvaDb, SessionConfig, StatementResult};

// Re-exported so width-pinning callers of `execute_select_with_pool` (the
// differential fuzzer, scaling benchmarks) need no direct eva-exec dep.
pub use eva_exec::WorkerPool;
