//! Ground-truth object and frame metadata types.

use serde::{Deserialize, Serialize};
use std::fmt;

use eva_common::{BBox, FrameId};

/// Object classes present in the synthetic videos. Mirrors the label set the
/// paper's detectors produce over traffic footage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Passenger car (the class every benchmark query filters on).
    Car,
    /// Bus.
    Bus,
    /// Truck.
    Truck,
    /// Motorbike.
    Motorbike,
    /// Pedestrian.
    Person,
}

impl ObjectClass {
    /// The label string detectors emit for this class.
    pub fn label(&self) -> &'static str {
        match self {
            ObjectClass::Car => "car",
            ObjectClass::Bus => "bus",
            ObjectClass::Truck => "truck",
            ObjectClass::Motorbike => "motorbike",
            ObjectClass::Person => "person",
        }
    }

    /// All classes.
    pub const ALL: [ObjectClass; 5] = [
        ObjectClass::Car,
        ObjectClass::Bus,
        ObjectClass::Truck,
        ObjectClass::Motorbike,
        ObjectClass::Person,
    ];
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Vehicle makes recognized by the CarType UDF.
pub const CAR_TYPES: [&str; 6] = ["Nissan", "Toyota", "Honda", "Ford", "BMW", "Chevrolet"];

/// Vehicle colors recognized by the ColorDet UDF.
pub const COLORS: [&str; 6] = ["Gray", "Red", "Black", "White", "Blue", "Silver"];

/// One ground-truth object instance in one frame. The same `track_id`
/// appears across consecutive frames with a smoothly moving bounding box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackedObject {
    /// Stable identity across frames.
    pub track_id: u64,
    /// Object class.
    pub class: ObjectClass,
    /// Vehicle make (vehicles only; `None` for persons).
    pub car_type: Option<String>,
    /// Dominant color.
    pub color: String,
    /// License plate (vehicles only).
    pub license: Option<String>,
    /// Bounding box in relative coordinates.
    pub bbox: BBox,
    /// Visibility in `[0.35, 1.0]`; low visibility raises the chance that a
    /// low-accuracy detector misses the object.
    pub visibility: f32,
}

impl TrackedObject {
    /// Is this a vehicle (car/bus/truck/motorbike)?
    pub fn is_vehicle(&self) -> bool {
        !matches!(self.class, ObjectClass::Person)
    }
}

/// Ground-truth metadata for one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameMeta {
    /// Dense frame id, ordered by time.
    pub id: FrameId,
    /// Milliseconds since the start of the video.
    pub timestamp_ms: i64,
    /// Objects present in this frame.
    pub objects: Vec<TrackedObject>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_lowercase_and_distinct() {
        let mut labels: Vec<&str> = ObjectClass::ALL.iter().map(|c| c.label()).collect();
        assert!(labels
            .iter()
            .all(|l| l.chars().all(|c| c.is_ascii_lowercase())));
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ObjectClass::ALL.len());
    }

    #[test]
    fn vehicle_classification() {
        let obj = TrackedObject {
            track_id: 1,
            class: ObjectClass::Person,
            car_type: None,
            color: "Gray".into(),
            license: None,
            bbox: BBox::new(0.0, 0.0, 0.1, 0.1),
            visibility: 1.0,
        };
        assert!(!obj.is_vehicle());
        let car = TrackedObject {
            class: ObjectClass::Car,
            ..obj
        };
        assert!(car.is_vehicle());
    }
}
