//! # eva-video
//!
//! The synthetic video substrate.
//!
//! The paper evaluates on UA-DETRAC (960×540, ~8.3 vehicles/frame) and the
//! Jackson night-street video (600×400, ~0.1 vehicles/frame). Neither dataset
//! nor any video decoding stack is available here, so this crate generates
//! **deterministic synthetic videos**: seeded vehicle *tracks* (persistent
//! objects with a type, color, license plate and a moving bounding box)
//! flowing through frames at configurable density.
//!
//! EVA's reuse algorithm never inspects pixels — every decision depends only
//! on per-frame object metadata, frame counts and object densities — so a
//! generator matching the papers' densities and lengths preserves the
//! workload shape (DESIGN.md §1 records this substitution).

pub mod dataset;
pub mod generator;
pub mod ground_truth;

pub use dataset::{DatasetStats, VideoConfig, VideoDataset};
pub use generator::{jackson, ua_detrac, UaDetracSize};
pub use ground_truth::{FrameMeta, ObjectClass, TrackedObject};
