//! Dataset container and statistics.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use eva_common::FrameId;

use crate::ground_truth::FrameMeta;

/// Configuration of a synthetic video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Dataset name (used as the default table name).
    pub name: String,
    /// Number of frames.
    pub n_frames: u64,
    /// Frame width in pixels (drives the FunCache hash-cost model).
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frames per second (drives timestamps).
    pub fps: f64,
    /// Target mean number of vehicles per frame.
    pub target_density: f64,
    /// Fraction of objects that are pedestrians rather than vehicles.
    pub person_fraction: f64,
    /// RNG seed — same seed, same video.
    pub seed: u64,
}

/// Aggregate statistics of a generated dataset (Fig. 12 reports
/// vehicles/frame alongside speedups).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of frames.
    pub n_frames: u64,
    /// Total object instances across frames.
    pub total_objects: u64,
    /// Total *vehicle* instances across frames.
    pub total_vehicles: u64,
    /// Mean vehicles per frame.
    pub vehicles_per_frame: f64,
    /// Uncompressed frame payload size in bytes (W×H×3) — the quantity the
    /// FunCache baseline pays to hash.
    pub frame_bytes: u64,
}

/// A fully generated synthetic video: per-frame ground truth plus the
/// deterministic pixel-digest generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VideoDataset {
    config: VideoConfig,
    frames: Vec<FrameMeta>,
}

impl VideoDataset {
    /// Assemble from generated frames (used by [`crate::generator`]).
    pub(crate) fn new(config: VideoConfig, frames: Vec<FrameMeta>) -> VideoDataset {
        debug_assert_eq!(frames.len() as u64, config.n_frames);
        VideoDataset { config, frames }
    }

    /// The configuration.
    pub fn config(&self) -> &VideoConfig {
        &self.config
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Number of frames.
    pub fn len(&self) -> u64 {
        self.frames.len() as u64
    }

    /// True when there are no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// All frames in id order.
    pub fn frames(&self) -> &[FrameMeta] {
        &self.frames
    }

    /// One frame's ground truth.
    pub fn frame(&self, id: FrameId) -> Option<&FrameMeta> {
        self.frames.get(id.raw() as usize)
    }

    /// Uncompressed per-frame payload size (W×H×3 bytes).
    pub fn frame_bytes(&self) -> u64 {
        self.config.width as u64 * self.config.height as u64 * 3
    }

    /// A small deterministic stand-in for the frame's pixel content. The
    /// FunCache baseline hashes this digest but is *charged* for hashing the
    /// full `frame_bytes()` payload, preserving the paper's overhead model.
    pub fn frame_digest(&self, id: FrameId) -> Bytes {
        const DIGEST_LEN: usize = 256;
        let mut out = Vec::with_capacity(DIGEST_LEN);
        // SplitMix64 stream keyed by (seed, frame id).
        let mut state = self
            .config
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(id.raw().wrapping_mul(0xBF58476D1CE4E5B9));
        while out.len() < DIGEST_LEN {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            out.extend_from_slice(&z.to_le_bytes());
        }
        Bytes::from(out)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DatasetStats {
        let total_objects: u64 = self.frames.iter().map(|f| f.objects.len() as u64).sum();
        let total_vehicles: u64 = self
            .frames
            .iter()
            .map(|f| f.objects.iter().filter(|o| o.is_vehicle()).count() as u64)
            .sum();
        DatasetStats {
            n_frames: self.len(),
            total_objects,
            total_vehicles,
            vehicles_per_frame: if self.frames.is_empty() {
                0.0
            } else {
                total_vehicles as f64 / self.frames.len() as f64
            },
            frame_bytes: self.frame_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{jackson, ua_detrac, UaDetracSize};

    #[test]
    fn digest_is_deterministic_and_frame_sensitive() {
        let v = jackson(7);
        let a1 = v.frame_digest(FrameId(0));
        let a2 = v.frame_digest(FrameId(0));
        let b = v.frame_digest(FrameId(1));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.len(), 256);
    }

    #[test]
    fn digest_depends_on_seed() {
        let v1 = jackson(1);
        let v2 = jackson(2);
        assert_ne!(v1.frame_digest(FrameId(5)), v2.frame_digest(FrameId(5)));
    }

    #[test]
    fn frame_bytes_matches_resolution() {
        let v = ua_detrac(UaDetracSize::Short, 3);
        assert_eq!(v.frame_bytes(), 960 * 540 * 3);
        let j = jackson(3);
        assert_eq!(j.frame_bytes(), 600 * 400 * 3);
    }

    #[test]
    fn frame_lookup() {
        let v = jackson(3);
        assert!(v.frame(FrameId(0)).is_some());
        assert!(v.frame(FrameId(v.len())).is_none());
        assert_eq!(v.frame(FrameId(10)).unwrap().id, FrameId(10));
    }
}
