//! Seeded track-based video generation.
//!
//! Objects enter the scene as *tracks* — persistent identities with a class,
//! make, color, license plate, a bounding box and a velocity — move smoothly
//! across frames, and leave. Track turnover and density are tuned so the
//! generated datasets match the statistics the paper reports for UA-DETRAC
//! and Jackson (vehicles/frame, resolution, frame counts).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use eva_common::{BBox, FrameId};

use crate::dataset::{VideoConfig, VideoDataset};
use crate::ground_truth::{FrameMeta, ObjectClass, TrackedObject, CAR_TYPES, COLORS};

/// UA-DETRAC variants from §5.5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UaDetracSize {
    /// 5 clips, 7.5k frames.
    Short,
    /// 10 clips, 14k frames — the default dataset of the evaluation.
    Medium,
    /// 20 clips, 28k frames.
    Long,
}

impl UaDetracSize {
    /// Frame count for the variant.
    pub fn n_frames(&self) -> u64 {
        match self {
            UaDetracSize::Short => 7_500,
            UaDetracSize::Medium => 14_000,
            UaDetracSize::Long => 28_000,
        }
    }

    /// Target vehicles/frame. The paper notes LONG has slightly more
    /// vehicles per frame than the others (Fig. 12's right axis).
    pub fn density(&self) -> f64 {
        match self {
            UaDetracSize::Short => 7.9,
            UaDetracSize::Medium => 8.3,
            UaDetracSize::Long => 8.8,
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &'static str {
        match self {
            UaDetracSize::Short => "short_ua_detrac",
            UaDetracSize::Medium => "medium_ua_detrac",
            UaDetracSize::Long => "long_ua_detrac",
        }
    }
}

/// Generate a UA-DETRAC-like dataset (960×540 traffic-camera footage with
/// dense vehicle traffic).
pub fn ua_detrac(size: UaDetracSize, seed: u64) -> VideoDataset {
    generate(VideoConfig {
        name: size.name().to_string(),
        n_frames: size.n_frames(),
        width: 960,
        height: 540,
        fps: 25.0,
        target_density: size.density(),
        person_fraction: 0.05,
        seed,
    })
}

/// Generate a Jackson-like dataset (600×400 night street, 14k frames,
/// ~0.1 vehicles per frame).
pub fn jackson(seed: u64) -> VideoDataset {
    generate(VideoConfig {
        name: "jackson".to_string(),
        n_frames: 14_000,
        width: 600,
        height: 400,
        fps: 30.0,
        target_density: 0.1,
        person_fraction: 0.15,
        seed,
    })
}

/// A live track during generation.
struct Track {
    obj: TrackedObject,
    vx: f32,
    vy: f32,
    frames_left: u32,
}

/// Generate a dataset from an arbitrary configuration.
pub fn generate(config: VideoConfig) -> VideoDataset {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xEAA0_51D0);
    let mut frames = Vec::with_capacity(config.n_frames as usize);
    let mut tracks: Vec<Track> = Vec::new();
    let mut next_track_id: u64 = 1;

    // With mean density D and mean track lifetime L frames, the spawn rate
    // per frame that sustains D is D / L.
    let spawn_rate = config.target_density / MEAN_LIFETIME;

    // Warm up so frame 0 already carries steady-state density.
    let warmup = (MEAN_LIFETIME * 1.5) as u64;
    let frame_interval_ms = (1000.0 / config.fps) as i64;

    for step in 0..(warmup + config.n_frames) {
        // Advance existing tracks.
        tracks.retain_mut(|t| {
            if t.frames_left == 0 {
                return false;
            }
            t.frames_left -= 1;
            let b = t.obj.bbox;
            let nb = BBox::new(b.x1 + t.vx, b.y1 + t.vy, b.x2 + t.vx, b.y2 + t.vy);
            // Drop tracks that have fully left the unit square.
            if nb.x2 < 0.0 || nb.x1 > 1.0 || nb.y2 < 0.0 || nb.y1 > 1.0 {
                return false;
            }
            t.obj.bbox = nb.clamped();
            true
        });

        // Spawn new tracks (Bernoulli splitting of a Poisson process).
        let mut expected = spawn_rate;
        while expected > 0.0 {
            let p = expected.min(1.0);
            if rng.gen_bool(p) {
                tracks.push(spawn_track(&mut rng, &config, &mut next_track_id));
            }
            expected -= 1.0;
        }

        if step >= warmup {
            let id = step - warmup;
            frames.push(FrameMeta {
                id: FrameId(id),
                timestamp_ms: id as i64 * frame_interval_ms,
                objects: tracks.iter().map(|t| t.obj.clone()).collect(),
            });
        }
    }

    VideoDataset::new(config, frames)
}

fn spawn_track(rng: &mut SmallRng, config: &VideoConfig, next_id: &mut u64) -> Track {
    let track_id = *next_id;
    *next_id += 1;

    let is_person = rng.gen_bool(config.person_fraction);
    let class = if is_person {
        ObjectClass::Person
    } else {
        // Traffic mix: mostly cars.
        match rng.gen_range(0..100) {
            0..=79 => ObjectClass::Car,
            80..=89 => ObjectClass::Truck,
            90..=95 => ObjectClass::Bus,
            _ => ObjectClass::Motorbike,
        }
    };

    // Box size: log-uniform linear scale in [0.10, 0.95]. Chosen so the
    // paper's area thresholds select meaningful fractions (area > 0.3 ≈ 24%,
    // > 0.25 ≈ 29%, > 0.15 ≈ 40% of boxes) and the box-level UDFs dominate
    // invocation counts the way Table 3 reports (CarType #TI ≈ 6× detector).
    let scale = (0.10f32.ln() + rng.gen::<f32>() * (0.95f32.ln() - 0.10f32.ln())).exp();
    let aspect = rng.gen_range(0.6..1.6f32);
    let w = (scale * aspect.sqrt()).min(0.95);
    let h = (scale / aspect.sqrt()).min(0.95);
    let x1 = rng.gen_range(0.0..(1.0 - w));
    let y1 = rng.gen_range(0.0..(1.0 - h));

    let car_type = if is_person {
        None
    } else {
        Some(CAR_TYPES[rng.gen_range(0..CAR_TYPES.len())].to_string())
    };
    let color = COLORS[rng.gen_range(0..COLORS.len())].to_string();
    let license = if is_person {
        None
    } else {
        Some(gen_license(rng))
    };

    Track {
        obj: TrackedObject {
            track_id,
            class,
            car_type,
            color,
            license,
            bbox: BBox::new(x1, y1, x1 + w, y1 + h),
            visibility: rng.gen_range(0.35..1.0),
        },
        vx: rng.gen_range(-0.004..0.004),
        vy: rng.gen_range(-0.004..0.004),
        frames_left: rng.gen_range((MEAN_LIFETIME as u32 / 2)..(MEAN_LIFETIME as u32 * 2)),
    }
}

/// Mean track lifetime in frames.
const MEAN_LIFETIME: f64 = 120.0;

fn gen_license(rng: &mut SmallRng) -> String {
    let letters: String = (0..3)
        .map(|_| (b'A' + rng.gen_range(0..26u8)) as char)
        .collect();
    let digits: String = (0..3)
        .map(|_| (b'0' + rng.gen_range(0..10u8)) as char)
        .collect();
    format!("{letters}{digits}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ua(seed: u64) -> VideoDataset {
        generate(VideoConfig {
            name: "test".into(),
            n_frames: 500,
            width: 960,
            height: 540,
            fps: 25.0,
            target_density: 8.3,
            person_fraction: 0.05,
            seed,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_ua(42);
        let b = small_ua(42);
        assert_eq!(a.frames(), b.frames());
        let c = small_ua(43);
        assert_ne!(a.frames(), c.frames());
    }

    #[test]
    fn density_close_to_target() {
        let v = small_ua(7);
        let stats = v.stats();
        assert!(
            (stats.vehicles_per_frame - 8.3).abs() < 2.0,
            "vehicles/frame = {}",
            stats.vehicles_per_frame
        );
    }

    #[test]
    fn jackson_is_sparse() {
        let v = jackson(11);
        let stats = v.stats();
        assert!(
            stats.vehicles_per_frame < 0.5,
            "jackson vehicles/frame = {}",
            stats.vehicles_per_frame
        );
        assert_eq!(stats.n_frames, 14_000);
    }

    #[test]
    fn ua_detrac_sizes() {
        assert_eq!(UaDetracSize::Short.n_frames(), 7_500);
        assert_eq!(UaDetracSize::Medium.n_frames(), 14_000);
        assert_eq!(UaDetracSize::Long.n_frames(), 28_000);
        assert!(UaDetracSize::Long.density() > UaDetracSize::Medium.density());
    }

    #[test]
    fn tracks_persist_and_move_smoothly() {
        let v = small_ua(3);
        // Find a track spanning two consecutive frames and verify its boxes
        // overlap strongly (smooth motion).
        let mut found = 0;
        for w in v.frames().windows(2) {
            for o in &w[0].objects {
                if let Some(o2) = w[1].objects.iter().find(|p| p.track_id == o.track_id) {
                    assert!(
                        o.bbox.iou(&o2.bbox) > 0.5,
                        "track {} jumped: {} → {}",
                        o.track_id,
                        o.bbox,
                        o2.bbox
                    );
                    // Attributes are stable along the track.
                    assert_eq!(o.car_type, o2.car_type);
                    assert_eq!(o.color, o2.color);
                    assert_eq!(o.license, o2.license);
                    found += 1;
                }
            }
            if found > 200 {
                break;
            }
        }
        assert!(found > 50, "expected persistent tracks, found {found}");
    }

    #[test]
    fn timestamps_monotone() {
        let v = small_ua(5);
        for w in v.frames().windows(2) {
            assert!(w[1].timestamp_ms > w[0].timestamp_ms);
        }
        assert_eq!(v.frames()[0].timestamp_ms, 0);
    }

    #[test]
    fn area_thresholds_are_selective() {
        // The benchmark predicates area>0.15 / 0.25 / 0.3 must each select a
        // nonempty, strictly-shrinking subset of vehicle boxes.
        let v = small_ua(9);
        let mut counts = [0usize; 3];
        let mut total = 0usize;
        for f in v.frames() {
            for o in &f.objects {
                total += 1;
                let a = o.bbox.area();
                if a > 0.15 {
                    counts[0] += 1;
                }
                if a > 0.25 {
                    counts[1] += 1;
                }
                if a > 0.3 {
                    counts[2] += 1;
                }
            }
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        assert!(counts[2] > 0);
        assert!(counts[0] < total);
    }

    #[test]
    fn license_format() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let l = gen_license(&mut rng);
            assert_eq!(l.len(), 6);
            assert!(l[..3].chars().all(|c| c.is_ascii_uppercase()));
            assert!(l[3..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn attribute_diversity() {
        let v = small_ua(13);
        let mut types = std::collections::BTreeSet::new();
        let mut colors = std::collections::BTreeSet::new();
        for f in v.frames().iter().take(50) {
            for o in &f.objects {
                if let Some(t) = &o.car_type {
                    types.insert(t.clone());
                }
                colors.insert(o.color.clone());
            }
        }
        assert!(types.len() >= 4, "types: {types:?}");
        assert!(colors.len() >= 4, "colors: {colors:?}");
    }
}
