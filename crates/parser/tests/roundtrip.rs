//! AST-first round-trip property: for an arbitrary well-formed
//! [`SelectStmt`] *value*, `parse(stmt.to_string())` must yield exactly
//! `stmt` back.
//!
//! This is strictly stronger than the print→parse fixed point in
//! `properties.rs` (which only shows printing is *stable*, not that it is
//! *faithful*): starting from the AST catches printers that lose
//! information the parser normalizes away, and parsers that mangle valid
//! prints (precedence, quoting, sign handling). It also underwrites the
//! differential fuzzer, whose shrinker mutates ASTs and re-prints them.
//!
//! The generator only emits *canonical* ASTs — the forms `parse` itself
//! produces (lowercase identifiers and UDF names, uppercase accuracy
//! levels) — since non-canonical spellings are normalized by the parser by
//! design and cannot round-trip.

use proptest::prelude::*;

use eva_common::Value;
use eva_expr::{AggFunc, CmpOp, Expr, UdfCall};
use eva_parser::{parse, ApplyClause, SelectItem, SelectStmt, SortOrder, Statement};

const COLS: &[&str] = &[
    "id",
    "ts",
    "frame",
    "label",
    "bbox",
    "score",
    "cam_id",
    "lane",
    "plate_text",
    "speed",
];
const UDFS: &[&str] = &["yolo_tiny", "cartype", "colordet", "my_udf"];
const TABLES: &[&str] = &["video", "traffic", "cams"];
const ALIASES: &[&str] = &["a", "b", "total", "hits"];
const ACCURACIES: &[&str] = &["LOW", "MEDIUM", "HIGH"];
const AGGS: &[AggFunc] = &[
    AggFunc::Count,
    AggFunc::Sum,
    AggFunc::Min,
    AggFunc::Max,
    AggFunc::Avg,
];
const CMPS: &[CmpOp] = &[
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

fn arb_col() -> impl Strategy<Value = Expr> {
    prop::sample::select(COLS).prop_map(Expr::col)
}

fn arb_literal() -> impl Strategy<Value = Expr> {
    // Ranges stay well inside what the lexer can re-read: `i64::MIN` has no
    // positive counterpart, and non-ASCII strings would be mangled by the
    // byte-wise string scanner. The float range still exercises negative,
    // integral ("2.0") and long-decimal-expansion values.
    prop_oneof![
        (-1_000_000i64..=1_000_000).prop_map(|v| Expr::Literal(Value::Int(v))),
        (-1.0e6..1.0e6f64).prop_map(|v| Expr::Literal(Value::Float(v))),
        "[a-zA-Z0-9_ .,'-]{0,12}".prop_map(|s| Expr::Literal(Value::Str(s))),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
    ]
}

fn arb_udf_call() -> impl Strategy<Value = Expr> {
    let arg = prop_oneof![arb_col(), arb_literal()];
    (
        prop::sample::select(UDFS),
        prop::collection::vec(arg, 1..=3),
        prop::option::of(prop::sample::select(ACCURACIES)),
    )
        .prop_map(|(name, args, acc)| {
            let call = UdfCall::new(name, args);
            Expr::Udf(match acc {
                Some(a) => call.with_accuracy(a),
                None => call,
            })
        })
}

fn arb_agg() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Agg {
            func: AggFunc::Count,
            arg: None,
        }),
        (prop::sample::select(AGGS), prop::sample::select(COLS)).prop_map(|(func, c)| Expr::Agg {
            func,
            arg: Some(Box::new(Expr::col(c))),
        }),
    ]
}

/// Value-level expressions — anything legal as a comparison operand or a
/// projection item. Deliberately excludes Cmp/And/Or/Not: those are
/// predicates, and the grammar (like SQL's) does not allow a bare
/// predicate as a comparison operand.
fn arb_value_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        4 => arb_col(),
        4 => arb_literal(),
        2 => arb_udf_call(),
        1 => arb_agg(),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        4 => (arb_value_expr(), prop::sample::select(CMPS), arb_value_expr())
            .prop_map(|(l, op, r)| Expr::cmp(l, op, r)),
        1 => (arb_value_expr(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
            expr: Box::new(e),
            negated,
        }),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|e| e.not()),
        ]
    })
}

fn arb_select_item() -> impl Strategy<Value = Expr> {
    arb_value_expr()
}

fn arb_projection() -> impl Strategy<Value = Vec<SelectItem>> {
    prop_oneof![
        1 => Just(vec![SelectItem::Wildcard]),
        4 => prop::collection::vec(
            (arb_select_item(), prop::option::of(prop::sample::select(ALIASES))),
            1..=3,
        )
        .prop_map(|items| {
            items
                .into_iter()
                .map(|(expr, alias)| SelectItem::Expr {
                    expr,
                    alias: alias.map(str::to_string),
                })
                .collect()
        }),
    ]
}

fn arb_apply() -> impl Strategy<Value = ApplyClause> {
    (
        prop::sample::select(UDFS),
        prop::collection::vec(arb_col(), 1..=2),
        prop::option::of(prop::sample::select(ACCURACIES)),
    )
        .prop_map(|(name, args, acc)| {
            let call = UdfCall::new(name, args);
            ApplyClause {
                udf: match acc {
                    Some(a) => call.with_accuracy(a),
                    None => call,
                },
            }
        })
}

fn arb_select() -> impl Strategy<Value = SelectStmt> {
    (
        arb_projection(),
        prop::sample::select(TABLES),
        prop::collection::vec(arb_apply(), 0..=2),
        prop::option::of(arb_predicate()),
        prop::collection::vec(prop::sample::select(COLS), 0..=2),
        prop::collection::vec((prop::sample::select(COLS), any::<bool>()), 0..=2),
        prop::option::of(0u64..=50),
    )
        .prop_map(
            |(projection, from, applies, where_clause, group_by, order_by, limit)| SelectStmt {
                projection,
                from: from.to_string(),
                applies,
                where_clause,
                group_by: group_by.into_iter().map(str::to_string).collect(),
                order_by: order_by
                    .into_iter()
                    .map(|(c, desc)| {
                        (
                            c.to_string(),
                            if desc {
                                SortOrder::Desc
                            } else {
                                SortOrder::Asc
                            },
                        )
                    })
                    .collect(),
                limit,
            },
        )
}

fn reparse(stmt: &SelectStmt) -> Result<SelectStmt, String> {
    let sql = stmt.to_string();
    match parse(&sql) {
        Ok(Statement::Select(s)) => Ok(s),
        Ok(other) => Err(format!("`{sql}` parsed as non-SELECT {other:?}")),
        Err(e) => Err(format!("`{sql}` failed to parse: {e}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_select_round_trips(stmt in arb_select()) {
        match reparse(&stmt) {
            Ok(parsed) => prop_assert_eq!(&parsed, &stmt, "sql: {}", stmt.to_string()),
            Err(e) => prop_assert!(false, "{}", e),
        }
    }
}

/// Deterministic pins for the literal spellings that historically break
/// printer/parser pairs.
#[test]
fn tricky_literals_round_trip() {
    let lits = [
        Value::Int(-7),
        Value::Int(0),
        Value::Float(-0.5),
        Value::Float(2.0),  // must print "2.0", not "2"
        Value::Float(-3.0), // negative *and* integral
        Value::Float(0.30000000000000004),
        Value::Str("it's".to_string()), // quote-escaping
        Value::Str(String::new()),
        Value::Str("-- not a comment".to_string()),
        Value::Bool(true),
        Value::Bool(false),
    ];
    for lit in lits {
        let stmt = SelectStmt {
            projection: vec![SelectItem::Expr {
                expr: Expr::col("id"),
                alias: None,
            }],
            from: "video".to_string(),
            applies: Vec::new(),
            where_clause: Some(Expr::cmp(
                Expr::col("label"),
                CmpOp::Ne,
                Expr::Literal(lit.clone()),
            )),
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        };
        let parsed = reparse(&stmt).unwrap_or_else(|e| panic!("literal {lit:?}: {e}"));
        assert_eq!(parsed, stmt, "literal {lit:?}");
    }
}

/// Predicate operators on the left of a comparison (a negative literal
/// opening a WHERE clause exercises the lexer's sign handling).
#[test]
fn negative_literal_in_lhs_round_trips() {
    let stmt = SelectStmt {
        projection: vec![SelectItem::Wildcard],
        from: "video".to_string(),
        applies: Vec::new(),
        where_clause: Some(Expr::cmp(
            Expr::Literal(Value::Int(-3)),
            CmpOp::Le,
            Expr::col("id"),
        )),
        group_by: Vec::new(),
        order_by: Vec::new(),
        limit: None,
    };
    assert_eq!(reparse(&stmt).expect("parses"), stmt);
}
