//! Property-based parser tests: printing a parsed statement and re-parsing
//! it must reach a fixed point, and random predicate strings built from the
//! grammar must parse.

use proptest::prelude::*;

use eva_parser::{parse, Statement};

fn arb_pred_text() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (
            prop::sample::select(vec!["id", "timestamp"]),
            0u32..10_000,
            prop::sample::select(vec!["<", "<=", ">", ">=", "=", "!="])
        )
            .prop_map(|(c, v, op)| format!("{c} {op} {v}")),
        prop::sample::select(vec!["label", "color"]).prop_flat_map(|c| {
            prop::sample::select(vec!["car", "bus", "red"])
                .prop_map(move |v| format!("{c} = '{v}'"))
        }),
        (0u32..100).prop_map(|v| format!("area(frame, bbox) > 0.{v:02}")),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} AND {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} OR {b})")),
            inner.prop_map(|a| format!("NOT ({a})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_predicates_parse(pred in arb_pred_text()) {
        let sql = format!(
            "SELECT id FROM video CROSS APPLY det(frame) WHERE {pred}"
        );
        let stmt = parse(&sql);
        prop_assert!(stmt.is_ok(), "failed on {sql}: {:?}", stmt.err());
    }

    #[test]
    fn print_parse_fixed_point(pred in arb_pred_text(), limit in proptest::option::of(0u64..100)) {
        let mut sql = format!(
            "SELECT id, bbox FROM video CROSS APPLY det(frame) ACCURACY 'HIGH' WHERE {pred}"
        );
        if let Some(l) = limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        let s1 = match parse(&sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        let printed = s1.to_string();
        let s2 = match parse(&printed).unwrap() {
            Statement::Select(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        prop_assert_eq!(s1, s2, "printed: {}", printed);
    }

    #[test]
    fn garbage_suffix_is_rejected(pred in arb_pred_text()) {
        let sql = format!("SELECT id FROM t WHERE {pred} EXTRA tokens");
        prop_assert!(parse(&sql).is_err());
    }
}
