//! # eva-parser
//!
//! Hand-written lexer and recursive-descent parser for **EVA-QL**, the
//! declarative query language of the paper (§3.3): `SELECT … FROM … CROSS
//! APPLY <udf>(…) [ACCURACY '<level>'] WHERE …`, `CREATE [OR REPLACE] UDF`
//! (Listing 2), `LOAD VIDEO`, `SHOW`, and `DROP`. The paper uses Antlr; this
//! implementation is dependency-free and error-reports with byte offsets.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    ApplyClause, CreateUdfStmt, LoadVideoStmt, SelectItem, SelectStmt, SortOrder, Statement,
};
pub use parser::{parse, parse_many};
