//! Hand-written lexer for EVA-QL.

use eva_common::{EvaError, Result};
use std::fmt;

/// A lexical token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind + payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Token kinds. Keywords are recognized case-insensitively and carried
/// upper-cased in `Keyword`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Reserved word (SELECT, FROM, WHERE, …).
    Keyword(String),
    /// Identifier (table/column/UDF name), original case preserved.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (unescaped content).
    Str(String),
    /// Punctuation / operator.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.`
    Dot,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "keyword {k}"),
            TokenKind::Ident(i) => write!(f, "identifier '{i}'"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Symbol(s) => write!(f, "symbol {s:?}"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Reserved words of EVA-QL.
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "CROSS",
    "APPLY",
    "ACCURACY",
    "AND",
    "OR",
    "NOT",
    "GROUP",
    "BY",
    "ORDER",
    "LIMIT",
    "ASC",
    "DESC",
    "AS",
    "CREATE",
    "REPLACE",
    "UDF",
    "INPUT",
    "OUTPUT",
    "IMPL",
    "LOGICAL_TYPE",
    "PROPERTIES",
    "LOAD",
    "VIDEO",
    "INTO",
    "SHOW",
    "UDFS",
    "TABLES",
    "DROP",
    "TABLE",
    "TRUE",
    "FALSE",
    "IS",
    "NULL",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
];

/// Tokenize EVA-QL source.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' if bytes
                .get(i + 1)
                .map(|b| b.is_ascii_digit())
                .unwrap_or(false) =>
            {
                // Negative numeric literal. EVA-QL has no arithmetic, so a
                // `-` that is not a comment can only introduce a signed
                // number.
                let start = i;
                let mut j = i + 1;
                let mut is_float = false;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || (bytes[j] == b'.'
                            && !is_float
                            && bytes
                                .get(j + 1)
                                .map(|b| b.is_ascii_digit())
                                .unwrap_or(false)))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &src[start..j];
                let kind =
                    if is_float {
                        TokenKind::Float(text.parse().map_err(|_| {
                            EvaError::Parse(format!("invalid float literal '{text}'"))
                        })?)
                    } else {
                        TokenKind::Int(text.parse().map_err(|_| {
                            EvaError::Parse(format!("invalid integer literal '{text}'"))
                        })?)
                    };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(Symbol::LParen),
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(Symbol::RParen),
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(Symbol::Comma),
                    offset: i,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(Symbol::Semicolon),
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(Symbol::Star),
                    offset: i,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(Symbol::Dot),
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(Symbol::Eq),
                    offset: i,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(Symbol::Ne),
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(EvaError::Parse(format!("unexpected '!' at offset {i}")));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(Symbol::Le),
                        offset: i,
                    });
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(Symbol::Ne),
                        offset: i,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(Symbol::Lt),
                        offset: i,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(Symbol::Ge),
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(Symbol::Gt),
                        offset: i,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                let mut content = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(EvaError::Parse(format!(
                            "unterminated string starting at offset {i}"
                        )));
                    }
                    if bytes[j] == b'\'' {
                        // '' escapes a quote.
                        if bytes.get(j + 1) == Some(&b'\'') {
                            content.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    content.push(bytes[j] as char);
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Str(content),
                    offset: i,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || (bytes[j] == b'.'
                            && !is_float
                            && bytes
                                .get(j + 1)
                                .map(|b| b.is_ascii_digit())
                                .unwrap_or(false)))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &src[start..j];
                let kind =
                    if is_float {
                        TokenKind::Float(text.parse().map_err(|_| {
                            EvaError::Parse(format!("invalid float literal '{text}'"))
                        })?)
                    } else {
                        TokenKind::Int(text.parse().map_err(|_| {
                            EvaError::Parse(format!("invalid integer literal '{text}'"))
                        })?)
                    };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let text = &src[start..j];
                let upper = text.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(text.to_string())
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(EvaError::Parse(format!(
                    "unexpected character '{other}' at offset {i}"
                )))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        let ks = kinds("select FROM WhErE");
        assert_eq!(
            ks[..3],
            [
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Keyword("WHERE".into())
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        let ks = kinds("CarType my_video");
        assert_eq!(ks[0], TokenKind::Ident("CarType".into()));
        assert_eq!(ks[1], TokenKind::Ident("my_video".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("0.3")[0], TokenKind::Float(0.3));
        assert_eq!(kinds("10000")[0], TokenKind::Int(10000));
        // "1.x" lexes as Int(1), Dot, Ident(x) rather than a malformed float.
        let ks = kinds("1.x");
        assert_eq!(ks[0], TokenKind::Int(1));
        assert_eq!(ks[1], TokenKind::Symbol(Symbol::Dot));
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(kinds("-7")[0], TokenKind::Int(-7));
        assert_eq!(kinds("-0.5")[0], TokenKind::Float(-0.5));
        // Comments still win over signs.
        assert_eq!(kinds("-- note\n-3")[0], TokenKind::Int(-3));
        // A bare '-' not followed by a digit is still rejected.
        assert!(tokenize("a - b").is_err());
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'car'")[0], TokenKind::Str("car".into()));
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn comparison_operators() {
        let ks = kinds("< <= > >= = != <>");
        let expect = [
            Symbol::Lt,
            Symbol::Le,
            Symbol::Gt,
            Symbol::Ge,
            Symbol::Eq,
            Symbol::Ne,
            Symbol::Ne,
        ];
        for (k, e) in ks.iter().zip(expect) {
            assert_eq!(*k, TokenKind::Symbol(e));
        }
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("SELECT -- the projection\n1");
        assert_eq!(ks.len(), 3); // SELECT, 1, EOF
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let ts = tokenize("SELECT id").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 7);
    }
}
