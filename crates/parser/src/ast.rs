//! EVA-QL statement AST.

use serde::{Deserialize, Serialize};
use std::fmt;

use eva_common::DataType;
use eva_expr::{Expr, UdfCall};

/// A parsed EVA-QL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `SELECT … FROM … [CROSS APPLY …] [WHERE …] …`
    Select(SelectStmt),
    /// `CREATE [OR REPLACE] UDF …` (Listing 2 of the paper).
    CreateUdf(CreateUdfStmt),
    /// `LOAD VIDEO '<dataset>' INTO <table>`.
    LoadVideo(LoadVideoStmt),
    /// `SHOW UDFS`.
    ShowUdfs,
    /// `SHOW TABLES`.
    ShowTables,
    /// `DROP UDF <name>`.
    DropUdf(String),
    /// `DROP TABLE <name>`.
    DropTable(String),
}

/// One projection item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// `CROSS APPLY <udf>(args) [ACCURACY '<level>']`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplyClause {
    /// The applied table-valued UDF.
    pub udf: UdfCall,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStmt {
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// Source table name (lowercase).
    pub from: String,
    /// CROSS APPLY chain, in syntactic order.
    pub applies: Vec<ApplyClause>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY columns (lowercase).
    pub group_by: Vec<String>,
    /// ORDER BY (column, direction) pairs.
    pub order_by: Vec<(String, SortOrder)>,
    /// LIMIT.
    pub limit: Option<u64>,
}

/// `CREATE [OR REPLACE] UDF` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateUdfStmt {
    /// `OR REPLACE` present.
    pub or_replace: bool,
    /// UDF name.
    pub name: String,
    /// `INPUT = (name TYPE, …)`.
    pub input: Vec<(String, DataType)>,
    /// `OUTPUT = (name TYPE, …)`.
    pub output: Vec<(String, DataType)>,
    /// `IMPL = '<id>'`.
    pub impl_id: String,
    /// `LOGICAL_TYPE = <ident>`.
    pub logical_type: Option<String>,
    /// `PROPERTIES = ('K' = 'V', …)`.
    pub properties: Vec<(String, String)>,
}

/// `LOAD VIDEO '<dataset>' INTO <table>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadVideoStmt {
    /// Dataset name in the storage engine.
    pub dataset: String,
    /// Table name to register.
    pub table: String,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        write!(f, " FROM {}", self.from)?;
        for a in &self.applies {
            write!(f, " CROSS APPLY {}", a.udf)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (c, o)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}{}", if *o == SortOrder::Desc { " DESC" } else { "" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_display_round_readable() {
        let s = SelectStmt {
            projection: vec![
                SelectItem::Expr {
                    expr: Expr::col("id"),
                    alias: None,
                },
                SelectItem::Expr {
                    expr: Expr::col("bbox"),
                    alias: Some("b".into()),
                },
            ],
            from: "video".into(),
            applies: vec![ApplyClause {
                udf: UdfCall::new("ObjectDetector", vec![Expr::col("frame")]).with_accuracy("HIGH"),
            }],
            where_clause: Some(Expr::col("id").lt(100)),
            group_by: vec![],
            order_by: vec![("id".into(), SortOrder::Desc)],
            limit: Some(10),
        };
        let text = s.to_string();
        assert!(text.contains("SELECT id, bbox AS b FROM video"));
        assert!(text.contains("CROSS APPLY OBJECTDETECTOR(frame) ACCURACY 'HIGH'"));
        assert!(text.contains("WHERE id < 100"));
        assert!(text.contains("ORDER BY id DESC LIMIT 10"));
    }
}
