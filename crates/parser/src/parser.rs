//! Recursive-descent parser for EVA-QL.

use eva_common::{DataType, EvaError, Result, Value};
use eva_expr::{AggFunc, CmpOp, Expr, UdfCall};

use crate::ast::{
    ApplyClause, CreateUdfStmt, LoadVideoStmt, SelectItem, SelectStmt, SortOrder, Statement,
};
use crate::lexer::{tokenize, Symbol, Token, TokenKind};

/// Parse a single EVA-QL statement (a trailing `;` is optional).
pub fn parse(src: &str) -> Result<Statement> {
    let mut stmts = parse_many(src)?;
    match stmts.len() {
        1 => Ok(stmts.pop().expect("len checked")),
        0 => Err(EvaError::Parse("empty input".into())),
        n => Err(EvaError::Parse(format!(
            "expected one statement, found {n}"
        ))),
    }
}

/// Parse a `;`-separated script.
pub fn parse_many(src: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(Symbol::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: &str) -> EvaError {
        EvaError::Parse(format!(
            "{msg}, found {} at offset {}",
            self.peek(),
            self.tokens[self.pos].offset
        ))
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {kw}")))
        }
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if matches!(self.peek(), TokenKind::Symbol(x) if *x == s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {s:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            // Allow non-reserved-sounding keywords as identifiers where
            // unambiguous (e.g. a column named `video`).
            TokenKind::Keyword(k)
                if matches!(k.as_str(), "VIDEO" | "INPUT" | "OUTPUT" | "IMPL") =>
            {
                self.advance();
                Ok(k.to_ascii_lowercase())
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Str(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.error("expected string literal")),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.is_keyword("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_keyword("CREATE") {
            let or_replace = if self.eat_keyword("OR") {
                self.expect_keyword("REPLACE")?;
                true
            } else {
                false
            };
            self.expect_keyword("UDF")?;
            return self.create_udf(or_replace);
        }
        if self.eat_keyword("LOAD") {
            self.expect_keyword("VIDEO")?;
            let dataset = self.string()?;
            self.expect_keyword("INTO")?;
            let table = self.ident()?.to_ascii_lowercase();
            return Ok(Statement::LoadVideo(LoadVideoStmt { dataset, table }));
        }
        if self.eat_keyword("SHOW") {
            if self.eat_keyword("UDFS") {
                return Ok(Statement::ShowUdfs);
            }
            if self.eat_keyword("TABLES") {
                return Ok(Statement::ShowTables);
            }
            return Err(self.error("expected UDFS or TABLES"));
        }
        if self.eat_keyword("DROP") {
            if self.eat_keyword("UDF") {
                return Ok(Statement::DropUdf(self.ident()?.to_ascii_lowercase()));
            }
            if self.eat_keyword("TABLE") {
                return Ok(Statement::DropTable(self.ident()?.to_ascii_lowercase()));
            }
            return Err(self.error("expected UDF or TABLE"));
        }
        Err(self.error("expected a statement"))
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let mut projection = vec![self.select_item()?];
        while self.eat_symbol(Symbol::Comma) {
            projection.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.ident()?.to_ascii_lowercase();
        let mut applies = Vec::new();
        while self.eat_keyword("CROSS") {
            self.expect_keyword("APPLY")?;
            let udf = self.udf_call()?;
            applies.push(ApplyClause { udf });
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.predicate()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.ident()?.to_ascii_lowercase());
            while self.eat_symbol(Symbol::Comma) {
                group_by.push(self.ident()?.to_ascii_lowercase());
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let col = self.ident()?.to_ascii_lowercase();
                let dir = if self.eat_keyword("DESC") {
                    SortOrder::Desc
                } else {
                    self.eat_keyword("ASC");
                    SortOrder::Asc
                };
                order_by.push((col, dir));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                TokenKind::Int(v) if v >= 0 => Some(v as u64),
                _ => return Err(self.error("expected a non-negative LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            from,
            applies,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol(Symbol::Star) {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.predicate_or_value()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?.to_ascii_lowercase())
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn udf_call(&mut self) -> Result<UdfCall> {
        let name = self.ident()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut args = Vec::new();
        if !self.eat_symbol(Symbol::RParen) {
            loop {
                args.push(self.value_expr()?);
                if self.eat_symbol(Symbol::RParen) {
                    break;
                }
                self.expect_symbol(Symbol::Comma)?;
            }
        }
        let mut call = UdfCall::new(name, args);
        if self.eat_keyword("ACCURACY") {
            call = call.with_accuracy(self.string()?);
        }
        Ok(call)
    }

    /// Boolean predicate grammar (§4.1): OR < AND < NOT < comparison.
    fn predicate(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            return Ok(self.not_expr()?.not());
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        // Parenthesized sub-predicate vs parenthesized value: parse as a
        // predicate when '(' is followed by NOT or nested structure; the
        // value grammar has no parens, so '(' always means a sub-predicate.
        if matches!(self.peek(), TokenKind::Symbol(Symbol::LParen)) {
            self.advance();
            let inner = self.predicate()?;
            self.expect_symbol(Symbol::RParen)?;
            return Ok(inner);
        }
        let lhs = self.value_expr()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            TokenKind::Symbol(Symbol::Eq) => CmpOp::Eq,
            TokenKind::Symbol(Symbol::Ne) => CmpOp::Ne,
            TokenKind::Symbol(Symbol::Lt) => CmpOp::Lt,
            TokenKind::Symbol(Symbol::Le) => CmpOp::Le,
            TokenKind::Symbol(Symbol::Gt) => CmpOp::Gt,
            TokenKind::Symbol(Symbol::Ge) => CmpOp::Ge,
            _ => return Ok(lhs), // bare value (e.g. projection item)
        };
        self.advance();
        let rhs = self.value_expr()?;
        Ok(Expr::cmp(lhs, op, rhs))
    }

    /// A projection item may be either a comparison/boolean expression or a
    /// bare value; reuse the predicate grammar which degrades gracefully.
    fn predicate_or_value(&mut self) -> Result<Expr> {
        self.predicate()
    }

    /// Value grammar: literal | aggregate | UDF call | column.
    fn value_expr(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Keyword(k) if k == "TRUE" => {
                self.advance();
                Ok(Expr::true_())
            }
            TokenKind::Keyword(k) if k == "FALSE" => {
                self.advance();
                Ok(Expr::false_())
            }
            TokenKind::Keyword(k)
                if matches!(k.as_str(), "COUNT" | "SUM" | "MIN" | "MAX" | "AVG") =>
            {
                self.advance();
                let func = match k.as_str() {
                    "COUNT" => AggFunc::Count,
                    "SUM" => AggFunc::Sum,
                    "MIN" => AggFunc::Min,
                    "MAX" => AggFunc::Max,
                    _ => AggFunc::Avg,
                };
                self.expect_symbol(Symbol::LParen)?;
                let arg = if self.eat_symbol(Symbol::Star) {
                    None
                } else {
                    Some(Box::new(self.value_expr()?))
                };
                self.expect_symbol(Symbol::RParen)?;
                if arg.is_none() && func != AggFunc::Count {
                    return Err(self.error("only COUNT may take *"));
                }
                Ok(Expr::Agg { func, arg })
            }
            TokenKind::Ident(_) | TokenKind::Keyword(_) => {
                let name = self.ident()?;
                if matches!(self.peek(), TokenKind::Symbol(Symbol::LParen)) {
                    // UDF call.
                    self.expect_symbol(Symbol::LParen)?;
                    let mut args = Vec::new();
                    if !self.eat_symbol(Symbol::RParen) {
                        loop {
                            args.push(self.value_expr()?);
                            if self.eat_symbol(Symbol::RParen) {
                                break;
                            }
                            self.expect_symbol(Symbol::Comma)?;
                        }
                    }
                    let mut call = UdfCall::new(name, args);
                    if self.eat_keyword("ACCURACY") {
                        call = call.with_accuracy(self.string()?);
                    }
                    Ok(Expr::Udf(call))
                } else {
                    Ok(Expr::col(name))
                }
            }
            _ => Err(self.error("expected a value expression")),
        }
    }

    fn create_udf(&mut self, or_replace: bool) -> Result<Statement> {
        let name = self.ident()?.to_ascii_lowercase();
        let mut input = Vec::new();
        let mut output = Vec::new();
        let mut impl_id = None;
        let mut logical_type = None;
        let mut properties = Vec::new();
        loop {
            if self.eat_keyword("INPUT") {
                self.expect_symbol(Symbol::Eq)?;
                input = self.field_list()?;
            } else if self.eat_keyword("OUTPUT") {
                self.expect_symbol(Symbol::Eq)?;
                output = self.field_list()?;
            } else if self.eat_keyword("IMPL") {
                self.expect_symbol(Symbol::Eq)?;
                impl_id = Some(self.string()?);
            } else if self.eat_keyword("LOGICAL_TYPE") {
                self.expect_symbol(Symbol::Eq)?;
                logical_type = Some(self.ident()?.to_ascii_lowercase());
            } else if self.eat_keyword("PROPERTIES") {
                self.expect_symbol(Symbol::Eq)?;
                self.expect_symbol(Symbol::LParen)?;
                loop {
                    let k = self.string()?;
                    self.expect_symbol(Symbol::Eq)?;
                    let v = self.string()?;
                    properties.push((k.to_ascii_uppercase(), v));
                    if self.eat_symbol(Symbol::RParen) {
                        break;
                    }
                    self.expect_symbol(Symbol::Comma)?;
                }
            } else {
                break;
            }
        }
        let impl_id = impl_id.ok_or_else(|| self.error("CREATE UDF requires IMPL"))?;
        Ok(Statement::CreateUdf(CreateUdfStmt {
            or_replace,
            name,
            input,
            output,
            impl_id,
            logical_type,
            properties,
        }))
    }

    fn field_list(&mut self) -> Result<Vec<(String, DataType)>> {
        self.expect_symbol(Symbol::LParen)?;
        let mut out = Vec::new();
        loop {
            let name = self.ident()?.to_ascii_lowercase();
            let ty = self.data_type()?;
            out.push((name, ty));
            if self.eat_symbol(Symbol::RParen) {
                break;
            }
            self.expect_symbol(Symbol::Comma)?;
        }
        Ok(out)
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?.to_ascii_uppercase();
        match name.as_str() {
            "INT" | "INTEGER" => Ok(DataType::Int),
            "FLOAT" | "FLOAT32" | "FLOAT64" | "DOUBLE" => Ok(DataType::Float),
            "STR" | "STRING" | "TEXT" => Ok(DataType::Str),
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "BBOX" => Ok(DataType::BBox),
            "FRAME" | "NDARRAY" => {
                // Tolerate the paper's `NDARRAY UINT8(3, ANYDIM, ANYDIM)`
                // syntax by skipping a parenthesized/shape suffix.
                if let TokenKind::Ident(_) = self.peek() {
                    self.advance(); // element type, e.g. UINT8
                }
                if self.eat_symbol(Symbol::LParen) {
                    let mut depth = 1;
                    while depth > 0 {
                        match self.advance() {
                            TokenKind::Symbol(Symbol::LParen) => depth += 1,
                            TokenKind::Symbol(Symbol::RParen) => depth -= 1,
                            TokenKind::Eof => return Err(self.error("unterminated NDARRAY shape")),
                            _ => {}
                        }
                    }
                }
                Ok(DataType::Frame)
            }
            other => Err(self.error(&format!("unknown data type '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(src: &str) -> SelectStmt {
        match parse(src).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn listing1_q1_shape() {
        let s = sel(
            "SELECT timestamp, bbox, VEHICLE_COLOR(bbox, frame) FROM VIDEO CROSS APPLY \
             OBJECT_DETECTOR(frame) ACCURACY 'HIGH' \
             WHERE timestamp > 18 AND label = 'car' \
             AND AREA(bbox) > 0.3 AND VEHICLE_MODEL(bbox, frame) = 'SUV'",
        );
        assert_eq!(s.from, "video");
        assert_eq!(s.applies.len(), 1);
        assert_eq!(s.applies[0].udf.name, "object_detector");
        assert_eq!(s.applies[0].udf.accuracy.as_deref(), Some("HIGH"));
        assert_eq!(s.projection.len(), 3);
        let w = s.where_clause.unwrap();
        let udfs = eva_expr::collect_udf_calls(&w);
        assert_eq!(udfs.len(), 2); // AREA, VEHICLE_MODEL
    }

    #[test]
    fn listing1_q4_group_by() {
        let s = sel("SELECT timestamp, COUNT(*) FROM VIDEO CROSS APPLY \
             OBJECT_DETECTOR(frame) ACCURACY 'LOW' WHERE label = 'car' \
             AND AREA(bbox) > 0.15 GROUP BY timestamp;");
        assert_eq!(s.group_by, vec!["timestamp".to_string()]);
        assert!(matches!(
            s.projection[1],
            SelectItem::Expr {
                expr: Expr::Agg {
                    func: AggFunc::Count,
                    arg: None
                },
                ..
            }
        ));
    }

    #[test]
    fn operator_precedence_or_and_not() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT c = 3");
        let w = s.where_clause.unwrap().to_string();
        // AND binds tighter than OR; NOT tighter than AND.
        assert_eq!(w, "(a = 1 OR (b = 2 AND NOT (c = 3)))");
    }

    #[test]
    fn parenthesized_predicates() {
        let s = sel("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        let w = s.where_clause.unwrap().to_string();
        assert_eq!(w, "((a = 1 OR b = 2) AND c = 3)");
    }

    #[test]
    fn order_limit() {
        let s = sel("SELECT id FROM t ORDER BY id DESC, x LIMIT 5");
        assert_eq!(
            s.order_by,
            vec![("id".into(), SortOrder::Desc), ("x".into(), SortOrder::Asc)]
        );
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn is_null_predicate() {
        let s = sel("SELECT * FROM t WHERE label IS NOT NULL AND x IS NULL");
        let w = s.where_clause.unwrap().to_string();
        assert!(w.contains("label IS NOT NULL"));
        assert!(w.contains("x IS NULL"));
    }

    #[test]
    fn create_udf_listing2() {
        let stmt = parse(
            "CREATE OR REPLACE UDF YOLO \
             INPUT = (frame NDARRAY UINT8(3, ANYDIM, ANYDIM)) \
             OUTPUT = (labels STR, bboxes BBOX) \
             IMPL = 'udfs/yolo.py' \
             LOGICAL_TYPE = ObjectDetector \
             PROPERTIES = ('ACCURACY' = 'HIGH')",
        )
        .unwrap();
        match stmt {
            Statement::CreateUdf(c) => {
                assert!(c.or_replace);
                assert_eq!(c.name, "yolo");
                assert_eq!(c.input, vec![("frame".into(), DataType::Frame)]);
                assert_eq!(c.output.len(), 2);
                assert_eq!(c.impl_id, "udfs/yolo.py");
                assert_eq!(c.logical_type.as_deref(), Some("objectdetector"));
                assert_eq!(c.properties, vec![("ACCURACY".into(), "HIGH".into())]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_udf_requires_impl() {
        assert!(parse("CREATE UDF x INPUT = (a INT) OUTPUT = (b INT)").is_err());
    }

    #[test]
    fn load_show_drop() {
        assert_eq!(
            parse("LOAD VIDEO 'medium_ua_detrac' INTO video").unwrap(),
            Statement::LoadVideo(LoadVideoStmt {
                dataset: "medium_ua_detrac".into(),
                table: "video".into()
            })
        );
        assert_eq!(parse("SHOW UDFS;").unwrap(), Statement::ShowUdfs);
        assert_eq!(parse("SHOW TABLES").unwrap(), Statement::ShowTables);
        assert_eq!(
            parse("DROP UDF yolo").unwrap(),
            Statement::DropUdf("yolo".into())
        );
        assert_eq!(
            parse("DROP TABLE video").unwrap(),
            Statement::DropTable("video".into())
        );
    }

    #[test]
    fn parse_many_script() {
        let stmts = parse_many(
            "LOAD VIDEO 'a' INTO v; SELECT * FROM v; -- trailing comment\n SHOW TABLES;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("SELECT FROM").unwrap_err();
        assert_eq!(err.stage(), "parse");
        assert!(err.message().contains("offset"));
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("").is_err());
        assert!(
            parse("SELECT * FROM t; SELECT * FROM t").is_err(),
            "parse() wants one stmt"
        );
    }

    #[test]
    fn multiple_cross_applies() {
        let s = sel("SELECT * FROM v CROSS APPLY det(frame) CROSS APPLY crop(frame, bbox)");
        assert_eq!(s.applies.len(), 2);
        assert_eq!(s.applies[1].udf.name, "crop");
        assert_eq!(s.applies[1].udf.args.len(), 2);
    }

    #[test]
    fn display_round_trip() {
        let src = "SELECT id, CARTYPE(frame, bbox) FROM video CROSS APPLY \
                   FASTERRCNN_RESNET50(frame) WHERE id < 10000 AND label = 'car' \
                   AND AREA(frame, bbox) > 0.3 GROUP BY id LIMIT 7";
        let s1 = sel(src);
        let s2 = sel(&s1.to_string());
        assert_eq!(s1, s2, "print→parse is a fixed point");
    }
}
