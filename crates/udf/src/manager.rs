//! The UDF MANAGER (paper Fig. 1, §3.1–§4.1).
//!
//! For every UDF signature the manager maintains:
//!
//! * the **materialized view** holding all results computed so far,
//! * the **aggregated predicate** `p_u` — the union of the predicates of
//!   every committed invocation, kept reduced by Algorithm 1 (this is what
//!   "the tuples for which results exist" means symbolically),
//! * a parallel aggregated predicate maintained with the *naive* simplifier,
//!   plus per-operation atom-count history — the data behind Fig. 7.
//!
//! `analyze` computes the derived predicates `p∩ = INTER(p_u, q)` and
//! `p₋ = DIFF(p_u, q)` for a new invocation; `commit` folds the invocation's
//! predicate into `p_u` once the optimizer decides the results will be
//! materialized.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

use eva_common::{Schema, ViewId};
use eva_expr::Expr;
use eva_storage::{StorageEngine, ViewKeyKind};
use eva_symbolic::naive::ops as naive_ops;
use eva_symbolic::{diff, inter, union, Dnf, NaiveDnf};

use crate::signature::UdfSignature;

// Re-export for convenience: the storage ViewId used across this module.
pub use eva_storage::view::ViewDef;

/// Magic for the persisted manager state.
const MANAGER_MAGIC: [u8; 4] = *b"EVAU";
/// Current manager state format version.
const MANAGER_VERSION: u32 = 1;
/// File the manager state persists to.
pub const MANAGER_FILE: &str = "udf_manager.bin";

/// Atom counts recorded for one `analyze` call — one data point per curve of
/// Fig. 7 (EVA's reduction vs the naive `simplify`, for each of the three
/// derived predicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomCounts {
    /// Atoms of `INTER(p_u, q)` under EVA's reduction.
    pub eva_inter: usize,
    /// Atoms of `DIFF(p_u, q)` under EVA's reduction.
    pub eva_diff: usize,
    /// Atoms of `UNION(p_u, q)` under EVA's reduction.
    pub eva_union: usize,
    /// Atoms of the intersection under the naive simplifier.
    pub naive_inter: usize,
    /// Atoms of the difference under the naive simplifier.
    pub naive_diff: usize,
    /// Atoms of the union under the naive simplifier.
    pub naive_union: usize,
}

/// Result of analyzing one UDF invocation against its signature history.
#[derive(Debug, Clone)]
pub struct ReuseAnalysis {
    /// The view holding previously materialized results (`None` when the
    /// signature has never been seen).
    pub view_id: Option<ViewId>,
    /// `INTER(p_u, q)`: tuples whose results may be read from the view.
    pub p_inter: Dnf,
    /// `DIFF(p_u, q)`: tuples on which the UDF must still run.
    pub p_diff: Dnf,
    /// Number of keys currently materialized in the view.
    pub view_n_keys: u64,
}

impl ReuseAnalysis {
    /// The view provably covers the whole invocation (`p₋ = FALSE`), so the
    /// APPLY branch can be dropped (§4.4).
    pub fn fully_covered(&self) -> bool {
        self.p_diff.is_false()
    }

    /// The view provably contains nothing useful (`p∩ = FALSE`), so the
    /// LEFT OUTER JOIN can be skipped (§4.4).
    pub fn no_overlap(&self) -> bool {
        self.p_inter.is_false()
    }
}

struct SigState {
    view: ViewId,
    agg: Dnf,
    naive_agg: NaiveDnf,
    history: Vec<AtomCounts>,
}

/// Thread-safe UDF manager. Cheap to clone.
#[derive(Clone)]
pub struct UdfManager {
    storage: StorageEngine,
    inner: Arc<RwLock<BTreeMap<UdfSignature, SigState>>>,
}

impl std::fmt::Debug for UdfManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sigs: Vec<String> = self.inner.read().keys().map(|s| s.to_string()).collect();
        f.debug_struct("UdfManager")
            .field("signatures", &sigs)
            .finish()
    }
}

impl UdfManager {
    /// Create a manager backed by the given storage engine.
    pub fn new(storage: StorageEngine) -> UdfManager {
        UdfManager {
            storage,
            inner: Arc::default(),
        }
    }

    /// The view for a signature, creating it (empty) on first sight.
    pub fn view_for(
        &self,
        sig: &UdfSignature,
        key_kind: ViewKeyKind,
        output_schema: Arc<Schema>,
    ) -> ViewId {
        if let Some(s) = self.inner.read().get(sig) {
            return s.view;
        }
        let mut inner = self.inner.write();
        // Double-checked: another thread may have created it.
        if let Some(s) = inner.get(sig) {
            return s.view;
        }
        let view = self
            .storage
            .create_view(sig.to_string(), key_kind, output_schema);
        inner.insert(
            sig.clone(),
            SigState {
                view,
                agg: Dnf::false_(),
                naive_agg: NaiveDnf::false_(),
                history: Vec::new(),
            },
        );
        view
    }

    /// The view for a signature, if one was ever created, with its current
    /// key count.
    pub fn view_of(&self, sig: &UdfSignature) -> Option<(ViewId, u64)> {
        let inner = self.inner.read();
        inner
            .get(sig)
            .map(|s| (s.view, self.storage.view_n_keys(s.view).unwrap_or(0)))
    }

    /// The aggregated predicate `p_u` (FALSE when the signature is unknown).
    pub fn aggregated(&self, sig: &UdfSignature) -> Dnf {
        self.inner
            .read()
            .get(sig)
            .map(|s| s.agg.clone())
            .unwrap_or_else(Dnf::false_)
    }

    /// Analyze a new invocation: derive `p∩` and `p₋` against the signature
    /// history and record the Fig. 7 atom counts (both engines). `q_expr` is
    /// the raw predicate used to feed the naive baseline.
    pub fn analyze(&self, sig: &UdfSignature, q: &Dnf, q_expr: Option<&Expr>) -> ReuseAnalysis {
        let inner = self.inner.read();
        match inner.get(sig) {
            Some(s) => {
                let p_inter = inter(&s.agg, q);
                let p_diff = diff(&s.agg, q);
                let p_union = union(&s.agg, q);
                let view_n_keys = self.storage.view_n_keys(s.view).unwrap_or(0);
                // Naive-engine bookkeeping for Fig. 7.
                let counts = q_expr.map(|e| {
                    let nq = NaiveDnf::from_expr(e);
                    AtomCounts {
                        eva_inter: p_inter.atom_count(),
                        eva_diff: p_diff.atom_count(),
                        eva_union: p_union.atom_count(),
                        naive_inter: naive_ops::inter(&s.naive_agg, &nq).atom_count(),
                        naive_diff: naive_ops::diff(&s.naive_agg, &nq).atom_count(),
                        naive_union: naive_ops::union(&s.naive_agg, &nq).atom_count(),
                    }
                });
                drop(inner);
                if let Some(c) = counts {
                    if let Some(s) = self.inner.write().get_mut(sig) {
                        s.history.push(c);
                    }
                }
                ReuseAnalysis {
                    view_id: Some(self.view_id(sig)),
                    p_inter,
                    p_diff,
                    view_n_keys,
                }
            }
            None => ReuseAnalysis {
                view_id: None,
                p_inter: Dnf::false_(),
                p_diff: q.clone().reduced(),
                view_n_keys: 0,
            },
        }
    }

    fn view_id(&self, sig: &UdfSignature) -> ViewId {
        self.inner.read().get(sig).expect("checked by caller").view
    }

    /// Fold an executed invocation's predicate into the aggregate:
    /// `p_u ← UNION(p_u, q)` (both engines).
    pub fn commit(&self, sig: &UdfSignature, q: &Dnf, q_expr: Option<&Expr>) {
        let mut inner = self.inner.write();
        if let Some(s) = inner.get_mut(sig) {
            s.agg = union(&s.agg, q);
            if let Some(e) = q_expr {
                s.naive_agg = naive_ops::union(&s.naive_agg, &NaiveDnf::from_expr(e));
            }
        }
    }

    /// Atom-count history per signature (Fig. 7 data).
    pub fn atom_history(&self) -> BTreeMap<UdfSignature, Vec<AtomCounts>> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.history.clone()))
            .collect()
    }

    /// Known signatures with their view sizes — Fig. 8(b)'s "materialized
    /// UDF results converge" series.
    pub fn view_sizes(&self) -> BTreeMap<UdfSignature, u64> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), self.storage.view_n_keys(v.view).unwrap_or(0)))
            .collect()
    }

    /// Forget everything (clean-state workload restarts). Views themselves
    /// are cleared through the storage engine by the session.
    pub fn reset(&self) {
        self.inner.write().clear();
    }

    /// Persist the manager's reuse state — signature → (view id, aggregated
    /// predicate) — to `dir/udf_manager.bin`, in the same checksummed
    /// envelope and via the same crash-safe atomic-rename protocol as view
    /// segments. Views persist separately via the storage engine; together
    /// the two restore a session's full reuse capability after a restart.
    /// (The naive-simplify bookkeeping used only by the Fig. 7 experiment is
    /// session-local and not persisted.)
    pub fn save(&self, dir: &std::path::Path) -> eva_common::Result<()> {
        std::fs::create_dir_all(dir)?;
        let inner = self.inner.read();
        let mut w = eva_common::ByteWriter::new();
        w.count(inner.len());
        for (sig, s) in inner.iter() {
            w.str(&sig.name);
            w.str(&sig.inputs);
            w.u64(s.view.raw());
            eva_symbolic::codec::write_dnf(&mut w, &s.agg);
        }
        let sealed = eva_common::codec::seal(MANAGER_MAGIC, MANAGER_VERSION, w.as_slice());
        eva_storage::segment::write_atomic(dir, MANAGER_FILE, &sealed, self.storage.failpoints())
    }

    /// Restore state saved with [`UdfManager::save`]. The referenced views
    /// must already have been loaded into the storage engine. A manager
    /// state that fails validation returns [`eva_common::EvaError::Corrupt`]
    /// and leaves the manager untouched — the session layer treats that as
    /// "start cold", never as a fatal error. Signatures whose views did not
    /// survive recovery must be dropped afterwards via
    /// [`UdfManager::prune_dangling`], or their aggregated predicates would
    /// claim coverage the store can no longer serve.
    pub fn load(&self, dir: &std::path::Path) -> eva_common::Result<()> {
        let bytes = std::fs::read(dir.join(MANAGER_FILE))?;
        let (_, payload) = eva_common::codec::unseal(&bytes, MANAGER_MAGIC, MANAGER_VERSION)?;
        let mut r = eva_common::ByteReader::new(payload);
        let n = r.count()?;
        let mut state = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            let inputs = r.str()?;
            let view = ViewId(r.u64()?);
            let agg = eva_symbolic::codec::read_dnf(&mut r)?;
            state.push((UdfSignature { name, inputs }, view, agg));
        }
        r.expect_end()?;
        let mut inner = self.inner.write();
        for (sig, view, agg) in state {
            inner.insert(
                sig,
                SigState {
                    view,
                    agg,
                    naive_agg: NaiveDnf::false_(),
                    history: Vec::new(),
                },
            );
        }
        Ok(())
    }

    /// Drop every signature whose view no longer exists in the storage
    /// engine (e.g. it was quarantined by the recovery pass). Without this,
    /// a stale aggregated predicate could claim full coverage and the
    /// planner would drop the APPLY branch for results that are gone —
    /// silently wrong answers. Pruned signatures simply start cold again.
    /// Returns the pruned signatures.
    pub fn prune_dangling(&self) -> Vec<UdfSignature> {
        let mut inner = self.inner.write();
        let dangling: Vec<UdfSignature> = inner
            .iter()
            .filter(|(_, s)| self.storage.view_n_keys(s.view).is_err())
            .map(|(sig, _)| sig.clone())
            .collect();
        for sig in &dangling {
            inner.remove(sig);
        }
        dangling
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::{DataType, Field};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![Field::new("label", DataType::Str)]).unwrap())
    }

    fn sig() -> UdfSignature {
        UdfSignature::new("det", "video", &["frame"])
    }

    fn pred(lo: f64, hi: f64) -> Dnf {
        let e = Expr::col("id").ge(lo).and(Expr::col("id").lt(hi));
        eva_symbolic::to_dnf(&e).unwrap()
    }

    #[test]
    fn first_sight_has_no_view() {
        let mgr = UdfManager::new(StorageEngine::new());
        let a = mgr.analyze(&sig(), &pred(0.0, 100.0), None);
        assert!(a.view_id.is_none());
        assert!(a.no_overlap());
        assert!(!a.fully_covered());
        assert_eq!(a.p_diff, pred(0.0, 100.0));
    }

    #[test]
    fn view_created_once_per_signature() {
        let mgr = UdfManager::new(StorageEngine::new());
        let v1 = mgr.view_for(&sig(), ViewKeyKind::Frame, schema());
        let v2 = mgr.view_for(&sig(), ViewKeyKind::Frame, schema());
        assert_eq!(v1, v2);
        let other = UdfSignature::new("det", "video2", &["frame"]);
        let v3 = mgr.view_for(&other, ViewKeyKind::Frame, schema());
        assert_ne!(v1, v3);
    }

    #[test]
    fn commit_then_analyze_full_coverage() {
        let mgr = UdfManager::new(StorageEngine::new());
        mgr.view_for(&sig(), ViewKeyKind::Frame, schema());
        mgr.commit(&sig(), &pred(0.0, 1000.0), None);
        // Subset query: fully covered.
        let a = mgr.analyze(&sig(), &pred(100.0, 200.0), None);
        assert!(a.fully_covered());
        assert!(!a.no_overlap());
        // Disjoint query: no overlap.
        let a = mgr.analyze(&sig(), &pred(5000.0, 6000.0), None);
        assert!(a.no_overlap());
        assert!(!a.fully_covered());
        // Partial overlap.
        let a = mgr.analyze(&sig(), &pred(500.0, 1500.0), None);
        assert!(!a.fully_covered());
        assert!(!a.no_overlap());
    }

    #[test]
    fn aggregate_reduces_over_commits() {
        let mgr = UdfManager::new(StorageEngine::new());
        mgr.view_for(&sig(), ViewKeyKind::Frame, schema());
        mgr.commit(&sig(), &pred(0.0, 100.0), None);
        mgr.commit(&sig(), &pred(100.0, 200.0), None);
        mgr.commit(&sig(), &pred(50.0, 150.0), None);
        let agg = mgr.aggregated(&sig());
        // Three overlapping/adjacent ranges collapse to one conjunct.
        assert_eq!(agg.conjuncts().len(), 1);
        assert_eq!(agg.atom_count(), 2);
    }

    #[test]
    fn atom_history_tracks_both_engines() {
        let mgr = UdfManager::new(StorageEngine::new());
        mgr.view_for(&sig(), ViewKeyKind::Frame, schema());
        let e1 = Expr::col("id").lt(100);
        let q1 = eva_symbolic::to_dnf(&e1).unwrap();
        mgr.commit(&sig(), &q1, Some(&e1));
        let e2 = Expr::col("id").lt(200);
        let q2 = eva_symbolic::to_dnf(&e2).unwrap();
        mgr.analyze(&sig(), &q2, Some(&e2));
        let hist = mgr.atom_history();
        let h = &hist[&sig()];
        assert_eq!(h.len(), 1);
        // EVA's union of id<100 and id<200 reduces to one atom; naive keeps 2.
        assert_eq!(h[0].eva_union, 1);
        assert_eq!(h[0].naive_union, 2);
    }

    #[test]
    fn save_load_round_trips_aggregates() {
        let dir = eva_common::testutil::unique_temp_dir("mgr_roundtrip");
        let storage = StorageEngine::new();
        let mgr = UdfManager::new(storage.clone());
        mgr.view_for(&sig(), ViewKeyKind::Frame, schema());
        mgr.commit(&sig(), &pred(0.0, 500.0), None);
        mgr.save(&dir).unwrap();

        let mgr2 = UdfManager::new(storage);
        mgr2.load(&dir).unwrap();
        assert_eq!(mgr2.aggregated(&sig()), mgr.aggregated(&sig()));
        assert_eq!(mgr2.view_of(&sig()), mgr.view_of(&sig()));
        // Restored aggregates answer coverage questions identically.
        assert!(mgr2
            .analyze(&sig(), &pred(10.0, 20.0), None)
            .fully_covered());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manager_state_is_corrupt_not_io() {
        let dir = eva_common::testutil::unique_temp_dir("mgr_corrupt");
        let storage = StorageEngine::new();
        let mgr = UdfManager::new(storage.clone());
        mgr.view_for(&sig(), ViewKeyKind::Frame, schema());
        mgr.commit(&sig(), &pred(0.0, 500.0), None);
        mgr.save(&dir).unwrap();
        let path = dir.join(super::MANAGER_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();

        let mgr2 = UdfManager::new(storage);
        let err = mgr2.load(&dir).unwrap_err();
        assert_eq!(err.stage(), "corrupt");
        // The failed load left the manager untouched (cold, not half-loaded).
        assert!(mgr2.aggregated(&sig()).is_false());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_dangling_drops_lost_views() {
        let storage = StorageEngine::new();
        let mgr = UdfManager::new(storage.clone());
        mgr.view_for(&sig(), ViewKeyKind::Frame, schema());
        mgr.commit(&sig(), &pred(0.0, 1000.0), None);
        assert!(mgr.prune_dangling().is_empty(), "live views are kept");

        // Simulate recovery quarantining the view: it vanishes from storage.
        storage.clear_views();
        let pruned = mgr.prune_dangling();
        assert_eq!(pruned, vec![sig()]);
        // The signature is cold again: no claimed coverage, no view.
        let a = mgr.analyze(&sig(), &pred(10.0, 20.0), None);
        assert!(a.view_id.is_none());
        assert!(!a.fully_covered());
    }

    #[test]
    fn reset_clears_state() {
        let mgr = UdfManager::new(StorageEngine::new());
        mgr.view_for(&sig(), ViewKeyKind::Frame, schema());
        mgr.commit(&sig(), &pred(0.0, 10.0), None);
        mgr.reset();
        assert!(mgr.aggregated(&sig()).is_false());
        assert!(mgr.view_sizes().is_empty());
    }
}
